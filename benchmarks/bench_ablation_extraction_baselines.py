"""Ablation B: Scheme 2 versus the baselines the paper argues against.

Section 5 discusses two alternatives for obtaining the outcome distribution of
a dynamic circuit: repeated stochastic simulation (needs a huge number of
shots for statistical significance) and density-matrix simulation (handles
non-unitaries natively but costs 4**n memory and still needs one run per
classical assignment for the *complete* distribution).  This benchmark
compares both against the branching extraction scheme on the IQPE workload.
"""

from __future__ import annotations

import pytest

from repro.algorithms import iterative_qpe, running_example_lambda
from repro.core import extract_distribution
from repro.core.distributions import total_variation_distance
from repro.simulators import DensityMatrixSimulator, StochasticSimulator

NUM_BITS = [3, 4, 5]
SHOTS = 200


@pytest.mark.parametrize("num_bits", NUM_BITS)
def test_extraction_scheme(benchmark, num_bits):
    circuit = iterative_qpe(num_bits, running_example_lambda)
    result = benchmark(lambda: extract_distribution(circuit, backend="statevector"))
    assert result.total_probability() == pytest.approx(1.0, abs=1e-9)
    benchmark.extra_info["num_paths"] = result.num_paths


@pytest.mark.parametrize("num_bits", NUM_BITS)
def test_density_matrix_baseline(benchmark, num_bits):
    circuit = iterative_qpe(num_bits, running_example_lambda)
    exact = extract_distribution(circuit).distribution
    distribution = benchmark(lambda: DensityMatrixSimulator().run(circuit))
    assert total_variation_distance(distribution, exact) < 1e-9


@pytest.mark.parametrize("num_bits", NUM_BITS)
def test_stochastic_baseline(benchmark, num_bits):
    """Even a modest number of shots is slower than the exact extraction and
    only yields an approximate distribution."""
    circuit = iterative_qpe(num_bits, running_example_lambda)
    exact = extract_distribution(circuit).distribution
    simulator = StochasticSimulator(seed=1)
    estimate = benchmark(lambda: simulator.estimate_distribution(circuit, shots=SHOTS))
    # With 200 shots the empirical distribution is still visibly off — the
    # point of the ablation: the exact scheme is both faster and exact.
    assert total_variation_distance(estimate, exact) < 0.25
    benchmark.extra_info["shots"] = SHOTS
