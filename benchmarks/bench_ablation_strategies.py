"""Ablation A: application strategies of the alternating scheme.

DESIGN.md calls out the choice of gate-application strategy (naive /
one-to-one / proportional / lookahead) as the central design decision of the
functional equivalence checker.  This benchmark compares the strategies on the
QPE and compiled-circuit workloads and records the maximum intermediate
decision-diagram size, which explains the runtime differences: the naive
strategy builds the full unitary of one circuit before cancelling anything,
while the balanced strategies keep the product close to the identity.
"""

from __future__ import annotations

import pytest

from repro.algorithms import iterative_qpe, qpe_static, running_example_lambda
from repro.compilation import compile_circuit, ibmq_london
from repro.core import check_equivalence

STRATEGIES = ["naive", "one_to_one", "proportional", "lookahead"]
QPE_BITS = 6


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_on_qpe_pair(benchmark, strategy):
    static = qpe_static(QPE_BITS, running_example_lambda)
    dynamic = iterative_qpe(QPE_BITS, running_example_lambda)
    result = benchmark(lambda: check_equivalence(static, dynamic, strategy=strategy))
    assert result.equivalent
    benchmark.extra_info["max_dd_nodes"] = result.details.get("max_nodes")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_on_compiled_circuit(benchmark, strategy):
    original = qpe_static(3, running_example_lambda)
    compiled = compile_circuit(original, ibmq_london())
    result = benchmark(
        lambda: check_equivalence(compiled.padded_original, compiled.circuit, strategy=strategy)
    )
    assert result.equivalent
    benchmark.extra_info["max_dd_nodes"] = result.details.get("max_nodes")


@pytest.mark.parametrize("method", ["alternating", "construction", "simulation"])
def test_method_comparison_on_qpe_pair(benchmark, method):
    """Secondary ablation: alternating vs. construction vs. simulative checking."""
    static = qpe_static(QPE_BITS, running_example_lambda)
    dynamic = iterative_qpe(QPE_BITS, running_example_lambda)
    result = benchmark(lambda: check_equivalence(static, dynamic, method=method, seed=7))
    assert result.equivalent
