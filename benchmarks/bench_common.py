"""Shared helpers for the benchmark harness.

The paper's Table 1 evaluates three benchmark families (Bernstein-Vazirani,
QFT, QPE) at sizes that assume the authors' C++ decision-diagram engine.  This
reproduction runs on a pure-Python engine, so the default sizes are scaled
down; setting the environment variable ``REPRO_SCALE=paper`` selects the
original sizes (may take a very long time), ``REPRO_SCALE=large`` an
intermediate setting.

Every benchmark family reports the same four quantities as Table 1:

* ``t_trans``   — runtime of the transformation scheme (Section 4),
* ``t_ver``     — runtime of the subsequent equivalence check,
* ``t_extract`` — runtime of the extraction scheme (Section 5) on the dynamic circuit,
* ``t_sim``     — runtime of classical simulation of the static circuit.
"""

from __future__ import annotations

import os

__all__ = ["SCALE", "sizes_for"]

SCALE = os.environ.get("REPRO_SCALE", "default")

_SIZES = {
    # family: {scale: list of problem sizes}
    "bv": {
        "default": [8, 12, 16, 20],
        "large": [32, 48, 64, 96],
        "paper": [121, 122, 123, 124, 125, 126, 127, 128],
    },
    "qft": {
        "default": [4, 6, 8, 10],
        "large": [12, 16, 20, 24],
        "paper": [23, 24, 25, 26, 125, 126, 127, 128],
    },
    # The QFT extraction blows up exponentially (dense outcome distribution);
    # Table 1 reports it only for the small QFT block.
    "qft_extract": {
        "default": [4, 6, 8],
        "large": [10, 12],
        "paper": [23, 24, 25, 26],
    },
    "qpe": {
        "default": [4, 6, 8],
        "large": [10, 12, 14],
        "paper": [43, 44, 45, 46, 47, 48, 49, 50],
    },
}


def sizes_for(family: str) -> list[int]:
    """Problem sizes of a benchmark family under the active ``REPRO_SCALE``."""
    table = _SIZES[family]
    return table.get(SCALE, table["default"])
