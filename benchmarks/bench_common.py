"""Shared helpers for the benchmark harness.

The paper's Table 1 evaluates three benchmark families (Bernstein-Vazirani,
QFT, QPE) at sizes that assume the authors' C++ decision-diagram engine.  This
reproduction runs on a pure-Python engine, so the default sizes are scaled
down; setting the environment variable ``REPRO_SCALE=paper`` selects the
original sizes (may take a very long time), ``REPRO_SCALE=large`` an
intermediate setting.

Every benchmark family reports the same four quantities as Table 1:

* ``t_trans``   — runtime of the transformation scheme (Section 4),
* ``t_ver``     — runtime of the subsequent equivalence check,
* ``t_extract`` — runtime of the extraction scheme (Section 5) on the dynamic circuit,
* ``t_sim``     — runtime of classical simulation of the static circuit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SCALE",
    "sizes_for",
    "validate_bench_payload",
    "write_bench_json",
]

SCALE = os.environ.get("REPRO_SCALE", "default")

#: Version of the ``BENCH_*.json`` result schema emitted by the benchmark
#: scripts.  Bump when the payload layout changes so downstream consumers
#: (CI smoke job, trend tooling) can detect incompatible files.
BENCH_SCHEMA_VERSION = 1

_SIZES = {
    # family: {scale: list of problem sizes}
    "bv": {
        "default": [8, 12, 16, 20],
        "large": [32, 48, 64, 96],
        "paper": [121, 122, 123, 124, 125, 126, 127, 128],
    },
    "qft": {
        "default": [4, 6, 8, 10],
        "large": [12, 16, 20, 24],
        "paper": [23, 24, 25, 26, 125, 126, 127, 128],
    },
    # The QFT extraction blows up exponentially (dense outcome distribution);
    # Table 1 reports it only for the small QFT block.
    "qft_extract": {
        "default": [4, 6, 8],
        "large": [10, 12],
        "paper": [23, 24, 25, 26],
    },
    "qpe": {
        "default": [4, 6, 8],
        "large": [10, 12, 14],
        "paper": [43, 44, 45, 46, 47, 48, 49, 50],
    },
}


def sizes_for(family: str) -> list[int]:
    """Problem sizes of a benchmark family under the active ``REPRO_SCALE``."""
    table = _SIZES[family]
    return table.get(SCALE, table["default"])


def validate_bench_payload(payload: dict) -> None:
    """Validate a ``BENCH_*.json`` payload; raises ``ValueError`` on errors.

    The check is structural only (keys and types), deliberately blind to the
    timing values themselves: CI runs it on shared machines whose timings are
    noisy, so the smoke job must fail on schema regressions, never on noise.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {version!r}"
        )
    if not isinstance(payload.get("benchmark"), str) or not payload["benchmark"]:
        raise ValueError("payload needs a non-empty 'benchmark' name")
    if not isinstance(payload.get("scale"), str):
        raise ValueError("payload needs a 'scale' string")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("payload needs a non-empty 'results' list")
    for position, entry in enumerate(results):
        if not isinstance(entry, dict):
            raise ValueError(f"results[{position}] must be a dict")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError(f"results[{position}] needs a non-empty 'name'")
        for field in ("mean_ms", "min_ms"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"results[{position}].{field} must be a non-negative number")
        repeats = entry.get("repeats")
        if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
            raise ValueError(f"results[{position}].repeats must be a positive integer")
    baseline = payload.get("baseline")
    if baseline is not None:
        if not isinstance(baseline, dict) or not isinstance(baseline.get("source"), str):
            raise ValueError("'baseline', when present, must be a dict with a 'source' string")
    speedup = payload.get("speedup_vs_baseline")
    if speedup is not None and (
        not isinstance(speedup, (int, float)) or isinstance(speedup, bool) or speedup <= 0
    ):
        raise ValueError("'speedup_vs_baseline', when present, must be a positive number")


def write_bench_json(path: "str | Path", payload: dict) -> None:
    """Validate ``payload`` and write it as pretty-printed JSON."""
    validate_bench_payload(payload)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
