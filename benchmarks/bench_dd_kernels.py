"""Microbenchmarks of the DD kernel hot paths + Table-1 QFT wall-clock.

Complements the pytest-benchmark suites with a dependency-light script that
every PR can run to record the kernel-performance trajectory:

* ``gate_build``        — matrix-DD construction of all (controlled-phase
  heavy) QFT gate DDs into a fresh package: exercises ``operator_chain``,
  ``controlled_gate``, ``add_matrices`` and the normalizing node factories.
* ``apply_product``     — the alternating-scheme inner loop: multiply each
  gate DD into the running product (``multiply_matrices`` + ``_add``).
* ``qft_verification``  — end-to-end ``check_equivalence`` of the static vs.
  dynamic QFT pair (the Table-1 t_ver column), optionally with the hybrid
  ``dense_cutoff`` kernels for comparison.

Results are emitted as ``BENCH_table1.json`` (schema shared via
``bench_common.validate_bench_payload``; the script exits non-zero if its own
payload fails validation, which is what the CI smoke job checks — schema
errors fail, timing noise never does).

Usage::

    PYTHONPATH=src python benchmarks/bench_dd_kernels.py                 # full run
    PYTHONPATH=src python benchmarks/bench_dd_kernels.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_dd_kernels.py --dense-cutoff 6
    PYTHONPATH=src python benchmarks/bench_dd_kernels.py --baseline-ms 153.3
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from bench_common import BENCH_SCHEMA_VERSION, SCALE, write_bench_json

from repro.algorithms import qft_dynamic, qft_static_benchmark
from repro.core import check_equivalence
from repro.dd.circuits import instruction_to_dd
from repro.dd.package import DDPackage

#: Reference wall-clock of the PR 2 kernels for the Table-1 QFT check at
#: n=14, measured on the same dev container (Python 3.11, mean of 3 runs)
#: that produced the committed BENCH_table1.json.  Only meaningful as a
#: baseline on comparable hardware, so the speedup record is opt-in: pass
#: ``--baseline-ms`` explicitly (e.g. this value) to include it.
PR2_BASELINE_N14_MS = 153.3

FULL_SIZES = [8, 10, 14]
QUICK_SIZES = [6, 8]


def _time(callable_, repeats: int) -> tuple[float, float]:
    """Return (mean_ms, min_ms) over ``repeats`` runs of ``callable_``."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        timings.append((time.perf_counter() - start) * 1000.0)
    return sum(timings) / len(timings), min(timings)


def _gate_list(size: int):
    return list(
        qft_static_benchmark(size).remove_final_measurements().gate_instructions()
    )


def bench_gate_build(size: int, repeats: int, dense_cutoff: int) -> dict:
    gates = _gate_list(size)

    def build() -> None:
        package = DDPackage(size, dense_cutoff=dense_cutoff)
        for instruction in gates:
            instruction_to_dd(package, instruction)

    mean_ms, min_ms = _time(build, repeats)
    return {
        "name": "gate_build",
        "n": size,
        "repeats": repeats,
        "mean_ms": mean_ms,
        "min_ms": min_ms,
        "dense_cutoff": dense_cutoff,
        "num_gates": len(gates),
    }


def bench_apply_product(size: int, repeats: int, dense_cutoff: int) -> dict:
    gates = _gate_list(size)

    def apply_all() -> None:
        package = DDPackage(size, dense_cutoff=dense_cutoff)
        product = package.identity()
        for instruction in gates:
            product = package.multiply_matrices(
                instruction_to_dd(package, instruction), product
            )

    mean_ms, min_ms = _time(apply_all, repeats)
    return {
        "name": "apply_product",
        "n": size,
        "repeats": repeats,
        "mean_ms": mean_ms,
        "min_ms": min_ms,
        "dense_cutoff": dense_cutoff,
        "num_gates": len(gates),
    }


def bench_qft_verification(size: int, repeats: int, dense_cutoff: int) -> dict:
    static = qft_static_benchmark(size)
    dynamic = qft_dynamic(size)
    criteria = []

    def verify() -> None:
        result = check_equivalence(static, dynamic, dense_cutoff=dense_cutoff)
        criteria.append(result.criterion.value)

    mean_ms, min_ms = _time(verify, repeats)
    if len(set(criteria)) != 1:
        raise RuntimeError(f"verdict instability across repeats: {criteria}")
    return {
        "name": "qft_verification",
        "n": size,
        "repeats": repeats,
        "mean_ms": mean_ms,
        "min_ms": min_ms,
        "dense_cutoff": dense_cutoff,
        "criterion": criteria[0],
    }


def run(args: argparse.Namespace) -> dict:
    sizes = args.sizes or (QUICK_SIZES if args.quick else FULL_SIZES)
    repeats = args.repeats or (2 if args.quick else 5)
    results = []
    for size in sizes:
        results.append(bench_gate_build(size, repeats, 0))
        results.append(bench_apply_product(size, repeats, 0))
        results.append(bench_qft_verification(size, repeats, 0))
        if args.dense_cutoff:
            results.append(bench_qft_verification(size, repeats, args.dense_cutoff))

    payload: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "dd_kernels_table1_qft",
        "scale": SCALE,
        "python": platform.python_version(),
        "results": results,
    }

    reference = [
        entry
        for entry in results
        if entry["name"] == "qft_verification" and entry["dense_cutoff"] == 0
    ]
    largest = max(reference, key=lambda entry: entry["n"])
    if args.baseline_ms and largest["n"] == 14:
        payload["baseline"] = {
            "source": "PR 2 kernels (commit 48121c8), qft_verification n=14",
            "mean_ms": args.baseline_ms,
        }
        payload["speedup_vs_baseline"] = args.baseline_ms / largest["mean_ms"]
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes / few repeats (CI smoke)")
    parser.add_argument("--sizes", type=int, nargs="*", default=None, metavar="N")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--dense-cutoff",
        type=int,
        default=0,
        metavar="K",
        help="additionally record qft_verification with the hybrid kernels at cutoff K",
    )
    parser.add_argument(
        "--baseline-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help=(
            "record speedup_vs_baseline against this qft_verification n=14 "
            f"reference (off by default — cross-hardware comparisons are "
            f"meaningless; the PR 2 dev-container reference is {PR2_BASELINE_N14_MS})"
        ),
    )
    parser.add_argument("--output", default="BENCH_table1.json", metavar="PATH")
    args = parser.parse_args(argv)

    payload = run(args)
    try:
        write_bench_json(args.output, payload)
    except ValueError as error:
        print(f"benchmark payload failed schema validation: {error}", file=sys.stderr)
        return 1

    for entry in payload["results"]:
        extra = f" criterion={entry['criterion']}" if "criterion" in entry else ""
        cutoff = f" cutoff={entry['dense_cutoff']}" if entry.get("dense_cutoff") else ""
        print(
            f"{entry['name']:>18} n={entry['n']:<3} mean={entry['mean_ms']:8.2f}ms "
            f"min={entry['min_ms']:8.2f}ms{cutoff}{extra}"
        )
    if "speedup_vs_baseline" in payload:
        print(f"speedup vs {payload['baseline']['source']}: {payload['speedup_vs_baseline']:.2f}x")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
