"""Fig. 4: the branching extraction of the running example.

The paper illustrates Scheme 2 on the 3-bit IQPE circuit for ``U = p(3*pi/8)``
and the eigenstate |1>: three checkpoints (measurements), check-pointed
probabilities of roughly 1/2, 0.85/0.15 and 0.96/0.04, and e.g.
``P(|001>) = 1/2 * 0.85 * 0.96 ~ 0.408``.  These benchmarks time the
extraction on both backends and assert the quantitative shape of the figure.
"""

from __future__ import annotations

import pytest

from repro.algorithms import iterative_qpe, running_example_lambda
from repro.core import extract_distribution

NUM_BITS = 3


def _assert_figure4_shape(result) -> None:
    # The two most probable outcomes are |001> and |010> (Example 1).
    ordered = sorted(result.distribution, key=result.distribution.get, reverse=True)
    assert set(ordered[:2]) == {"001", "010"}
    # P(|001>) ~ 0.41 (the paper quotes 0.408 from rounded checkpoint values).
    assert result.probability("001") == pytest.approx(0.411, abs=0.01)
    # Marginal of the first measured bit is exactly 1/2 (first checkpoint of Fig. 4).
    first_bit_one = sum(v for k, v in result.distribution.items() if k[-1] == "1")
    assert first_bit_one == pytest.approx(0.5, abs=1e-9)
    assert result.total_probability() == pytest.approx(1.0, abs=1e-9)


@pytest.mark.parametrize("backend", ["statevector", "dd"])
def test_fig4_running_example_extraction(benchmark, backend):
    circuit = iterative_qpe(NUM_BITS, running_example_lambda)
    result = benchmark(lambda: extract_distribution(circuit, backend=backend))
    _assert_figure4_shape(result)
    benchmark.extra_info["num_paths"] = result.num_paths
    benchmark.extra_info["num_branch_points"] = result.num_branch_points


@pytest.mark.parametrize("num_bits", [3, 4, 5, 6])
def test_fig4_scaling_with_precision(benchmark, num_bits):
    """The branching tree grows with the number of precision bits, but pruning
    keeps the number of surviving paths far below 2**m."""
    circuit = iterative_qpe(num_bits, running_example_lambda)
    result = benchmark(lambda: extract_distribution(circuit, backend="statevector"))
    assert result.num_paths <= 2**num_bits
    benchmark.extra_info["num_paths"] = result.num_paths
