"""Portfolio manager and gate-cache benchmarks.

Run explicitly (like the Table-1 benches)::

    PYTHONPATH=src python -m pytest benchmarks/bench_portfolio.py -q

Qualitative claims to measure:

* on *non-equivalent* pairs the portfolio terminates as soon as the
  simulation falsifier finds a counterexample — orders of magnitude before
  the functional prover would finish;
* on *equivalent* pairs the portfolio's overhead over the plain alternating
  check is bounded by the (cheap) simulation pass;
* ``verify_batch`` sustains a batch of 20+ pairs with per-pair timings;
* the gate-DD cache measurably accelerates the Table-1 QFT verification at
  identical verdicts.
"""

from __future__ import annotations

import pytest

from bench_common import sizes_for
from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
    teleportation_dynamic,
    teleportation_static,
)
from repro.core import EquivalenceCheckingManager, check_equivalence

SIZES = sizes_for("qft")
SEED = 99


@pytest.mark.parametrize("size", SIZES)
def test_portfolio_equivalent_pair(benchmark, size):
    """Portfolio on an equivalent pair: simulation pass + alternating proof."""
    static = qft_static_benchmark(size)
    dynamic = qft_dynamic(size)
    manager = EquivalenceCheckingManager(seed=SEED)
    result = benchmark(lambda: manager.run(static, dynamic))
    assert result.equivalent
    benchmark.extra_info["decided_by"] = result.decided_by


@pytest.mark.parametrize("size", SIZES)
def test_portfolio_early_termination_on_bug(benchmark, size):
    """Portfolio on a non-equivalent pair: the falsifier short-circuits."""
    good = ghz_ladder(size)
    bad = ghz_with_bug(size)
    manager = EquivalenceCheckingManager(seed=SEED)
    result = benchmark(lambda: manager.run(good, bad))
    assert not result.equivalent
    assert result.decided_by == "simulation"


@pytest.mark.parametrize("size", SIZES)
def test_single_method_baseline(benchmark, size):
    """Baseline: the plain alternating check on the same equivalent pair."""
    static = qft_static_benchmark(size)
    dynamic = qft_dynamic(size)
    result = benchmark(lambda: check_equivalence(static, dynamic))
    assert result.equivalent


def _batch_pairs():
    pairs = []
    for index in range(10):
        pairs.append((ghz_ladder(3 + index % 4), ghz_ladder(3 + index % 4)))
    for bits in ("101", "110", "1011", "1101", "0110"):
        pairs.append((bernstein_vazirani_static(bits), bernstein_vazirani_dynamic(bits)))
    for theta in (0.3, 0.7, 1.1):
        pairs.append((teleportation_static(theta), teleportation_dynamic(theta)))
    pairs.append((ghz_ladder(4), ghz_with_bug(4)))
    pairs.append((bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111")))
    return pairs


@pytest.mark.parametrize(
    "executor,max_workers,chunk_size",
    [
        ("thread", 1, 1),
        ("thread", 4, 1),
        ("process", 4, 1),
        ("process", 4, 4),
    ],
    ids=["thread-serial", "thread-4", "process-4", "process-4-chunk4"],
)
def test_batch_throughput(benchmark, executor, max_workers, chunk_size):
    """verify_batch over 20+ pairs: thread vs process executors.

    The DD checkers are CPU-bound pure Python, so the thread pool is
    GIL-bound: on a multi-core host the process executor should win at >=4
    workers (on a single-core container it only pays pickling/fork overhead —
    quote numbers together with the core count).
    """
    pairs = _batch_pairs()
    assert len(pairs) >= 20
    manager = EquivalenceCheckingManager(
        seed=SEED,
        max_workers=max_workers,
        executor=executor,
        batch_chunk_size=chunk_size,
    )
    batch = benchmark(lambda: manager.verify_batch(pairs))
    assert batch.num_pairs == len(pairs)
    assert batch.num_failed == 0
    assert batch.executor == executor
    benchmark.extra_info["num_equivalent"] = batch.num_equivalent
    benchmark.extra_info["mean_pair_time"] = batch.summary()["mean_pair_time"]
    # Entry-for-entry agreement between the executors is asserted in tier-1:
    # tests/test_manager.py::TestProcessExecutor.


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("gate_cache", [False, True], ids=["uncached", "cached"])
def test_gate_cache_speedup_qft(benchmark, size, gate_cache):
    """The Table-1 QFT verification with and without the gate-DD cache."""
    static = qft_static_benchmark(size)
    dynamic = qft_dynamic(size)
    result = benchmark(lambda: check_equivalence(static, dynamic, gate_cache=gate_cache))
    assert result.equivalent
    stats = result.details["dd_statistics"]
    benchmark.extra_info["gate_cache_hits"] = stats["gate_cache_hits"]
    benchmark.extra_info["gate_cache_misses"] = stats["gate_cache_misses"]
