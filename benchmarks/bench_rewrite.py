"""Transpilation-aware verification: canonical cache hits and rewrite proving.

Table-1 circuit families are verified at three translation levels of the same
logical pair (original, CX + single-qubit basis, U-gate rewrite) under three
modes:

* ``cold``          — fresh manager, empty cache, DD portfolio: the PR-5
  baseline, which treats every translation level as an unrelated pair.
* ``canonical_hit`` — one cache-enabled manager sees the pair at level 1,
  then levels 2 and 3: the later levels must be verdict-cache hits through
  the canonical (translation-level-invariant) fingerprint.
* ``rewrite_first`` — the adaptive scheduler front-loads the library-driven
  ``rewrite`` prover on the translated pair, which must decide it by
  peephole reduction alone — before any decision diagram is built.

Gates (``RuntimeError`` → exit 1) are **semantic only**: verdict agreement
across all modes and levels, at least one cross-level canonical cache hit,
and the rewrite prover actually deciding.  Timings are recorded for trend
tooling but never gated — CI machines are noisy.

Results are emitted as ``BENCH_rewrite.json`` (schema shared via
``bench_common.validate_bench_payload``).

Usage::

    PYTHONPATH=src python benchmarks/bench_rewrite.py            # full run
    PYTHONPATH=src python benchmarks/bench_rewrite.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from bench_common import BENCH_SCHEMA_VERSION, SCALE, write_bench_json

from repro.algorithms import (
    bernstein_vazirani_static,
    qft_static_benchmark,
    qpe_static,
)
from repro.compilation import (
    decompose_to_cx_and_single_qubit,
    rewrite_single_qubit_to_u,
)
from repro.core import Configuration, EquivalenceCheckingManager

SEED = 42

#: Translation levels a canonical-hit run walks through, in order.
NUM_LEVELS = 3

FULL_FAMILIES = [
    ("bv", lambda: bernstein_vazirani_static("101101")),
    ("qft", lambda: qft_static_benchmark(5)),
    ("qpe", lambda: qpe_static(4)),
]
QUICK_FAMILIES = [
    ("bv", lambda: bernstein_vazirani_static("1011")),
    ("qft", lambda: qft_static_benchmark(4)),
]


def _time_ms(callable_) -> tuple[float, object]:
    start = time.perf_counter()
    value = callable_()
    return (time.perf_counter() - start) * 1000.0, value


def translation_levels(circuit):
    """The same logical pair at three translation levels of its second half."""
    level_one = decompose_to_cx_and_single_qubit(circuit)
    level_two = rewrite_single_qubit_to_u(level_one)
    return [
        (circuit, circuit.copy()),
        (circuit, level_one),
        (circuit, level_two),
    ]


def bench_family(name: str, build, repeats: int) -> tuple[list[dict], dict]:
    """All three modes over one Table-1 family; returns entries + speedups."""
    circuit = build()
    levels = translation_levels(circuit)
    entries = []
    criteria_by_mode: dict[str, list[str]] = {}
    times_by_mode: dict[str, list[float]] = {}

    # cold: every level pays a full DD-portfolio verification.
    times = []
    for _ in range(repeats):
        criteria = []
        total = 0.0
        for pair in levels:
            manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=False)
            elapsed, result = _time_ms(lambda pair=pair: manager.run(*pair))
            total += elapsed
            criteria.append(result.criterion.value)
        times.append(total)
        criteria_by_mode["cold"] = criteria
    times_by_mode["cold"] = times

    # canonical_hit: one cache-enabled manager walks the levels; the later
    # levels must hit through the canonical fingerprint tier.
    times = []
    for _ in range(repeats):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        criteria = []
        canonical_hits = 0
        total = 0.0
        for position, pair in enumerate(levels):
            elapsed, result = _time_ms(lambda pair=pair: manager.run(*pair))
            total += elapsed
            criteria.append(result.criterion.value)
            if position > 0:
                if not result.cached:
                    raise RuntimeError(
                        f"{name}: translation level {position + 1} missed the "
                        "verdict cache entirely"
                    )
                if result.cached_via == "canonical_fingerprint":
                    canonical_hits += 1
        if canonical_hits < 1:
            raise RuntimeError(
                f"{name}: no cross-level canonical cache hit "
                f"(levels 2..{NUM_LEVELS} must reuse the level-1 verdict)"
            )
        times.append(total)
        criteria_by_mode["canonical_hit"] = criteria
    times_by_mode["canonical_hit"] = times

    # rewrite_first: the adaptive scheduler front-loads the peephole prover,
    # which must decide the translated levels without building any DD.
    configuration = Configuration(
        portfolio=("rewrite", "alternating"),
        scheduler="adaptive",
        seed=SEED,
        verdict_cache=False,
    )
    times = []
    for _ in range(repeats):
        criteria = []
        total = 0.0
        for position, pair in enumerate(levels):
            manager = EquivalenceCheckingManager(configuration)
            elapsed, result = _time_ms(lambda pair=pair: manager.run(*pair))
            total += elapsed
            criteria.append(result.criterion.value)
            if result.decided_by != "rewrite":
                raise RuntimeError(
                    f"{name}: level {position + 1} was decided by "
                    f"{result.decided_by!r}, not the rewrite prover"
                )
        times.append(total)
        criteria_by_mode["rewrite_first"] = criteria
    times_by_mode["rewrite_first"] = times

    for mode in ("cold", "canonical_hit", "rewrite_first"):
        if criteria_by_mode[mode] != criteria_by_mode["cold"]:
            raise RuntimeError(
                f"{name}: verdict drift in mode {mode!r}: "
                f"{criteria_by_mode[mode]} vs cold {criteria_by_mode['cold']}"
            )
        samples = times_by_mode[mode]
        entries.append(
            {
                "name": f"rewrite/{name}/{mode}",
                "workload": "translation_levels",
                "family": name,
                "num_levels": NUM_LEVELS,
                "repeats": repeats,
                "mean_ms": sum(samples) / len(samples),
                "min_ms": min(samples),
            }
        )
    speedups = {
        f"{name}_canonical_hit_vs_cold": round(
            min(times_by_mode["cold"]) / min(times_by_mode["canonical_hit"]), 2
        ),
        f"{name}_rewrite_vs_cold": round(
            min(times_by_mode["cold"]) / min(times_by_mode["rewrite_first"]), 2
        ),
    }
    return entries, speedups


def run(args: argparse.Namespace) -> dict:
    repeats = args.repeats or (2 if args.quick else 5)
    families = QUICK_FAMILIES if args.quick else FULL_FAMILIES

    entries: list[dict] = []
    speedups: dict[str, float] = {}
    for name, build in families:
        family_entries, family_speedups = bench_family(name, build, repeats)
        entries.extend(family_entries)
        speedups.update(family_speedups)

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "transpilation_aware_rewrite",
        "scale": SCALE,
        "python": platform.python_version(),
        "results": entries,
        "speedups": speedups,
        "speedup_vs_baseline": speedups[f"{families[0][0]}_rewrite_vs_cold"],
        "baseline": {
            "source": "cold run (fresh manager per level, DD portfolio, no cache)"
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few repeats (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", default="BENCH_rewrite.json", metavar="PATH")
    args = parser.parse_args(argv)

    try:
        payload = run(args)
        write_bench_json(args.output, payload)
    except (RuntimeError, ValueError) as error:
        print(f"benchmark failed: {error}", file=sys.stderr)
        return 1

    for entry in payload["results"]:
        print(
            f"{entry['name']:>32} repeats={entry['repeats']:<2} "
            f"min={entry['min_ms']:8.2f}ms"
        )
    for key, value in payload["speedups"].items():
        print(f"{key}: {value}x")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
