"""Static vs adaptive portfolio scheduling on Table-1 and synthetic batches.

The paper's core observation is that no single checker order wins everywhere:
a falsifier-first lineup wastes simulation time on equivalent clone pairs,
while a prover-first lineup burns the whole proof budget before trying the
cheap falsifier on buggy pairs.  This benchmark times three scheduling
configurations on three workload classes:

* ``static-sim-first``    — portfolio ``simulation,alternating`` in order
  (the shipped default);
* ``static-prover-first`` — portfolio ``alternating,simulation`` in order
  (optimal for clone-heavy traffic, pessimal for falsification);
* ``adaptive``            — the feature-driven scheduler, which reorders the
  same portfolio per pair.

Workloads: the Table-1 QFT suite (static vs dynamic realizations, all
equivalent), a clone-heavy batch (identical builds — the falsifier can never
refute), and a falsification-heavy batch (injected bugs — the prover is
wasted work).  The adaptive scheduler should track the *best* static order on
every workload; each run also asserts pair-for-pair identical criteria across
all three configurations (verdict stability fails the script, timing noise
never does).

Results are emitted as ``BENCH_scheduler.json`` (schema shared via
``bench_common.validate_bench_payload``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler.py            # full run
    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

from bench_common import BENCH_SCHEMA_VERSION, SCALE, write_bench_json

from repro.algorithms import ghz_ladder, qft_dynamic, qft_static_benchmark
from repro.circuit.random_circuits import random_static_circuit
from repro.core import EquivalenceCheckingManager

SEED = 42

#: (label, portfolio, scheduler) triples benchmarked against each other.
CONFIGURATIONS = [
    ("static-sim-first", ("simulation", "alternating"), "static"),
    ("static-prover-first", ("alternating", "simulation"), "static"),
    ("adaptive", ("simulation", "alternating"), "adaptive"),
]

FULL_QFT_SIZES = [4, 6, 8]
QUICK_QFT_SIZES = [4, 6]
FULL_FALSIFICATION_SIZES = [5, 6, 7]
QUICK_FALSIFICATION_SIZES = [5, 6]


def table1_qft_pairs(sizes: list[int]):
    """The Table-1 QFT suite: static vs dynamic realization, equivalent."""
    return [(qft_static_benchmark(n), qft_dynamic(n)) for n in sizes]


def clone_pairs(copies: int):
    """Identical builds — provably equivalent, unfalsifiable by simulation."""
    pairs = []
    for index in range(copies):
        pairs.append((ghz_ladder(3 + index % 3), ghz_ladder(3 + index % 3)))
        pairs.append((qft_static_benchmark(4), qft_static_benchmark(4)))
    return pairs


def falsification_pairs(sizes: list[int]):
    """Structurally unrelated pairs — the falsifier's home turf.

    Comparing a QFT against a random circuit makes the alternating product
    diagram blow up (nothing cancels), while a single random stimulus refutes
    the pair almost immediately: prover-first lineups pay 10-100x here.
    """
    return [
        (qft_static_benchmark(n), random_static_circuit(n, depth=n, seed=7 + n))
        for n in sizes
    ]


def bench_workload(workload: str, pairs, repeats: int) -> list[dict]:
    """Time every scheduling configuration on one workload, check agreement."""
    entries = []
    criteria_by_config: dict[str, list[str]] = {}
    for label, portfolio, scheduler in CONFIGURATIONS:
        manager = EquivalenceCheckingManager(
            seed=SEED, portfolio=portfolio, scheduler=scheduler
        )
        timings = []
        criteria: list[str] = []
        for _ in range(repeats):
            criteria = []
            start = time.perf_counter()
            for first, second in pairs:
                criteria.append(manager.run(first, second).criterion.value)
            timings.append((time.perf_counter() - start) * 1000.0)
        criteria_by_config[label] = criteria
        entries.append(
            {
                "name": f"{workload}/{label}",
                "workload": workload,
                "configuration": label,
                "scheduler": scheduler,
                "portfolio": list(portfolio),
                "num_pairs": len(pairs),
                "repeats": repeats,
                "mean_ms": sum(timings) / len(timings),
                "min_ms": min(timings),
            }
        )
    reference = criteria_by_config[CONFIGURATIONS[0][0]]
    for label, criteria in criteria_by_config.items():
        if criteria != reference:
            raise RuntimeError(
                f"verdict instability on {workload}: {label} disagrees with "
                f"{CONFIGURATIONS[0][0]} ({criteria} vs {reference})"
            )
    return entries


def _speedups(results: list[dict]) -> dict:
    """Adaptive speedup vs each static order, per workload (min_ms based)."""
    summary: dict = {}
    by_key = {entry["name"]: entry for entry in results}
    workloads = {entry["workload"] for entry in results}
    for workload in sorted(workloads):
        adaptive = by_key[f"{workload}/adaptive"]["min_ms"]
        summary[workload] = {
            f"adaptive_vs_{label}": round(by_key[f"{workload}/{label}"]["min_ms"] / adaptive, 3)
            for label, _, scheduler in CONFIGURATIONS
            if scheduler == "static"
        }
    return summary


def run(args: argparse.Namespace) -> dict:
    repeats = args.repeats or (2 if args.quick else 5)
    copies = 2 if args.quick else 4
    qft_sizes = QUICK_QFT_SIZES if args.quick else FULL_QFT_SIZES
    falsification_sizes = (
        QUICK_FALSIFICATION_SIZES if args.quick else FULL_FALSIFICATION_SIZES
    )

    results = []
    results += bench_workload("table1_qft", table1_qft_pairs(qft_sizes), repeats)
    results += bench_workload("clone_batch", clone_pairs(copies), repeats)
    results += bench_workload(
        "falsification_batch", falsification_pairs(falsification_sizes), repeats
    )

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "portfolio_scheduler",
        "scale": SCALE,
        "python": platform.python_version(),
        "results": results,
        "speedups": _speedups(results),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few repeats (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", default="BENCH_scheduler.json", metavar="PATH")
    args = parser.parse_args(argv)

    try:
        payload = run(args)
        write_bench_json(args.output, payload)
    except (RuntimeError, ValueError) as error:
        print(f"benchmark failed: {error}", file=sys.stderr)
        return 1

    for entry in payload["results"]:
        print(
            f"{entry['name']:>40} pairs={entry['num_pairs']:<3} "
            f"mean={entry['mean_ms']:8.2f}ms min={entry['min_ms']:8.2f}ms"
        )
    for workload, speedups in payload["speedups"].items():
        rendered = ", ".join(f"{k}={v:.2f}x" for k, v in speedups.items())
        print(f"{workload}: {rendered}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
