"""Verification service layer: warm-cache and in-batch-dedup benchmarks.

Two workloads measure what the verdict cache buys a long-running service:

* ``qft_rerun``  — cold vs warm verification of the Table-1 QFT pair (static
  vs dynamic realization).  Cold builds a fresh manager per repeat; warm
  re-runs through a primed cache.  The warm path must be **>= 10x** faster —
  a cache hit skips scheduling and every checker — and must return the same
  criterion (verdict stability fails the script, timing noise never does).
* ``dedup_batch`` — a duplicate-heavy batch (20 pairs, 4 distinct, the shape
  of CI re-runs) through ``verify_batch`` with and without the cache.  The
  deduped run must agree entry-for-entry with the plain run and must show at
  least 16 cache hits (one per fanned-out duplicate).
* ``server_throughput`` — the same duplicate-heavy pair mix driven over HTTP
  by concurrent clients against BOTH front ends (``VerificationServer`` on
  the thread pool, ``AsyncVerificationServer`` on asyncio with long-poll
  collection).  The two backends must return identical per-request verdicts
  (drift fails the script); their relative throughput is recorded, never
  gated — timing noise must not fail CI.

Results are emitted as ``BENCH_service.json`` (schema shared via
``bench_common.validate_bench_payload``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import platform
import sys
import threading
import time

from bench_common import BENCH_SCHEMA_VERSION, SCALE, write_bench_json

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
)
from repro.core import Configuration, EquivalenceCheckingManager
from repro.service import (
    AsyncVerificationServer,
    VerificationClient,
    VerificationServer,
)

SEED = 42

FULL_QFT_SIZES = [6, 8, 10]
QUICK_QFT_SIZES = [6]

#: Warm-over-cold factor the cache must deliver on every QFT size.
REQUIRED_WARM_SPEEDUP = 10.0

#: In-batch hits the duplicate-heavy batch must produce (20 pairs, 4 distinct).
REQUIRED_DEDUP_HITS = 16


def _time_ms(callable_) -> tuple[float, object]:
    start = time.perf_counter()
    value = callable_()
    return (time.perf_counter() - start) * 1000.0, value


def bench_qft_rerun(sizes: list[int], repeats: int) -> tuple[list[dict], dict]:
    """Cold vs warm verification of the Table-1 QFT pair, per size."""
    entries = []
    speedups: dict[str, float] = {}
    for size in sizes:
        pair = (qft_static_benchmark(size), qft_dynamic(size))
        cold_times, warm_times = [], []
        criteria = set()
        for _ in range(repeats):
            manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
            elapsed, result = _time_ms(lambda: manager.run(*pair))
            cold_times.append(elapsed)
            criteria.add(result.criterion)
            elapsed, warm = _time_ms(lambda: manager.run(*pair))
            warm_times.append(elapsed)
            criteria.add(warm.criterion)
            if not warm.cached:
                raise RuntimeError(f"warm QFT n={size} run missed the cache")
        if len(criteria) != 1:
            raise RuntimeError(
                f"verdict instability on QFT n={size}: cold/warm criteria {criteria}"
            )
        speedup = min(cold_times) / min(warm_times)
        speedups[f"qft{size}"] = round(speedup, 1)
        if speedup < REQUIRED_WARM_SPEEDUP:
            raise RuntimeError(
                f"warm-cache rerun of QFT n={size} is only {speedup:.1f}x faster "
                f"than cold (required: {REQUIRED_WARM_SPEEDUP}x)"
            )
        for label, times in (("cold", cold_times), ("warm", warm_times)):
            entries.append(
                {
                    "name": f"qft_rerun/n{size}/{label}",
                    "workload": "qft_rerun",
                    "size": size,
                    "repeats": repeats,
                    "mean_ms": sum(times) / len(times),
                    "min_ms": min(times),
                }
            )
    return entries, speedups


def duplicate_heavy_pairs():
    """20 pairs, 4 distinct — the shape of iterated CI re-verification."""
    distinct = [
        (ghz_ladder(4), ghz_ladder(4)),
        (ghz_ladder(4), ghz_with_bug(4)),
        (qft_static_benchmark(4), qft_dynamic(4)),
        (bernstein_vazirani_static("1011"), bernstein_vazirani_dynamic("1011")),
    ]
    return [distinct[index % 4] for index in range(20)]


def bench_dedup_batch(repeats: int) -> tuple[list[dict], dict]:
    """Duplicate-heavy batch with vs without in-batch deduplication."""
    pairs = duplicate_heavy_pairs()
    entries = []
    criteria_by_mode = {}
    times_by_mode = {}
    for mode, cache_enabled in (("plain", False), ("deduped", True)):
        times = []
        criteria: list[str] = []
        for _ in range(repeats):
            manager = EquivalenceCheckingManager(
                seed=SEED, verdict_cache=cache_enabled, max_workers=2
            )
            elapsed, batch = _time_ms(lambda: manager.verify_batch(pairs))
            times.append(elapsed)
            criteria = [entry.result.criterion.value for entry in batch.entries]
            if cache_enabled:
                hits = manager.verdict_cache.statistics()["hits"]
                if hits < REQUIRED_DEDUP_HITS:
                    raise RuntimeError(
                        f"in-batch dedup produced only {hits} cache hits "
                        f"(required: {REQUIRED_DEDUP_HITS})"
                    )
        criteria_by_mode[mode] = criteria
        times_by_mode[mode] = min(times)
        entries.append(
            {
                "name": f"dedup_batch/{mode}",
                "workload": "dedup_batch",
                "num_pairs": len(pairs),
                "repeats": repeats,
                "mean_ms": sum(times) / len(times),
                "min_ms": min(times),
            }
        )
    if criteria_by_mode["plain"] != criteria_by_mode["deduped"]:
        raise RuntimeError(
            "verdict instability: deduped batch disagrees with the plain batch "
            f"({criteria_by_mode['deduped']} vs {criteria_by_mode['plain']})"
        )
    return entries, {
        "dedup_batch": round(times_by_mode["plain"] / times_by_mode["deduped"], 2)
    }


def bench_server_throughput(
    repeats: int, num_clients: int, num_requests: int
) -> tuple[list[dict], dict]:
    """Concurrent-client HTTP throughput: thread backend vs asyncio backend.

    Each repeat starts a fresh server on an ephemeral port, fans
    ``num_requests`` verifications (duplicate-heavy mix) across
    ``num_clients`` client threads, and waits for every verdict.  The gate is
    verdict agreement between the two backends; throughput is informational.
    """
    pairs = [duplicate_heavy_pairs()[index % 20] for index in range(num_requests)]
    entries = []
    criteria_by_backend: dict[str, list[str]] = {}
    times_by_backend: dict[str, float] = {}
    for backend in ("thread", "async"):
        times = []
        criteria: list[str] = []
        for _ in range(repeats):
            configuration = Configuration(seed=SEED, max_workers=2)
            if backend == "thread":
                server = VerificationServer(port=0, configuration=configuration)
            else:
                server = AsyncVerificationServer(port=0, configuration=configuration)
            server.start_background()
            try:
                verdicts: list[str | None] = [None] * len(pairs)

                def drive(indices, url=server.url):
                    client = VerificationClient(url, timeout=30.0)
                    for index in indices:
                        first, second = pairs[index]
                        payload = client.verify(first, second, timeout=120.0)
                        verdicts[index] = payload["criterion"]

                chunks = [
                    list(range(offset, len(pairs), num_clients))
                    for offset in range(num_clients)
                ]
                threads = [
                    threading.Thread(target=drive, args=(chunk,)) for chunk in chunks
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                times.append((time.perf_counter() - start) * 1000.0)
            finally:
                server.close()
            if any(verdict is None for verdict in verdicts):
                raise RuntimeError(f"{backend} backend dropped a verification")
            criteria = [str(verdict) for verdict in verdicts]
        criteria_by_backend[backend] = criteria
        times_by_backend[backend] = min(times)
        entries.append(
            {
                "name": f"server_throughput/{backend}",
                "workload": "server_throughput",
                "num_requests": num_requests,
                "num_clients": num_clients,
                "repeats": repeats,
                "mean_ms": sum(times) / len(times),
                "min_ms": min(times),
                "requests_per_second": round(
                    num_requests / (min(times) / 1000.0), 1
                ),
            }
        )
    if criteria_by_backend["thread"] != criteria_by_backend["async"]:
        raise RuntimeError(
            "verdict drift between server backends: "
            f"{criteria_by_backend['async']} (async) vs "
            f"{criteria_by_backend['thread']} (thread)"
        )
    return entries, {
        "server_async_vs_thread": round(
            times_by_backend["thread"] / times_by_backend["async"], 2
        )
    }


def run(args: argparse.Namespace) -> dict:
    repeats = args.repeats or (2 if args.quick else 5)
    sizes = QUICK_QFT_SIZES if args.quick else FULL_QFT_SIZES

    qft_entries, qft_speedups = bench_qft_rerun(sizes, repeats)
    dedup_entries, dedup_speedups = bench_dedup_batch(repeats)
    throughput_repeats = max(1, repeats // 2)
    num_clients = 4 if args.quick else 8
    num_requests = 12 if args.quick else 40
    server_entries, server_speedups = bench_server_throughput(
        throughput_repeats, num_clients, num_requests
    )

    largest = f"qft{sizes[-1]}"
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "verification_service",
        "scale": SCALE,
        "python": platform.python_version(),
        "results": qft_entries + dedup_entries + server_entries,
        "speedups": {
            "warm_vs_cold": qft_speedups,
            **dedup_speedups,
            **server_speedups,
        },
        "speedup_vs_baseline": qft_speedups[largest],
        "baseline": {"source": "cold run (fresh manager, empty verdict cache)"},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few repeats (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", default="BENCH_service.json", metavar="PATH")
    args = parser.parse_args(argv)

    try:
        payload = run(args)
        write_bench_json(args.output, payload)
    except (RuntimeError, ValueError) as error:
        print(f"benchmark failed: {error}", file=sys.stderr)
        return 1

    for entry in payload["results"]:
        print(
            f"{entry['name']:>28} repeats={entry['repeats']:<2} "
            f"mean={entry['mean_ms']:8.2f}ms min={entry['min_ms']:8.2f}ms"
        )
    warm = payload["speedups"]["warm_vs_cold"]
    print("warm-cache speedup:", ", ".join(f"{k}={v}x" for k, v in warm.items()))
    print(f"in-batch dedup speedup: {payload['speedups']['dedup_batch']}x")
    print(
        "async-vs-thread server throughput: "
        f"{payload['speedups']['server_async_vs_thread']}x"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
