"""Table 1, Bernstein-Vazirani block.

For each instance size the paper reports four runtimes: the transformation of
the dynamic circuit (t_trans), the full functional verification against the
static circuit (t_ver), the extraction of the measurement-outcome distribution
from the dynamic circuit (t_extract), and the classical simulation of the
static circuit (t_sim).  The qualitative claims to reproduce are

* t_trans is negligible compared to t_ver, and
* t_extract is *smaller* than t_sim because the BV state is sparse (a single
  path survives the branching).
"""

from __future__ import annotations

import random

import pytest

from bench_common import sizes_for
from repro.algorithms import bernstein_vazirani_dynamic, bernstein_vazirani_static
from repro.core import check_equivalence, extract_distribution, to_unitary_circuit
from repro.simulators import DDSimulator

SIZES = sizes_for("bv")


def _hidden_string(num_bits: int) -> str:
    rng = random.Random(num_bits)
    return "".join(rng.choice("01") for _ in range(num_bits)) or "1"


@pytest.fixture(scope="module")
def circuits():
    pairs = {}
    for size in SIZES:
        hidden = _hidden_string(size)
        pairs[size] = (bernstein_vazirani_static(hidden), bernstein_vazirani_dynamic(hidden), hidden)
    return pairs


@pytest.mark.parametrize("size", SIZES)
def test_bv_transformation(benchmark, circuits, size):
    """t_trans: unitary reconstruction of the dynamic BV circuit."""
    _, dynamic, _ = circuits[size]
    result = benchmark(lambda: to_unitary_circuit(dynamic))
    assert result.circuit.num_qubits == size + 1
    benchmark.extra_info["n_static"] = size + 1
    benchmark.extra_info["added_qubits"] = result.num_added_qubits


@pytest.mark.parametrize("size", SIZES)
def test_bv_full_functional_verification(benchmark, circuits, size):
    """t_ver: equivalence check of static vs. (transformed) dynamic BV."""
    static, dynamic, _ = circuits[size]
    result = benchmark(lambda: check_equivalence(static, dynamic))
    assert result.equivalent
    benchmark.extra_info["gates_static"] = static.size
    benchmark.extra_info["gates_dynamic"] = dynamic.size
    benchmark.extra_info["max_dd_nodes"] = result.details.get("max_nodes")


@pytest.mark.parametrize("size", SIZES)
def test_bv_extraction(benchmark, circuits, size):
    """t_extract: measurement-outcome distribution of the dynamic BV circuit."""
    _, dynamic, hidden = circuits[size]
    result = benchmark(lambda: extract_distribution(dynamic, backend="dd"))
    assert result.probability(hidden) == pytest.approx(1.0, abs=1e-9)
    benchmark.extra_info["num_paths"] = result.num_paths


@pytest.mark.parametrize("size", SIZES)
def test_bv_static_simulation(benchmark, circuits, size):
    """t_sim: classical (DD) simulation of the static BV circuit."""
    static, _, hidden = circuits[size]
    state = benchmark(lambda: DDSimulator().run(static))
    # The data register holds the hidden string with certainty; the ancilla
    # (qubit 0, last character of the bitstring key) remains in |->.
    probabilities = state.probabilities_dict()
    assert sum(value for key, value in probabilities.items() if key[:-1] == hidden) == pytest.approx(
        1.0, abs=1e-9
    )
