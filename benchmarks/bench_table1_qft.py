"""Table 1, Quantum Fourier Transform block.

Qualitative claims to reproduce:

* full functional verification of the QFT pair stays cheap and scales
  gracefully with the number of qubits, while
* the extraction scheme blows up — the QFT of |0...0> is *dense* (every
  outcome has probability 1/2^n), so the number of simulation paths doubles
  with every added qubit, and the runtime roughly doubles per qubit as the
  paper observes.  For this family Scheme 1 is the right tool.
"""

from __future__ import annotations

import pytest

from bench_common import sizes_for
from repro.algorithms import qft_dynamic, qft_static_benchmark
from repro.core import check_equivalence, extract_distribution, to_unitary_circuit
from repro.simulators import DDSimulator

SIZES = sizes_for("qft")
EXTRACT_SIZES = sizes_for("qft_extract")


@pytest.mark.parametrize("size", SIZES)
def test_qft_transformation(benchmark, size):
    """t_trans: unitary reconstruction of the dynamic (single-qubit) QFT."""
    dynamic = qft_dynamic(size)
    result = benchmark(lambda: to_unitary_circuit(dynamic))
    assert result.circuit.num_qubits == size


@pytest.mark.parametrize("size", SIZES)
def test_qft_full_functional_verification(benchmark, size):
    """t_ver: equivalence check of static vs. (transformed) dynamic QFT."""
    static = qft_static_benchmark(size)
    dynamic = qft_dynamic(size)
    result = benchmark(lambda: check_equivalence(static, dynamic))
    assert result.equivalent
    benchmark.extra_info["gates_static"] = static.size
    benchmark.extra_info["gates_dynamic"] = dynamic.size
    benchmark.extra_info["max_dd_nodes"] = result.details.get("max_nodes")


@pytest.mark.parametrize("size", EXTRACT_SIZES)
def test_qft_extraction(benchmark, size):
    """t_extract: the dense outcome distribution forces 2**n simulation paths."""
    dynamic = qft_dynamic(size)
    result = benchmark(lambda: extract_distribution(dynamic, backend="statevector"))
    assert result.num_paths == 2**size
    benchmark.extra_info["num_paths"] = result.num_paths


@pytest.mark.parametrize("size", SIZES)
def test_qft_static_simulation(benchmark, size):
    """t_sim: classical (DD) simulation of the static QFT circuit."""
    static = qft_static_benchmark(size)
    state = benchmark(lambda: DDSimulator().run(static))
    assert state.num_qubits == size
