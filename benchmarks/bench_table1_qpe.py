"""Table 1, Quantum Phase Estimation block (the paper's running example).

Qualitative claims to reproduce:

* t_trans stays negligible while t_ver grows quickly with the number of
  precision bits (the reconstructed unitary involves all counting qubits), and
* t_extract stays tiny and is far below t_sim of the static circuit, because
  the IQPE outcome distribution is extremely sparse (at most a handful of
  paths survive the pruning).
"""

from __future__ import annotations

import pytest

from bench_common import sizes_for
from repro.algorithms import iterative_qpe, qpe_static, running_example_lambda
from repro.core import check_equivalence, extract_distribution, to_unitary_circuit
from repro.simulators import DDSimulator

SIZES = sizes_for("qpe")


@pytest.mark.parametrize("size", SIZES)
def test_qpe_transformation(benchmark, size):
    """t_trans: unitary reconstruction of the iterative QPE circuit."""
    dynamic = iterative_qpe(size, running_example_lambda)
    result = benchmark(lambda: to_unitary_circuit(dynamic))
    assert result.circuit.num_qubits == size + 1


@pytest.mark.parametrize("size", SIZES)
def test_qpe_full_functional_verification(benchmark, size):
    """t_ver: equivalence check of static QPE vs. (transformed) iterative QPE."""
    static = qpe_static(size, running_example_lambda)
    dynamic = iterative_qpe(size, running_example_lambda)
    result = benchmark(lambda: check_equivalence(static, dynamic))
    assert result.equivalent
    benchmark.extra_info["gates_static"] = static.size
    benchmark.extra_info["gates_dynamic"] = dynamic.size
    benchmark.extra_info["max_dd_nodes"] = result.details.get("max_nodes")


@pytest.mark.parametrize("size", SIZES)
def test_qpe_extraction(benchmark, size):
    """t_extract: outcome distribution of the iterative QPE circuit."""
    dynamic = iterative_qpe(size, running_example_lambda)
    result = benchmark(lambda: extract_distribution(dynamic, backend="dd"))
    assert result.total_probability() == pytest.approx(1.0, abs=1e-9)
    benchmark.extra_info["num_paths"] = result.num_paths


@pytest.mark.parametrize("size", SIZES)
def test_qpe_static_simulation(benchmark, size):
    """t_sim: classical (DD) simulation of the static QPE circuit."""
    static = qpe_static(size, running_example_lambda)
    state = benchmark(lambda: DDSimulator().run(static))
    assert state.num_qubits == size + 1
