"""Regenerate Table 1 of the paper as a single text table.

Usage::

    python benchmarks/table1.py            # scaled-down default sizes
    REPRO_SCALE=large python benchmarks/table1.py
    REPRO_SCALE=paper python benchmarks/table1.py   # original sizes (very slow in pure Python)

For every instance the script reports the same columns as the paper:
``n``/``|G|`` of the static and the dynamic circuit, the transformation time
``t_trans``, the verification time ``t_ver`` (full functional verification of
static vs. reconstructed dynamic circuit), the extraction time ``t_extract``
(Scheme 2 on the dynamic circuit) and the simulation time ``t_sim`` (classical
simulation of the static circuit).
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_common import SCALE, sizes_for  # noqa: E402

from repro.algorithms import (  # noqa: E402
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    iterative_qpe,
    qft_dynamic,
    qft_static_benchmark,
    qpe_static,
    running_example_lambda,
)
from repro.core import check_equivalence, extract_distribution, to_unitary_circuit  # noqa: E402
from repro.simulators import DDSimulator  # noqa: E402

HEADER = (
    f"{'benchmark':<22} {'n_st':>5} {'|G|_st':>7} {'n_dyn':>6} {'|G|_dyn':>8} "
    f"{'t_trans[s]':>11} {'t_ver[s]':>10} {'t_extract[s]':>13} {'t_sim[s]':>10}"
)


def _timed(function):
    start = time.perf_counter()
    value = function()
    return value, time.perf_counter() - start


def run_instance(name: str, static, dynamic, *, extract: bool = True) -> str:
    transformation, t_trans = _timed(lambda: to_unitary_circuit(dynamic))
    verification, t_ver = _timed(lambda: check_equivalence(static, transformation.circuit))
    if not verification.equivalent:
        raise RuntimeError(f"{name}: verification unexpectedly failed")
    if extract:
        _, t_extract = _timed(lambda: extract_distribution(dynamic, backend="dd"))
        t_extract_text = f"{t_extract:13.4f}"
    else:
        t_extract_text = f"{'—':>13}"
    _, t_sim = _timed(lambda: DDSimulator().run(static))
    return (
        f"{name:<22} {static.num_qubits:>5} {static.size:>7} {dynamic.num_qubits:>6} "
        f"{dynamic.size:>8} {t_trans:11.4f} {t_ver:10.4f} {t_extract_text} {t_sim:10.4f}"
    )


def main() -> None:
    print(f"Table 1 reproduction (REPRO_SCALE={SCALE})")
    print(HEADER)
    print("-" * len(HEADER))

    print("# Bernstein-Vazirani")
    for size in sizes_for("bv"):
        rng = random.Random(size)
        hidden = "".join(rng.choice("01") for _ in range(size)) or "1"
        print(
            run_instance(
                f"bv_{size}",
                bernstein_vazirani_static(hidden),
                bernstein_vazirani_dynamic(hidden),
            )
        )

    print("# Quantum Fourier Transform")
    extract_sizes = set(sizes_for("qft_extract"))
    for size in sizes_for("qft"):
        print(
            run_instance(
                f"qft_{size}",
                qft_static_benchmark(size),
                qft_dynamic(size),
                extract=size in extract_sizes,
            )
        )

    print("# Quantum Phase Estimation")
    for size in sizes_for("qpe"):
        print(
            run_instance(
                f"qpe_{size}",
                qpe_static(size, running_example_lambda),
                iterative_qpe(size, running_example_lambda),
            )
        )


if __name__ == "__main__":
    main()
