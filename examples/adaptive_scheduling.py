"""Adaptive portfolio scheduling: checker order decided per pair by features.

``Configuration.scheduler`` selects how the
:class:`~repro.core.manager.EquivalenceCheckingManager` turns its checker
portfolio into a per-pair lineup:

* ``static`` runs the configured portfolio in configured order — every pair
  gets ``simulation`` then ``alternating``, no matter what it looks like;
* ``adaptive`` inspects cheap structural features of the pair
  (:func:`~repro.core.features.extract_pair_features`) and reorders: provers
  first on near-identical builds (the falsifier cannot refute a clone, and
  early termination then skips it entirely), the falsifier front-loaded on
  dissimilar pairs, and conditioned-reset pairs — which Scheme 1 cannot
  reconstruct at all — routed to the Scheme-2 ``distribution`` checker.

The adaptive scheduler never changes a verdict, only when (and whether) each
checker runs.  Run with ``python examples/adaptive_scheduling.py``.
"""

import time

from repro import EquivalenceCheckingManager, QuantumCircuit
from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
)


def conditioned_reset_circuit() -> QuantumCircuit:
    """A dynamic circuit whose conditioned reset defeats Scheme 1."""
    circuit = QuantumCircuit(1, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.reset(0, condition=(0, 1))
    circuit.measure(0, 1)
    return circuit


def mixed_batch():
    """Clone pairs, cross-realization pairs, and injected bugs."""
    pairs = [(ghz_ladder(n), ghz_ladder(n)) for n in (3, 4, 5)]  # clones
    pairs += [
        (bernstein_vazirani_static(bits), bernstein_vazirani_dynamic(bits))
        for bits in ("101", "0110")
    ]
    pairs.append((qft_static_benchmark(4), qft_dynamic(4)))
    pairs.append((ghz_ladder(4), ghz_with_bug(4)))  # falsifiable
    pairs.append(
        (bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111"))
    )
    return pairs


def run_batch(scheduler: str, pairs):
    manager = EquivalenceCheckingManager(seed=42, scheduler=scheduler)
    start = time.perf_counter()
    batch = manager.verify_batch(pairs)
    elapsed = time.perf_counter() - start
    return batch, elapsed


def main() -> None:
    pairs = mixed_batch()

    # ------------------------------------------------------------------
    # 1. Static vs adaptive on the same mixed batch: identical verdicts,
    #    different per-pair schedules.
    # ------------------------------------------------------------------
    static_batch, static_time = run_batch("static", pairs)
    adaptive_batch, adaptive_time = run_batch("adaptive", pairs)

    print("pair-by-pair (static vs adaptive):")
    for static_entry, adaptive_entry in zip(
        static_batch.entries, adaptive_batch.entries
    ):
        assert (
            static_entry.result.criterion is adaptive_entry.result.criterion
        ), "the adaptive scheduler must never change a verdict"
        print(
            f"  [{static_entry.index}] {static_entry.name_first:>14} vs "
            f"{static_entry.name_second:<14} {static_entry.result.criterion.value:<28}"
            f" static={'>'.join(static_entry.result.schedule)}"
            f" adaptive={'>'.join(adaptive_entry.result.schedule)}"
        )
    print(
        f"static:   {static_batch.num_equivalent}/{static_batch.num_pairs} equivalent "
        f"in {static_time:.3f}s"
    )
    print(
        f"adaptive: {adaptive_batch.num_equivalent}/{adaptive_batch.num_pairs} equivalent "
        f"in {adaptive_time:.3f}s"
    )

    # ------------------------------------------------------------------
    # 2. Conditioned resets: Scheme 1 cannot reconstruct them, so the static
    #    lineup comes back empty-handed; the adaptive scheduler routes the
    #    pair to the Scheme-2 distribution checker and decides it.
    # ------------------------------------------------------------------
    first, second = conditioned_reset_circuit(), conditioned_reset_circuit()
    static_result = EquivalenceCheckingManager(seed=42).run(first, second)
    adaptive_result = EquivalenceCheckingManager(seed=42, scheduler="adaptive").run(
        first, second
    )
    print("conditioned-reset pair:")
    print(f"  static:   {static_result.criterion.value} ({static_result.reason})")
    print(
        f"  adaptive: {adaptive_result.criterion.value} "
        f"(schedule={'>'.join(adaptive_result.schedule)})"
    )

    # ------------------------------------------------------------------
    # 3. The feature vector behind a decision travels with the result.
    # ------------------------------------------------------------------
    features = adaptive_result.features
    print(
        "features: similarity="
        f"{features['structural_similarity']:.2f} "
        f"dynamic={features['any_dynamic']} "
        f"scheme2={features['needs_scheme_two']}"
    )


if __name__ == "__main__":
    main()
