"""Reproduce Fig. 4: the branching extraction tree of the running example.

Walks the 3-bit IQPE circuit for ``U = p(3*pi/8)`` measurement by measurement
and prints the check-pointed probabilities at every branching point, i.e. a
textual rendering of Fig. 4 of the paper, followed by the resulting outcome
distribution.

Run with ``python examples/distribution_extraction.py``.
"""

from repro.algorithms import iterative_qpe, running_example_lambda
from repro.core import extract_distribution
from repro.simulators.statevector import Statevector


def trace_branching_tree(num_bits: int = 3) -> None:
    """Manual, instrumented version of the extraction scheme for display."""
    circuit = iterative_qpe(num_bits, running_example_lambda)
    branches = [(Statevector.zero_state(circuit.num_qubits), [0] * circuit.num_clbits, 1.0)]
    checkpoint = 0

    for instruction in circuit:
        if instruction.is_measurement:
            checkpoint += 1
            print(f"checkpoint {checkpoint} (measurement of round {checkpoint}):")
            new_branches = []
            for state, classical, probability in branches:
                qubit = instruction.qubits[0]
                p_one = state.probability_of_one(qubit)
                prefix = "".join(str(b) for b in reversed(classical[: checkpoint - 1]))
                prefix = prefix or "-"
                print(
                    f"  branch (prefix {prefix:>3}): P(0) = {1 - p_one:.2f}, P(1) = {p_one:.2f}"
                )
                for outcome, outcome_probability in ((0, 1 - p_one), (1, p_one)):
                    if outcome_probability <= 1e-12:
                        continue
                    collapsed = state.collapse(qubit, outcome, outcome_probability)
                    updated = list(classical)
                    updated[instruction.clbits[0]] = outcome
                    new_branches.append((collapsed, updated, probability * outcome_probability))
            branches = new_branches
        elif instruction.is_reset:
            branches = [
                (branch[0].reset_qubit_outcomes(instruction.qubits[0])[0][1], branch[1], branch[2])
                if len(branch[0].reset_qubit_outcomes(instruction.qubits[0])) == 1
                else branch
                for branch in branches
            ]
            # After a measurement the reset outcome is deterministic, so the
            # single-branch case above always applies for this circuit.
        else:
            updated = []
            for state, classical, probability in branches:
                if instruction.condition is not None and not instruction.condition.is_satisfied(
                    classical
                ):
                    updated.append((state, classical, probability))
                    continue
                applied = instruction.replace(drop_condition=True) if instruction.condition else instruction
                updated.append((state.apply_instruction(applied), classical, probability))
            branches = updated

    print()
    print("joint outcome probabilities (product of check-pointed probabilities):")
    for _, classical, probability in sorted(branches, key=lambda b: b[1][::-1]):
        bitstring = "".join(str(b) for b in reversed(classical))
        print(f"  P(|{bitstring}>) = {probability:.3f}")


def main() -> None:
    trace_branching_tree()
    print()
    result = extract_distribution(iterative_qpe(3, running_example_lambda))
    print("extract_distribution() result (matches the tree above):")
    for outcome in sorted(result.distribution):
        print(f"  |{outcome}> : {result.distribution[outcome]:.3f}")
    print(
        f"\nP(|001>) = {result.probability('001'):.3f} "
        "(the paper quotes ~0.408 from rounded checkpoint probabilities)"
    )


if __name__ == "__main__":
    main()
