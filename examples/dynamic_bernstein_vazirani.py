"""Bernstein-Vazirani with two qubits: verifying a qubit-reuse optimization.

The dynamic BV realization re-uses a single work qubit via mid-circuit
measurement and reset, shrinking an (n+1)-qubit circuit to 2 qubits.  This
example verifies (for a moderately large hidden string) that the dynamic
realization is fully functionally equivalent to the static circuit, and that
it produces the hidden string with certainty.

Run with ``python examples/dynamic_bernstein_vazirani.py``.
"""

import random
import time

from repro.algorithms import bernstein_vazirani_dynamic, bernstein_vazirani_static
from repro.core import check_equivalence, extract_distribution


def main() -> None:
    rng = random.Random(2022)
    hidden = "".join(rng.choice("01") for _ in range(24))
    print(f"hidden string s = {hidden} ({len(hidden)} bits)")

    static = bernstein_vazirani_static(hidden)
    dynamic = bernstein_vazirani_dynamic(hidden)
    print("static :", static.summary())
    print("dynamic:", dynamic.summary())
    print()

    start = time.perf_counter()
    result = check_equivalence(static, dynamic)
    elapsed = time.perf_counter() - start
    print(f"Full functional verification: {result.criterion.value} in {elapsed:.3f}s")
    print(f"  t_trans = {result.time_transformation:.5f}s, t_ver = {result.time_check:.3f}s")
    print()

    extraction = extract_distribution(dynamic, backend="dd")
    print(
        f"Extraction scheme: {extraction.num_paths} surviving path(s), "
        f"{extraction.num_pruned} pruned, t_extract = {extraction.time_taken:.5f}s"
    )
    print("Extracted distribution:", extraction.distribution)
    recovered = max(extraction.distribution, key=extraction.distribution.get)
    print("Recovered hidden string:", recovered, "(correct)" if recovered == hidden else "(WRONG)")


if __name__ == "__main__":
    main()
