"""Fault-tolerant verification: breakers, retries, and a crash-safe journal.

PR 8 makes the verification stack survive its own components failing:

* **Circuit breakers** — a checker that keeps crashing is quarantined
  (moved to the back of every schedule, then refused outright) instead of
  burning its budget on every pair; after a cooldown a single probe run
  decides whether it rejoins the portfolio.
* **Retry with backoff** — the process-pool batch path rebuilds a broken
  pool and re-dispatches only the lost work units (bisecting multi-pair
  units so healthy pairs still get verdicts); the HTTP client retries
  429/503 with capped decorrelated jitter, honoring ``Retry-After``.
* **Crash-safe journal** — verdicts persist as checksummed, length-prefixed
  records; a torn tail from a crash mid-append is truncated and counted,
  never silently corrupting the cache.

All of it is demonstrated *deterministically* via the fault-injection
harness (``Configuration.fault_plan``) — the same mechanism the chaos test
suite uses.  Run with ``python examples/fault_tolerance.py``.
"""

import random
import tempfile
from pathlib import Path

from repro.core import Configuration, EquivalenceCheckingManager
from repro.resilience import CrashSafeJournal, FaultPlan, FaultRule, RetryPolicy
from repro.service.cache import VerdictCache


def breaker_quarantine() -> None:
    """A persistently crashing checker is quarantined, verdicts keep coming."""
    print("=" * 72)
    print("1. circuit breakers: quarantine a crashing checker")
    print("=" * 72)
    from repro.algorithms import ghz_ladder

    plan = FaultPlan(
        rules=(FaultRule(site="checker", target="simulation", times=0),)
    )
    manager = EquivalenceCheckingManager(
        Configuration(
            portfolio=("simulation", "alternating"),
            seed=3,
            verdict_cache=False,
            breaker_threshold=2,
            breaker_cooldown=60.0,
            fault_plan=plan,
        )
    )
    for round_number in range(1, 4):
        result = manager.run(ghz_ladder(3), ghz_ladder(3))
        statuses = {a.method: a.status for a in result.attempts}
        print(
            f"  run {round_number}: criterion={result.criterion.value:<12} "
            f"decided_by={result.decided_by:<12} simulation={statuses['simulation']}"
        )
    snapshot = manager.breakers.snapshot()["simulation"]
    print(
        f"  breaker[simulation]: state={snapshot['state']} "
        f"failures={snapshot['failures']} opens={snapshot['opens']}"
    )
    print(f"  quarantined checkers: {manager.breakers.quarantined()}")


def retry_backoff() -> None:
    """Capped decorrelated jitter, deterministic under a seeded RNG."""
    print()
    print("=" * 72)
    print("2. retry policy: capped decorrelated jitter")
    print("=" * 72)
    recorded = []
    policy = RetryPolicy(
        attempts=5, base=0.1, cap=2.0, rng=random.Random(42), sleep=recorded.append
    )
    for _ in range(5):
        policy.backoff()
    print("  backoff schedule:", ", ".join(f"{delay:.3f}s" for delay in recorded))
    print(f"  server hint takes precedence: {policy.next_delay(retry_after=1.5):.3f}s")


def worker_death_recovery() -> None:
    """A dying worker process loses no verdicts: the pool is rebuilt and the
    lost work units are re-dispatched (bisected when necessary)."""
    print()
    print("=" * 72)
    print("3. process-pool recovery: a worker dies mid-batch")
    print("=" * 72)
    from repro.algorithms import ghz_ladder, ghz_with_bug

    pairs = [(ghz_ladder(2 + i % 3), ghz_ladder(2 + i % 3)) for i in range(5)]
    pairs.insert(2, (ghz_ladder(3), ghz_with_bug(3)))
    # Pair #1's worker process is killed (os._exit) on its first attempt.
    plan = FaultPlan(
        rules=(FaultRule(site="worker", target="1", action="exit", times=1),)
    )
    manager = EquivalenceCheckingManager(
        Configuration(
            portfolio=("simulation", "alternating"),
            seed=3,
            executor="process",
            batch_chunk_size=3,
            max_workers=2,
            verdict_cache=False,
            batch_retries=2,
            fault_plan=plan,
        )
    )
    batch = manager.verify_batch(pairs)
    for entry in batch.entries:
        verdict = entry.result.criterion.value if entry.result else f"ERROR: {entry.error}"
        print(f"  pair {entry.index}: {verdict}")
    stats = manager.batch_statistics()
    print(
        f"  recovery: pool_rebuilds={stats['pool_rebuilds']} "
        f"unit_retries={stats['unit_retries']} "
        f"unit_bisections={stats['unit_bisections']} "
        f"abandoned_units={stats['abandoned_units']}"
    )


def crash_safe_journal() -> None:
    """A torn tail (crash mid-append) is truncated, intact records replay."""
    print()
    print("=" * 72)
    print("4. crash-safe journal: recovery after a torn append")
    print("=" * 72)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "verdicts.journal"
        journal = CrashSafeJournal(path, key=lambda r: r["fingerprint"])
        for index in range(3):
            journal.append({"fingerprint": f"pair-{index}", "criterion": "equivalent"})
        # Simulate a crash mid-append: a partial record with no newline.
        with path.open("ab") as handle:
            handle.write(b'R 999 deadbeef {"fingerprint": "pair-3", "cr')
        size_before = path.stat().st_size
        recovered = CrashSafeJournal(path, key=lambda r: r["fingerprint"])
        records = recovered.replay()
        stats = recovered.statistics()
        print(f"  file size before recovery: {size_before} bytes")
        print(f"  recovered records: {len(records)} -> {[r['fingerprint'] for r in records]}")
        print(
            f"  dropped={stats['dropped']} "
            f"truncated_bytes={stats['truncated_bytes']} "
            f"size after={stats['size_bytes']} bytes"
        )
        # The verdict cache rides on the same journal under cache_path.
        cache = VerdictCache(path=path)
        print(f"  VerdictCache replay: {cache.statistics()['persistent_entries']} "
              "entries servable after the crash")


def main() -> None:
    breaker_quarantine()
    retry_backoff()
    worker_death_recovery()
    crash_safe_journal()
    print()
    print("done: every failure mode above was injected deterministically via")
    print("Configuration.fault_plan — see tests/test_resilience_faults.py for")
    print("the full chaos matrix.")


if __name__ == "__main__":
    main()
