"""The paper's running example: iterative QPE vs. static QPE.

Reproduces the narrative of Figs. 1-3: build the 3-bit static QPE circuit for
``U = p(3*pi/8)`` (Fig. 1a) and its dynamic realization (Fig. 2), reconstruct
the unitary of the dynamic circuit (Fig. 3), and verify equivalence with both
schemes.

Run with ``python examples/iqpe_vs_qpe.py``.
"""

from repro.algorithms import iterative_qpe, qpe_static, running_example_lambda
from repro.core import check_behavioural_equivalence, check_equivalence, to_unitary_circuit

NUM_BITS = 3


def main() -> None:
    static = qpe_static(NUM_BITS, running_example_lambda)
    dynamic = iterative_qpe(NUM_BITS, running_example_lambda)

    print("Static QPE circuit (Fig. 1a):")
    print(static.draw())
    print()
    print("Dynamic (iterative) QPE circuit (Fig. 2):")
    print(dynamic.draw())
    print()
    print(static.summary())
    print(dynamic.summary())
    print()

    # Scheme 1: unitary reconstruction (Section 4 / Fig. 3).
    transformation = to_unitary_circuit(dynamic)
    print(
        f"Unitary reconstruction: {dynamic.num_qubits} qubits + "
        f"{transformation.num_added_qubits} fresh qubits -> "
        f"{transformation.circuit.num_qubits} qubits "
        f"(t_trans = {transformation.time_taken:.6f}s)"
    )
    print("Reconstructed circuit (Fig. 3b):")
    print(transformation.circuit.draw())
    print()

    functional = check_equivalence(static, dynamic)
    print("Full functional verification:", functional.criterion.value)
    print(f"  strategy = {functional.strategy}, t_ver = {functional.time_check:.6f}s")
    print()

    # Scheme 2: distribution extraction (Section 5 / Fig. 4).
    behavioural = check_behavioural_equivalence(static, dynamic)
    print("Fixed-input behavioural verification:", behavioural.criterion.value)
    distribution = behavioural.details["distribution_second"]
    print("Outcome distribution of the dynamic circuit (c2 c1 c0):")
    for outcome in sorted(distribution):
        print(f"  |{outcome}> : {distribution[outcome]:.4f}")
    print(
        "The two most probable estimates are |001> and |010>, matching Example 1 "
        "of the paper (theta = 3/16 is not exactly representable with 3 bits)."
    )


if __name__ == "__main__":
    main()
