"""Observability: tracing, structured logs, and the run-telemetry journal.

PR 10 threads a stdlib-only observability layer through every subsystem:

* **Tracing** (``repro.obs.trace``) — contextvars-based spans around every
  manager run, scheduler decision, checker attempt, cache lookup and
  journal write.  Spans cross the process-pool boundary (workers ship
  their spans home inside work-unit results) and the HTTP boundary (W3C
  ``traceparent`` headers), and export as a span tree or as Chrome
  trace-event JSON for chrome://tracing / Perfetto.
* **Structured logging** (``repro.obs.logs``) — one JSON object per line,
  automatically correlated with the active span (``trace_id``/``span_id``
  fields), silent until ``configure_logging`` opts in.
* **Run telemetry** (``repro.obs.telemetry``) — every settled verification
  appends a record (verdict, schedule, per-checker timings, cache
  provenance) to a crash-safe journal; ``summarize`` aggregates a fleet's
  history — the observation substrate for a learned scheduler.

Run with ``python examples/observability.py``.
"""

import json
import tempfile
from pathlib import Path

from repro.algorithms import ghz_ladder, ghz_with_bug
from repro.core import Configuration, EquivalenceCheckingManager
from repro.obs import trace
from repro.obs.logs import configure_logging
from repro.obs.telemetry import TelemetryJournal


def _render(node: dict, depth: int = 0) -> None:
    attrs = node.get("attrs") or {}
    checker = f" [{attrs['checker']}]" if "checker" in attrs else ""
    print(f"  {'  ' * depth}{node['name']}{checker}  {node['duration'] * 1e3:.1f}ms")
    for child in node["children"]:
        _render(child, depth + 1)


def trace_a_batch(workdir: Path) -> None:
    """Span tree of a seeded batch, then a Chrome trace-event export."""
    print("=" * 72)
    print("1. tracing: span tree of a verified batch")
    print("=" * 72)
    manager = EquivalenceCheckingManager(
        Configuration(seed=42, verdict_cache=False)
    )
    pairs = [
        (ghz_ladder(3), ghz_ladder(3)),
        (ghz_ladder(3), ghz_with_bug(3)),
    ]
    tracer = trace.Tracer()
    with trace.activate(tracer):
        batch = manager.verify_batch(pairs)
    print(f"verdicts: {[e.result.criterion.value for e in batch.entries]}")
    for root in trace.span_tree(tracer.export()):
        _render(root)

    chrome_path = workdir / "batch.chrome.json"
    chrome = trace.export_chrome(tracer.export())
    chrome_path.write_text(json.dumps(chrome), encoding="utf-8")
    print(f"\nChrome trace-event file: {len(chrome['traceEvents'])} events")
    print("(load it in chrome://tracing or https://ui.perfetto.dev)")


def structured_logs(workdir: Path) -> None:
    """JSON-lines log of a breaker opening, correlated with the trace."""
    print()
    print("=" * 72)
    print("2. structured logging: a circuit breaker opens, the log says why")
    print("=" * 72)
    from repro.resilience import FaultPlan, FaultRule

    log_path = workdir / "run.log"
    configure_logging(level="info", path=str(log_path))
    manager = EquivalenceCheckingManager(
        Configuration(
            portfolio=("simulation", "alternating"),
            seed=3,
            verdict_cache=False,
            breaker_threshold=2,
            breaker_cooldown=60.0,
            fault_plan=FaultPlan(
                rules=(FaultRule(site="checker", target="simulation", times=0),)
            ),
        )
    )
    tracer = trace.Tracer()
    with trace.activate(tracer):
        for _ in range(3):
            result = manager.run(ghz_ladder(3), ghz_ladder(3))
    print(f"last verdict (simulation quarantined): {result.criterion.value}")
    print("\nlog tail:")
    for line in log_path.read_text(encoding="utf-8").splitlines()[-3:]:
        event = json.loads(line)
        correlated = "trace_id" in event
        print(
            f"  level={event['level']} logger={event['logger']} "
            f"message={event['message']!r} trace-correlated={correlated}"
        )


def run_telemetry(workdir: Path) -> None:
    """Every settled run leaves a journal record; summarize the history."""
    print()
    print("=" * 72)
    print("3. run telemetry: the journal remembers every verdict")
    print("=" * 72)
    telemetry_path = workdir / "runs.telemetry.jsonl"
    manager = EquivalenceCheckingManager(
        Configuration(
            seed=7, verdict_cache=True, telemetry_path=str(telemetry_path)
        )
    )
    manager.run(ghz_ladder(3), ghz_ladder(3))
    manager.run(ghz_ladder(3), ghz_with_bug(3))
    manager.run(ghz_ladder(3), ghz_ladder(3))  # verdict-cache hit

    summary = TelemetryJournal(telemetry_path).summarize()
    print(f"runs: {summary['runs']}  verdicts: {summary['verdicts']}")
    print(f"cache: {summary['cache']}")
    for name, stats in sorted(summary["checkers"].items()):
        print(
            f"  {name}: attempts={stats['attempts']} "
            f"decisions={stats['decisions']} mean={stats['mean_time']:.4f}s"
        )
    print("(same data: repro-qcec telemetry summarize runs.telemetry.jsonl)")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        trace_a_batch(workdir)
        structured_logs(workdir)
        run_telemetry(workdir)


if __name__ == "__main__":
    main()
