"""Portfolio verification: early termination, timeouts, batch checking.

The :class:`~repro.core.manager.EquivalenceCheckingManager` runs a portfolio
of complementary checkers per circuit pair — simulation falsifies fast,
the alternating scheme proves equivalence — and stops at the first definitive
verdict.  ``verify_batch`` scales this to many pairs, either on a thread pool
(``executor="thread"``) or, since the DD checkers are CPU-bound pure Python
and therefore GIL-bound under threads, on a process pool
(``executor="process"``) that ships pickled work units to worker processes.

Run with ``python examples/portfolio_verification.py``.
"""

from repro import EquivalenceCheckingManager
from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    teleportation_dynamic,
    teleportation_static,
)


def describe(result) -> str:
    attempts = ", ".join(
        f"{attempt.method}:{attempt.status}" for attempt in result.attempts
    )
    return f"{result.criterion.value} (decided_by={result.decided_by}; {attempts})"


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One manager, fixed seed for reproducible stimuli.
    #    Default portfolio: simulation (falsifier) then alternating (prover).
    # ------------------------------------------------------------------
    manager = EquivalenceCheckingManager(seed=42)

    # An equivalent pair: simulation only says "probably", the alternating
    # checker delivers the definitive proof.
    result = manager.run(teleportation_static(), teleportation_dynamic())
    print("teleportation static vs dynamic:", describe(result))

    # A non-equivalent pair: the simulation falsifier finds a counterexample
    # immediately and the expensive prover is skipped entirely.
    result = manager.run(ghz_ladder(4), ghz_with_bug(4))
    print("GHZ vs buggy GHZ:            ", describe(result))

    # ------------------------------------------------------------------
    # 2. Time budgets: bound each checker and the whole portfolio run.
    # ------------------------------------------------------------------
    bounded = EquivalenceCheckingManager(seed=42, checker_timeout=5.0, timeout=10.0)
    result = bounded.run(
        bernstein_vazirani_static("1101"), bernstein_vazirani_dynamic("1101")
    )
    print("BV static vs dynamic:        ", describe(result))

    # ------------------------------------------------------------------
    # 3. Batch verification: many pairs, one call, concurrent workers.
    # ------------------------------------------------------------------
    pairs = [(teleportation_static(t), teleportation_dynamic(t)) for t in (0.3, 0.7)]
    pairs += [
        (bernstein_vazirani_static(bits), bernstein_vazirani_dynamic(bits))
        for bits in ("101", "1101")
    ]
    pairs.append((ghz_ladder(3), ghz_with_bug(3)))  # the bad apple

    batch = EquivalenceCheckingManager(seed=42, max_workers=4).verify_batch(pairs)
    for entry in batch.entries:
        verdict = entry.result.criterion.value if entry.result else f"failed: {entry.error}"
        print(f"  [{entry.index}] {entry.name_first} vs {entry.name_second}: "
              f"{verdict} ({entry.time_taken:.3f}s)")
    summary = batch.summary()
    print(
        f"batch: {summary['num_equivalent']}/{summary['num_pairs']} equivalent, "
        f"{summary['num_failed']} failed, wall-clock {summary['total_time']:.3f}s "
        f"on {summary['max_workers']} {summary['executor']} workers"
    )

    # ------------------------------------------------------------------
    # 4. Process-parallel batches: the same call, CPU-bound scaling.
    #    Circuits and the configuration are pickled into worker processes
    #    (batch_chunk_size pairs per work unit); every worker rebuilds its
    #    own manager, and DD packages never cross process boundaries.
    #    gate_cache_size bounds each package's gate-DD cache (LRU eviction)
    #    so long-lived workers stay memory-bounded.
    # ------------------------------------------------------------------
    process_manager = EquivalenceCheckingManager(
        seed=42,
        executor="process",
        max_workers=4,
        batch_chunk_size=2,
        gate_cache_size=256,
    )
    batch = process_manager.verify_batch(pairs)
    summary = batch.summary()
    print(
        f"process batch: {summary['num_equivalent']}/{summary['num_pairs']} equivalent, "
        f"{summary['num_failed']} failed, wall-clock {summary['total_time']:.3f}s "
        f"on {summary['max_workers']} {summary['executor']} workers"
    )
    # Entry-for-entry, the verdicts are identical to the thread executor's;
    # on a multi-core host the wall-clock now scales with cores instead of
    # being GIL-bound.


if __name__ == "__main__":
    main()
