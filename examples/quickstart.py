"""Quickstart: build circuits, check equivalence, handle dynamic circuits.

Run with ``python examples/quickstart.py``.
"""

from repro import QuantumCircuit, check_behavioural_equivalence, check_equivalence


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Two static realizations of the same functionality.
    # ------------------------------------------------------------------
    direct = QuantumCircuit(2, name="swap_gate")
    direct.swap(0, 1)

    decomposed = QuantumCircuit(2, name="swap_from_cnots")
    decomposed.cx(0, 1)
    decomposed.cx(1, 0)
    decomposed.cx(0, 1)

    result = check_equivalence(direct, decomposed)
    print("SWAP vs. 3 CNOTs:", result.criterion.value)

    # ------------------------------------------------------------------
    # 2. A dynamic circuit: mid-circuit measurement, reset, classical control.
    # ------------------------------------------------------------------
    dynamic = QuantumCircuit(1, 2, name="dynamic")
    dynamic.h(0)
    dynamic.measure(0, 0)          # mid-circuit measurement
    dynamic.reset(0)               # reset, so the qubit can be re-used
    dynamic.x(0, condition=(0, 1))  # classically-controlled operation
    dynamic.measure(0, 1)

    static = QuantumCircuit(2, 2, name="static_counterpart")
    static.h(0)
    static.cx(0, 1)
    static.measure(0, 0)
    static.measure(1, 1)

    # Scheme 1: transform the dynamic circuit to a unitary one and compare.
    functional = check_equivalence(static, dynamic)
    print("dynamic vs. static (full functional verification):", functional.criterion.value)
    print(f"  t_trans = {functional.time_transformation:.6f}s, t_ver = {functional.time_check:.6f}s")

    # Scheme 2: compare the measurement-outcome distributions for input |0...0>.
    behavioural = check_behavioural_equivalence(static, dynamic)
    print("dynamic vs. static (fixed-input behaviour):", behavioural.criterion.value)
    print("  distribution:", behavioural.details["distribution_second"])

    # ------------------------------------------------------------------
    # 3. A negative example: a broken "optimization" is detected.
    # ------------------------------------------------------------------
    broken = decomposed.copy(name="broken")
    broken.z(0)
    print("broken circuit:", check_equivalence(direct, broken).criterion.value)


if __name__ == "__main__":
    main()
