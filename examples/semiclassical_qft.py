"""Semiclassical QFT: when Scheme 1 beats Scheme 2.

The dynamic single-qubit QFT produces a *dense* outcome distribution (every
bitstring has probability 1/2^n), so the extraction scheme must follow all
2^n simulation paths — its runtime roughly doubles with every added qubit,
exactly as reported in Table 1 of the paper.  The full functional verification
(Scheme 1), in contrast, stays cheap.  This example measures both.

Run with ``python examples/semiclassical_qft.py``.
"""

import time

from repro.algorithms import qft_dynamic, qft_static_benchmark
from repro.core import check_equivalence, extract_distribution


def main() -> None:
    print(f"{'n':>3} {'t_ver[s]':>10} {'t_extract[s]':>13} {'paths':>7}")
    for num_qubits in (3, 4, 5, 6, 7, 8):
        static = qft_static_benchmark(num_qubits)
        dynamic = qft_dynamic(num_qubits)

        start = time.perf_counter()
        result = check_equivalence(static, dynamic)
        t_ver = time.perf_counter() - start
        assert result.equivalent

        extraction = extract_distribution(dynamic)
        print(
            f"{num_qubits:>3} {t_ver:>10.4f} {extraction.time_taken:>13.4f} "
            f"{extraction.num_paths:>7}"
        )

    print()
    print(
        "The extraction time roughly doubles per qubit (dense distribution), while\n"
        "the functional verification grows much more slowly — for the QFT the\n"
        "transformation scheme of Section 4 is the right choice."
    )


if __name__ == "__main__":
    main()
