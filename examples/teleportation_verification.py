"""Verifying quantum teleportation: classical control as a first-class citizen.

Teleportation needs classically-controlled Pauli corrections.  This example
verifies that the dynamic protocol is equivalent to its deferred-measurement
(static) counterpart with both schemes, and shows what happens when one of the
corrections is forgotten.

Run with ``python examples/teleportation_verification.py``.
"""

from repro.algorithms import teleportation_dynamic, teleportation_static
from repro.core import check_behavioural_equivalence, check_equivalence


def main() -> None:
    dynamic = teleportation_dynamic(theta=1.1, phi=0.4)
    static = teleportation_static(theta=1.1, phi=0.4)
    print("dynamic protocol:", dynamic.summary())
    print(dynamic.draw())
    print()

    functional = check_equivalence(static, dynamic)
    print("Scheme 1 (unitary reconstruction):", functional.criterion.value)

    behavioural = check_behavioural_equivalence(static, dynamic)
    print("Scheme 2 (outcome distributions): ", behavioural.criterion.value)
    print("  Bell-measurement outcomes:", behavioural.details["distribution_second"])
    print()

    # Forget the classically-controlled X correction.
    broken = dynamic.copy_empty(name="teleport_missing_correction")
    for instruction in dynamic:
        if instruction.is_classically_controlled and instruction.operation.name == "x":
            continue
        broken.append_instruction(instruction)
    result = check_equivalence(static, broken)
    print("After dropping the classically-controlled X:", result.criterion.value)


if __name__ == "__main__":
    main()
