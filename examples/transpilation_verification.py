"""Transpilation-aware equivalence: one verdict serves every translation level.

Real compilation-flow traffic is "same circuit, other gate set": a toolchain
verifies a circuit, lowers it to CX + single-qubit gates, re-verifies, rewrites
the single-qubit layer into ``U`` gates, re-verifies again.  PR 7 makes that
traffic nearly free three ways, all driven by one ``EquivalenceLibrary`` of
gate rewrite rules:

1. **Canonical fingerprints** — circuits are canonicalized (library-driven
   basis translation + single-qubit merging) before hashing, so the verdict
   cache hits across translation levels even though the raw fingerprints
   differ;
2. **The rewrite checker** — a library-driven peephole *prover* that decides
   translated pairs by reducing G . G'^-1 toward the identity with 2x2
   arithmetic, before any decision diagram is built; the adaptive scheduler
   front-loads it whenever the pair's gate sets differ;
3. **Symbolic parameters** — a parameterized template circuit built once,
   with every numeric binding produced by substitution.

Run with ``python examples/transpilation_verification.py``.
"""

import time

from repro import EquivalenceCheckingManager
from repro.algorithms import qft_static_benchmark
from repro.circuit import QuantumCircuit
from repro.circuit.gates import RZGate, UGate
from repro.circuit.parameter import Parameter
from repro.compilation import (
    decompose_to_cx_and_single_qubit,
    rewrite_single_qubit_to_u,
)
from repro.core import Configuration
from repro.service.fingerprint import canonical_pair_fingerprint, pair_fingerprint


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Three translation levels of the same circuit: raw fingerprints
    #    all differ, the canonical fingerprint is one and the same.
    # ------------------------------------------------------------------
    original = qft_static_benchmark(5)
    level_one = decompose_to_cx_and_single_qubit(original)  # CX + 1q basis
    level_two = rewrite_single_qubit_to_u(level_one)        # 1q layer as U gates
    config = Configuration(seed=42)

    raw = [pair_fingerprint(original, c, config) for c in (original, level_one, level_two)]
    canonical = [
        canonical_pair_fingerprint(original, c, config)
        for c in (original, level_one, level_two)
    ]
    print("raw fingerprints distinct:   ", len(set(raw)) == 3)
    print("canonical fingerprints equal:", len(set(canonical)) == 1)

    # ------------------------------------------------------------------
    # 2. Verify at one translation level, hit the cache at every other.
    # ------------------------------------------------------------------
    manager = EquivalenceCheckingManager(seed=42, verdict_cache=True)
    started = time.perf_counter()
    cold = manager.run(original, level_one)
    cold_ms = (time.perf_counter() - started) * 1000
    print(f"level 1: {cold.criterion.value} in {cold_ms:.1f}ms (cached={cold.cached})")

    started = time.perf_counter()
    warm = manager.run(original, level_two)  # other gate set, other raw key
    warm_ms = (time.perf_counter() - started) * 1000
    print(
        f"level 2: {warm.criterion.value} in {warm_ms:.2f}ms "
        f"(cached={warm.cached}, via={warm.cached_via}, "
        f"{cold_ms / warm_ms:.0f}x faster)"
    )

    # ------------------------------------------------------------------
    # 3. The rewrite checker proves translated pairs without any DD; the
    #    adaptive scheduler front-loads it when the gate sets differ.
    # ------------------------------------------------------------------
    prover = EquivalenceCheckingManager(
        portfolio=("rewrite", "alternating"), scheduler="adaptive", seed=42,
        verdict_cache=False,
    )
    result = prover.run(original, level_two)
    (attempt,) = [a for a in result.attempts if a.method == "rewrite"]
    statistics = attempt.result.details["rewrite_statistics"]
    print(
        f"rewrite prover: {result.criterion.value} decided_by={result.decided_by} "
        f"schedule={list(result.schedule)}"
    )
    print(
        f"  peephole: {statistics['input_gates']} gates -> "
        f"{statistics['remaining']} remaining "
        f"(merged {statistics['merged_single_qubit']} single-qubit runs, "
        f"cancelled {statistics['cancelled_cx']} CX pairs)"
    )

    # ------------------------------------------------------------------
    # 4. Symbolic parameters: build a template once, bind many times.
    # ------------------------------------------------------------------
    theta, phi = Parameter("theta"), Parameter("phi")
    template = QuantumCircuit(2, name="ansatz")
    template.append(UGate(theta, phi, -phi), [0])
    template.cx(0, 1)
    template.append(RZGate(theta / 2), [1])
    print("template free parameters:", sorted(p.name for p in template.free_parameters))

    checker = EquivalenceCheckingManager(seed=42)
    for value in (0.25, 1.5):
        bound = template.bind_parameters({"theta": value, "phi": value / 3})
        verdict = checker.run(bound, decompose_to_cx_and_single_qubit(bound))
        print(f"  theta={value}: {verdict.criterion.value}")


if __name__ == "__main__":
    main()
