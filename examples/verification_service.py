"""The verification service layer: fingerprints, verdict cache, job server.

In real compilation flows the same circuit pairs are re-verified over and
over as toolchains iterate.  The service layer (:mod:`repro.service`) makes
repeat traffic nearly free:

1. **Fingerprints** — a canonical structural hash for circuits and pairs,
   stable across register names, pickling and QASM round-trips;
2. **Verdict cache** — content-addressed storage of portfolio verdicts with
   an in-memory LRU tier and a persistent JSON-lines tier, consulted by the
   manager before any checker runs (and used to dedupe identical pairs
   *within* a batch);
3. **Job-queue server** — ``repro-qcec serve`` exposes the whole stack over
   HTTP, with identical in-flight submissions coalescing onto one job;
4. **Async front end** — ``repro-qcec serve --backend async`` runs the same
   service behind an asyncio server with long-poll result collection,
   bounded-queue backpressure (429 + ``Retry-After``) and per-client rate
   limiting.  Both backends export Prometheus text at ``GET /metrics``.

Run with ``python examples/verification_service.py``.
"""

import tempfile
import time
from pathlib import Path

from repro import (
    EquivalenceCheckingManager,
    QuantumCircuit,
    VerificationClient,
    VerificationServer,
    pair_fingerprint,
)
from repro.algorithms import ghz_ladder, ghz_with_bug, qft_dynamic, qft_static_benchmark
from repro.core import Configuration
from repro.service import AsyncVerificationServer


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Fingerprints: same structure => same key, however it was built.
    # ------------------------------------------------------------------
    direct = ghz_ladder(4)
    rebuilt = QuantumCircuit.from_qasm(direct.to_qasm())  # new registers, new objects
    print("fingerprint(direct)  ==", pair_fingerprint(direct, direct)[:16], "...")
    print("fingerprint(rebuilt) ==", pair_fingerprint(rebuilt, rebuilt)[:16], "...")
    assert pair_fingerprint(direct, direct) == pair_fingerprint(rebuilt, rebuilt)

    # ------------------------------------------------------------------
    # 2. The verdict cache: the second run never touches a checker.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "verdicts.jsonl"
        manager = EquivalenceCheckingManager(seed=42, cache_path=str(cache_path))

        started = time.perf_counter()
        cold = manager.run(qft_static_benchmark(6), qft_dynamic(6))
        cold_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        warm = manager.run(qft_static_benchmark(6), qft_dynamic(6))
        warm_ms = (time.perf_counter() - started) * 1000
        # A cached result reports the checkers' *original* total_time; the
        # wall clock shows what the lookup actually cost.
        print(f"cold run: {cold.criterion.value} in {cold_ms:.1f}ms (cached={cold.cached})")
        print(
            f"warm run: {warm.criterion.value} in {warm_ms:.3f}ms "
            f"(cached={warm.cached}, {cold_ms / warm_ms:.0f}x faster)"
        )

        # A *fresh* manager on the same journal: verdicts survive restarts.
        reborn = EquivalenceCheckingManager(seed=42, cache_path=str(cache_path))
        replay = reborn.run(qft_static_benchmark(6), qft_dynamic(6))
        print(f"after restart: cached={replay.cached}")

        # ------------------------------------------------------------------
        # 3. In-batch dedup: 12 pairs, 3 distinct — each runs exactly once.
        # ------------------------------------------------------------------
        distinct = [
            (ghz_ladder(4), ghz_ladder(4)),
            (ghz_ladder(4), ghz_with_bug(4)),
            (qft_static_benchmark(5), qft_dynamic(5)),
        ]
        batch = EquivalenceCheckingManager(seed=42, verdict_cache=True).verify_batch(
            [distinct[i % 3] for i in range(12)]
        )
        verdicts = [entry.result.criterion.value for entry in batch.entries]
        print("batch verdicts:", verdicts[:3], "... (12 entries, 3 distinct)")
        print(
            "cached entries:",
            sum(1 for entry in batch.entries if entry.result.cached),
            "of",
            batch.num_pairs,
        )

    # ------------------------------------------------------------------
    # 4. The job-queue server over real HTTP (ephemeral port).
    #    From a shell this is `repro-qcec serve --port 8111`; the client
    #    side is VerificationClient (or plain curl).
    # ------------------------------------------------------------------
    server = VerificationServer(port=0, configuration=Configuration(seed=42))
    server.start_background()
    try:
        client = VerificationClient(server.url)
        print("server health:", client.health())

        payload = client.verify(ghz_ladder(4), ghz_ladder(4))
        print(f"server verdict: {payload['criterion']} (cached={payload['cached']})")

        # Identical submissions coalesce while in flight, and completed
        # verdicts are served straight from the cache afterwards.
        repeat = client.verify(ghz_ladder(4), ghz_ladder(4))
        print(f"repeat verdict: {repeat['criterion']} (cached={repeat['cached']})")

        stats = client.stats()
        print(
            f"server stats: submitted={stats['submitted']} "
            f"executed={stats['executed']} coalesced={stats['coalesced']} "
            f"cache_hits={stats['cache']['hits']}"
        )
    finally:
        server.close()

    # ------------------------------------------------------------------
    # 5. The asyncio front end: same service, long-poll collection,
    #    backpressure and rate limiting knobs, Prometheus /metrics.
    #    From a shell: `repro-qcec serve --backend async --queue-limit 64
    #    --rate-limit 50`.
    # ------------------------------------------------------------------
    aserver = AsyncVerificationServer(
        port=0, configuration=Configuration(seed=42), rate_limit=100.0
    )
    aserver.start_background()
    try:
        client = VerificationClient(aserver.url)
        # `wait` long-polls GET /jobs/<id>/result?wait=N — the whole warm
        # verification takes two HTTP requests instead of a polling loop.
        payload = client.verify(qft_static_benchmark(6), qft_dynamic(6))
        print(f"async verdict: {payload['criterion']} (cached={payload['cached']})")
        scrape = client.metrics()
        interesting = [
            line
            for line in scrape.splitlines()
            if line.startswith(("repro_service_queue_depth", "repro_verdict_cache_hit_ratio"))
        ]
        print("metrics sample:", *interesting, sep="\n  ")
    finally:
        aserver.close()


if __name__ == "__main__":
    main()
