"""Verification of compilation results (the Fig. 1 use case).

Compiles the 3-bit QPE circuit to the T-shaped five-qubit IBMQ-London device
(basis-gate decomposition, SWAP routing, peephole optimization) and uses the
equivalence checker to confirm that the compiled circuit still realizes the
original functionality.  A deliberately injected compilation bug is then shown
to be detected.

Run with ``python examples/verify_compilation.py``.
"""

from repro.algorithms import qpe_static, running_example_lambda
from repro.compilation import compile_circuit, ibmq_london
from repro.core import check_equivalence


def main() -> None:
    original = qpe_static(3, running_example_lambda)
    device = ibmq_london()
    print("Original circuit:", original.summary())
    print("Target device: IBMQ London,", device.edges)

    compiled = compile_circuit(original, device)
    print("Compiled circuit:", compiled.circuit.summary())
    print("  compilation stats:", compiled.stats)
    print()

    result = check_equivalence(compiled.padded_original, compiled.circuit)
    print("Verification of the compilation result:", result.criterion.value)
    print(f"  strategy = {result.strategy}, t_ver = {result.time_check:.4f}s")
    print(f"  peak decision-diagram size: {result.details['max_nodes']} nodes")
    print()

    # Inject a bug: drop one CNOT from the compiled circuit.
    broken = compiled.circuit.copy_empty(name="broken_compilation")
    dropped = False
    for instruction in compiled.circuit:
        if not dropped and instruction.operation.name == "cx":
            dropped = True
            continue
        broken.append_instruction(instruction)
    result = check_equivalence(compiled.padded_original, broken)
    print("Verification after dropping one CNOT:", result.criterion.value)


if __name__ == "__main__":
    main()
