"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works on
offline machines whose setuptools/wheel combination cannot build PEP 660
editable wheels (it falls back to the legacy ``setup.py develop`` path).  The
console-script entry point is repeated here because the legacy path does not
read ``[project.scripts]`` from ``pyproject.toml``.
"""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro-qcec = repro.cli:main"]},
)
