"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works on
offline machines whose setuptools/wheel combination cannot build PEP 660
editable wheels (it falls back to the legacy ``setup.py develop`` path).  The
console-script entry point is repeated here because the legacy path does not
read ``[project.scripts]`` from ``pyproject.toml``.
"""

import re
from pathlib import Path

from setuptools import setup


def _version() -> str:
    """Single-source the version from ``repro.__version__``.

    Parsed textually (not imported) so that building a wheel does not require
    the package's runtime dependencies; ``repro-qcec --version`` reports the
    same string.
    """
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(
        encoding="utf-8"
    )
    return re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE).group(1)


setup(
    version=_version(),
    entry_points={"console_scripts": ["repro-qcec = repro.cli:main"]},
)
