"""repro — Handling Non-Unitaries in Quantum Circuit Equivalence Checking.

A from-scratch Python reproduction of Burgholzer & Wille, DAC 2022
(arXiv:2106.01099).  The package contains:

* :mod:`repro.circuit` — a quantum circuit IR with dynamic-circuit primitives
  (mid-circuit measurement, reset, classically-controlled operations),
* :mod:`repro.dd` — a decision-diagram (QMDD) engine,
* :mod:`repro.simulators` — statevector, decision-diagram, density-matrix and
  stochastic simulation backends,
* :mod:`repro.core` — the equivalence-checking engine plus the paper's two
  schemes (unitary reconstruction and distribution extraction),
* :mod:`repro.algorithms` — the benchmark algorithms (Bernstein-Vazirani, QFT,
  QPE) in static and dynamic form,
* :mod:`repro.compilation` — a small compilation stack used for the
  "verification of compilation results" use case,
* :mod:`repro.service` — the verification service layer: canonical circuit
  fingerprints, a persistent verdict cache, and an HTTP job-queue server
  (``repro-qcec serve``) with the matching client.

Quickstart
----------
>>> from repro import QuantumCircuit, check_equivalence
>>> a = QuantumCircuit(2); _ = a.h(0); _ = a.cx(0, 1)
>>> b = QuantumCircuit(2); _ = b.h(0); _ = b.cx(0, 1)
>>> check_equivalence(a, b).equivalent
True
"""

from repro.circuit import (
    ClassicalRegister,
    QuantumCircuit,
    QuantumRegister,
    circuit_from_qasm,
    circuit_to_qasm,
)
from repro.core import (
    BatchResult,
    Checker,
    CheckerOutcome,
    Configuration,
    EquivalenceCheckResult,
    EquivalenceChecker,
    EquivalenceCheckingManager,
    EquivalenceCriterion,
    PortfolioResult,
    PortfolioScheduler,
    Schedule,
    check_behavioural_equivalence,
    check_equivalence,
    extract_distribution,
    extract_pair_features,
    register_checker,
    register_scheduler,
    to_unitary_circuit,
    verify,
    verify_batch,
    verify_portfolio,
)
from repro.simulators import DDSimulator, Statevector, StatevectorSimulator

__version__ = "1.1.0"

#: Service-layer names re-exported lazily (PEP 562): ``import repro`` — and
#: hence every plain CLI invocation — must not pay for ``http.server`` /
#: ``urllib`` until the service layer is actually touched.
_SERVICE_EXPORTS = (
    "VerdictCache",
    "VerificationClient",
    "VerificationServer",
    "VerificationService",
    "circuit_fingerprint",
    "pair_fingerprint",
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchResult",
    "Checker",
    "CheckerOutcome",
    "ClassicalRegister",
    "Configuration",
    "DDSimulator",
    "EquivalenceCheckResult",
    "EquivalenceChecker",
    "EquivalenceCheckingManager",
    "EquivalenceCriterion",
    "PortfolioResult",
    "PortfolioScheduler",
    "QuantumCircuit",
    "QuantumRegister",
    "Schedule",
    "Statevector",
    "StatevectorSimulator",
    "VerdictCache",
    "VerificationClient",
    "VerificationServer",
    "VerificationService",
    "__version__",
    "check_behavioural_equivalence",
    "check_equivalence",
    "circuit_fingerprint",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "pair_fingerprint",
    "extract_distribution",
    "extract_pair_features",
    "register_checker",
    "register_scheduler",
    "to_unitary_circuit",
    "verify",
    "verify_batch",
    "verify_portfolio",
]
