"""Benchmark algorithms of the paper's evaluation, plus a few extras.

Each of the paper's benchmarks — Bernstein-Vazirani, the quantum Fourier
transform and quantum phase estimation — is provided as a *static* circuit and
as a *dynamic* realization using mid-circuit measurements, resets and
classically-controlled operations.  Teleportation and GHZ circuits round out
the set for the examples and tests.
"""

from repro.algorithms.bernstein_vazirani import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    hidden_string_bits,
)
from repro.algorithms.ghz import ghz_fanout, ghz_ladder, ghz_with_bug
from repro.algorithms.qft import qft_circuit, qft_dynamic, qft_static_benchmark
from repro.algorithms.qpe import (
    iterative_qpe,
    phase_estimate_from_bitstring,
    qpe_static,
    running_example_lambda,
)
from repro.algorithms.teleportation import teleportation_dynamic, teleportation_static

__all__ = [
    "bernstein_vazirani_dynamic",
    "bernstein_vazirani_static",
    "ghz_fanout",
    "ghz_ladder",
    "ghz_with_bug",
    "hidden_string_bits",
    "iterative_qpe",
    "phase_estimate_from_bitstring",
    "qft_circuit",
    "qft_dynamic",
    "qft_static_benchmark",
    "qpe_static",
    "running_example_lambda",
    "teleportation_dynamic",
    "teleportation_static",
]
