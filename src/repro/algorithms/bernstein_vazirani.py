"""Bernstein-Vazirani circuits, static and dynamic.

The Bernstein-Vazirani algorithm [42] recovers a hidden bitstring ``s`` with a
single oracle query.  The *static* realization uses one data qubit per bit of
``s`` plus a phase-kickback ancilla.  The *dynamic* realization (cf. the IBM
mid-circuit measurement demonstration [43] referenced by the paper) re-uses a
single work qubit: each bit of ``s`` is obtained from one
Hadamard-oracle-Hadamard-measure round followed by a reset of the work qubit,
so only two qubits are needed regardless of the length of ``s``.

Qubit layout
------------
Both realizations place the phase-kickback ancilla on qubit 0.  The static
circuit puts the data qubit for bit ``i`` on qubit ``i + 1`` — exactly the
position the unitary reconstruction (Scheme 1) assigns to the ``i``-th round
of the dynamic circuit, so that ``U =? U'`` can be checked without any qubit
relabelling.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import CircuitError

__all__ = ["bernstein_vazirani_dynamic", "bernstein_vazirani_static", "hidden_string_bits"]


def hidden_string_bits(hidden_string: str) -> list[int]:
    """Parse a most-significant-first hidden bitstring into per-bit values.

    The returned list is indexed by classical bit, i.e. ``bits[i]`` is the bit
    measured into classical bit ``i`` (the rightmost character of the string).
    """
    if not hidden_string or any(ch not in "01" for ch in hidden_string):
        raise CircuitError(f"hidden string must be a non-empty bitstring, got {hidden_string!r}")
    return [int(ch) for ch in reversed(hidden_string)]


def bernstein_vazirani_static(hidden_string: str) -> QuantumCircuit:
    """Static Bernstein-Vazirani circuit for ``hidden_string``.

    Uses ``len(hidden_string) + 1`` qubits.  Measuring the data register
    returns the hidden string with certainty.
    """
    bits = hidden_string_bits(hidden_string)
    num_bits = len(bits)
    circuit = QuantumCircuit(
        QuantumRegister(num_bits + 1, "q"),
        ClassicalRegister(num_bits, "c"),
        name=f"bv_static_{hidden_string}",
    )
    ancilla = 0
    circuit.x(ancilla)
    circuit.h(ancilla)
    for i, bit in enumerate(bits):
        data = i + 1
        circuit.h(data)
        if bit:
            circuit.cx(data, ancilla)
        circuit.h(data)
        circuit.measure(data, i)
    return circuit


def bernstein_vazirani_dynamic(hidden_string: str) -> QuantumCircuit:
    """Dynamic Bernstein-Vazirani circuit using two qubits.

    Qubit 0 is the phase-kickback ancilla, qubit 1 the re-used work qubit.
    Each round measures one bit of the hidden string into its own single-bit
    classical register (``c0``, ``c1``, ...) and resets the work qubit.
    """
    bits = hidden_string_bits(hidden_string)
    num_bits = len(bits)
    registers: list = [QuantumRegister(2, "q")]
    registers.extend(ClassicalRegister(1, f"c{i}") for i in range(num_bits))
    circuit = QuantumCircuit(*registers, name=f"bv_dynamic_{hidden_string}")
    ancilla, work = 0, 1
    circuit.x(ancilla)
    circuit.h(ancilla)
    for i, bit in enumerate(bits):
        circuit.h(work)
        if bit:
            circuit.cx(work, ancilla)
        circuit.h(work)
        circuit.measure(work, i)
        if i < num_bits - 1:
            circuit.reset(work)
    return circuit
