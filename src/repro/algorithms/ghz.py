"""GHZ state preparation circuits.

Used by the examples and the test suite as a simple entangled workload.  The
ladder and fan-out preparations produce the *same state* from |0...0> but are
*not* functionally equivalent as unitaries (they differ on other inputs) —
a compact illustration of the difference between full functional equivalence
(Scheme 1 territory) and behavioural equivalence for a fixed input
(Scheme 2).  The deliberately broken variant serves as a negative test case.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import CircuitError

__all__ = ["ghz_fanout", "ghz_ladder", "ghz_with_bug"]


def _circuit(num_qubits: int, name: str, measure: bool) -> QuantumCircuit:
    if num_qubits < 2:
        raise CircuitError("a GHZ state needs at least two qubits")
    registers: list = [QuantumRegister(num_qubits, "q")]
    if measure:
        registers.append(ClassicalRegister(num_qubits, "c"))
    return QuantumCircuit(*registers, name=name)


def ghz_ladder(num_qubits: int, *, measure: bool = False) -> QuantumCircuit:
    """GHZ preparation with a ladder of CNOTs (0->1->2->...)."""
    circuit = _circuit(num_qubits, f"ghz_ladder_{num_qubits}", measure)
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    if measure:
        circuit.measure_all()
    return circuit


def ghz_fanout(num_qubits: int, *, measure: bool = False) -> QuantumCircuit:
    """GHZ preparation with all CNOTs fanned out from qubit 0."""
    circuit = _circuit(num_qubits, f"ghz_fanout_{num_qubits}", measure)
    circuit.h(0)
    for qubit in range(1, num_qubits):
        circuit.cx(0, qubit)
    if measure:
        circuit.measure_all()
    return circuit


def ghz_with_bug(num_qubits: int, *, measure: bool = False) -> QuantumCircuit:
    """A GHZ-like circuit with one wrong gate (negative test case)."""
    circuit = _circuit(num_qubits, f"ghz_bug_{num_qubits}", measure)
    circuit.h(0)
    for qubit in range(1, num_qubits):
        circuit.cx(0, qubit)
    # An extra Z on the last qubit flips the relative phase of |1...1>.
    circuit.z(num_qubits - 1)
    if measure:
        circuit.measure_all()
    return circuit
