"""Quantum Fourier transform circuits, static and dynamic.

Two flavours are provided:

* :func:`qft_circuit` — the textbook QFT (optionally inverse, optionally with
  the final SWAP layer) as a reusable unitary building block.
* :func:`qft_static_benchmark` / :func:`qft_dynamic` — the benchmark pair used
  in Table 1 of the paper: an ``n``-qubit QFT applied to |0...0> followed by a
  full measurement, and its dynamic single-qubit realization following the
  semiclassical QFT of Griffiths and Niu [44] (measure one qubit at a time and
  replace quantum controls on yet-to-be-measured qubits by classical controls
  on already-measured bits, re-using a single work qubit via resets).

The static benchmark circuit is written in "semiclassical order" (per qubit:
phase corrections controlled by previously processed qubits, then a Hadamard)
so that the unitary reconstruction of the dynamic circuit matches it without
any qubit relabelling.  Up to qubit ordering this is the standard QFT; the
test suite checks it against the DFT matrix explicitly.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import CircuitError

__all__ = ["qft_circuit", "qft_dynamic", "qft_static_benchmark"]


def _validate(num_qubits: int) -> None:
    if num_qubits < 1:
        raise CircuitError("the QFT needs at least one qubit")


def qft_circuit(
    num_qubits: int,
    *,
    inverse: bool = False,
    include_swaps: bool = True,
    name: str | None = None,
) -> QuantumCircuit:
    """Textbook quantum Fourier transform on ``num_qubits`` qubits.

    With ``include_swaps`` the circuit maps the computational basis state
    |x> (little-endian integer ``x``) to ``(1/sqrt(N)) * sum_y exp(2*pi*i*x*y/N) |y>``;
    without the SWAP layer the output bits appear in reversed order.  With
    ``inverse`` the adjoint transform is returned.
    """
    _validate(num_qubits)
    circuit = QuantumCircuit(
        QuantumRegister(num_qubits, "q"),
        name=name or ("iqft" if inverse else "qft"),
    )
    for k in reversed(range(num_qubits)):
        circuit.h(k)
        for j in reversed(range(k)):
            circuit.cp(math.pi / (1 << (k - j)), j, k)
    if include_swaps:
        for k in range(num_qubits // 2):
            circuit.swap(k, num_qubits - 1 - k)
    if inverse:
        return circuit.inverse(name=name or "iqft")
    return circuit


def qft_static_benchmark(num_qubits: int) -> QuantumCircuit:
    """Static QFT benchmark: QFT applied to |0...0>, then a full measurement.

    Qubit ``k`` is measured into classical bit ``k``.  The gate order matches
    the unitary reconstruction of :func:`qft_dynamic` (semiclassical order);
    functionally the circuit is the standard QFT up to qubit ordering.
    """
    _validate(num_qubits)
    circuit = QuantumCircuit(
        QuantumRegister(num_qubits, "q"),
        ClassicalRegister(num_qubits, "c"),
        name=f"qft_static_{num_qubits}",
    )
    for k in range(num_qubits):
        for j in range(k):
            circuit.cp(math.pi / (1 << (k - j)), j, k)
        circuit.h(k)
    for k in range(num_qubits):
        circuit.measure(k, k)
    return circuit


def qft_dynamic(num_qubits: int) -> QuantumCircuit:
    """Dynamic (single-qubit) QFT benchmark circuit.

    One work qubit is measured and reset ``num_qubits`` times; the phase
    rotations that the static QFT controls on other qubits are applied
    classically controlled on the already-measured bits, following the
    semiclassical QFT [44] / the IBM mid-circuit measurement demonstration
    [43].  Classical bit ``k`` is produced by round ``k``.
    """
    _validate(num_qubits)
    registers: list = [QuantumRegister(1, "q")]
    registers.extend(ClassicalRegister(1, f"c{k}") for k in range(num_qubits))
    circuit = QuantumCircuit(*registers, name=f"qft_dynamic_{num_qubits}")
    work = 0
    for k in range(num_qubits):
        for j in range(k):
            circuit.p(math.pi / (1 << (k - j)), work, condition=(j, 1))
        circuit.h(work)
        circuit.measure(work, k)
        if k < num_qubits - 1:
            circuit.reset(work)
    return circuit
