"""Quantum phase estimation — the paper's running example.

``U = p(lambda)`` is a single-qubit phase gate with eigenvalue
``exp(i*lambda)`` on the eigenstate |1>, i.e. the phase to estimate is
``theta = lambda / (2*pi)``.  The *static* QPE circuit uses ``m`` counting
qubits and the inverse quantum Fourier transform; the *dynamic* (iterative)
QPE circuit [29] uses a single work qubit that is measured and reset ``m``
times, with classically-controlled correction rotations — exactly the circuit
of Fig. 2 of the paper.

Qubit layout
------------
The eigenstate qubit is qubit 0 in both realizations.  In the static circuit
the counting qubit that produces classical bit ``k`` (weight ``2**(k-m)`` of
the phase estimate ``0.c_{m-1}...c_0``) sits on qubit ``k + 1`` — the position
the unitary reconstruction assigns to round ``k`` of the iterative circuit, so
the two can be compared directly (Fig. 1a vs. Fig. 3b in the paper).
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import CircuitError

__all__ = ["iterative_qpe", "qpe_static", "running_example_lambda"]

#: Phase-gate angle of the paper's running example: ``U = p(3*pi/8)``.
running_example_lambda = 3.0 * math.pi / 8.0


def _controlled_power_angle(lam: float, power: int) -> float:
    """Angle of the controlled-``U**(2**power)`` rotation, reduced mod 2*pi.

    Both the static and the dynamic generator use this helper so that the two
    circuits contain *bitwise identical* rotation angles (important for exact
    functional equivalence at large ``m`` where ``2**power * lam`` would lose
    precision).
    """
    two_pi = 2.0 * math.pi
    angle = lam % two_pi
    for _ in range(power):
        angle = (2.0 * angle) % two_pi
    return angle


def _validate(num_bits: int) -> None:
    if num_bits < 1:
        raise CircuitError("phase estimation needs at least one precision bit")


def qpe_static(num_bits: int, lam: float = running_example_lambda, *, eigenstate_one: bool = True) -> QuantumCircuit:
    """Static quantum phase estimation with ``num_bits`` bits of precision.

    The circuit uses ``num_bits + 1`` qubits (eigenstate qubit 0 plus one
    counting qubit per bit) and measures classical bit ``k`` from counting
    qubit ``k + 1``.  With ``eigenstate_one`` the eigenstate |1> of ``p(lam)``
    is prepared; otherwise the (trivial) eigenstate |0> is used.
    """
    _validate(num_bits)
    circuit = QuantumCircuit(
        QuantumRegister(num_bits + 1, "q"),
        ClassicalRegister(num_bits, "c"),
        name=f"qpe_static_{num_bits}",
    )
    eigenstate = 0
    if eigenstate_one:
        circuit.x(eigenstate)

    for k in range(num_bits):
        circuit.h(k + 1)
    for k in range(num_bits):
        circuit.cp(_controlled_power_angle(lam, num_bits - 1 - k), k + 1, eigenstate)

    # Inverse QFT on the counting register, written in the "semiclassical"
    # order (per counting qubit: corrections controlled by already-processed
    # qubits, then a Hadamard) so that it matches the unitary reconstruction
    # of the iterative realization gate for gate.
    for k in range(num_bits):
        for j in range(k):
            circuit.cp(-math.pi / (1 << (k - j)), j + 1, k + 1)
        circuit.h(k + 1)

    for k in range(num_bits):
        circuit.measure(k + 1, k)
    return circuit


def iterative_qpe(num_bits: int, lam: float = running_example_lambda, *, eigenstate_one: bool = True) -> QuantumCircuit:
    """Iterative (dynamic) quantum phase estimation with a single work qubit.

    Qubit 0 holds the eigenstate, qubit 1 is the re-used work qubit.  Round
    ``k`` estimates classical bit ``k`` (least-significant first): Hadamard,
    controlled-``U**(2**(m-1-k))``, correction rotations conditioned on the
    previously measured bits, Hadamard, measurement, reset.  This is the
    circuit of Fig. 2 of the paper.
    """
    _validate(num_bits)
    registers: list = [QuantumRegister(2, "q")]
    registers.extend(ClassicalRegister(1, f"c{k}") for k in range(num_bits))
    circuit = QuantumCircuit(*registers, name=f"iqpe_{num_bits}")
    eigenstate, work = 0, 1
    if eigenstate_one:
        circuit.x(eigenstate)

    for k in range(num_bits):
        circuit.h(work)
        circuit.cp(_controlled_power_angle(lam, num_bits - 1 - k), work, eigenstate)
        for j in range(k):
            circuit.p(-math.pi / (1 << (k - j)), work, condition=(j, 1))
        circuit.h(work)
        circuit.measure(work, k)
        if k < num_bits - 1:
            circuit.reset(work)
    return circuit


def phase_estimate_from_bitstring(bitstring: str) -> float:
    """Convert a measured bitstring ``c_{m-1}...c_0`` into the estimate ``0.c_{m-1}...c_0``."""
    if bitstring and any(ch not in "01" for ch in bitstring):
        raise CircuitError(f"not a bitstring: {bitstring!r}")
    return int(bitstring, 2) / (1 << len(bitstring)) if bitstring else 0.0
