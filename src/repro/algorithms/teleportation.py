"""Quantum teleportation, dynamic and static.

Teleportation [28] is the textbook example of a protocol that *requires*
classically-controlled operations: Alice's Bell measurement outcomes decide
which Pauli corrections Bob applies.  The dynamic circuit therefore exercises
mid-circuit measurements and classical control; its static counterpart replaces
the corrections by quantum-controlled Paulis (the deferred-measurement form),
which is exactly what Scheme 1 reconstructs.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import ClassicalRegister, QuantumRegister

__all__ = ["teleportation_dynamic", "teleportation_static"]


def _prepare_message(circuit: QuantumCircuit, qubit: int, theta: float, phi: float) -> None:
    """Prepare the state to be teleported on ``qubit``."""
    circuit.ry(theta, qubit)
    circuit.rz(phi, qubit)


def teleportation_dynamic(theta: float = 0.7, phi: float = 0.3) -> QuantumCircuit:
    """Teleport ``ry(theta); rz(phi)|0>`` from qubit 0 to qubit 2 using
    mid-circuit measurements and classically-controlled corrections."""
    circuit = QuantumCircuit(
        QuantumRegister(3, "q"),
        ClassicalRegister(1, "c0"),
        ClassicalRegister(1, "c1"),
        name="teleport_dynamic",
    )
    message, alice, bob = 0, 1, 2
    _prepare_message(circuit, message, theta, phi)
    # Entangle Alice and Bob.
    circuit.h(alice)
    circuit.cx(alice, bob)
    # Bell measurement of the message and Alice's qubit.
    circuit.cx(message, alice)
    circuit.h(message)
    circuit.measure(message, 0)
    circuit.measure(alice, 1)
    # Bob's corrections.
    circuit.x(bob, condition=(1, 1))
    circuit.z(bob, condition=(0, 1))
    return circuit


def teleportation_static(theta: float = 0.7, phi: float = 0.3) -> QuantumCircuit:
    """Deferred-measurement (static) version of :func:`teleportation_dynamic`."""
    circuit = QuantumCircuit(
        QuantumRegister(3, "q"),
        ClassicalRegister(1, "c0"),
        ClassicalRegister(1, "c1"),
        name="teleport_static",
    )
    message, alice, bob = 0, 1, 2
    _prepare_message(circuit, message, theta, phi)
    circuit.h(alice)
    circuit.cx(alice, bob)
    circuit.cx(message, alice)
    circuit.h(message)
    circuit.cx(alice, bob)
    circuit.cz(message, bob)
    circuit.measure(message, 0)
    circuit.measure(alice, 1)
    return circuit
