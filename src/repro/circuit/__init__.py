"""Quantum circuit intermediate representation.

Public surface:

* :class:`QuantumCircuit`, :class:`QuantumRegister`, :class:`ClassicalRegister`
* the standard gate library (:mod:`repro.circuit.gates`)
* :class:`Instruction` and :class:`ClassicalCondition`
* OpenQASM 2 import/export helpers
* random circuit generators used by tests and benchmarks
"""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.equivalence_library import (
    EquivalenceLibrary,
    StandardEquivalenceLibrary,
)
from repro.circuit.gates import (
    Barrier,
    CCXGate,
    CCZGate,
    CHGate,
    ControlledGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CUGate,
    CXGate,
    CYGate,
    CZGate,
    Gate,
    GlobalPhaseGate,
    HGate,
    IGate,
    MCPhaseGate,
    MCXGate,
    Measure,
    Operation,
    PhaseGate,
    Reset,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    SwapGate,
    SXdgGate,
    SXGate,
    TdgGate,
    TGate,
    U2Gate,
    UGate,
    XGate,
    YGate,
    ZGate,
    get_gate,
    iSwapGate,
)
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.circuit.parameter import Parameter, ParameterExpression
from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm
from repro.circuit.random_circuits import random_dynamic_circuit, random_static_circuit
from repro.circuit.registers import ClassicalRegister, Clbit, QuantumRegister, Qubit

__all__ = [
    "Barrier",
    "CCXGate",
    "CCZGate",
    "CHGate",
    "ClassicalCondition",
    "ClassicalRegister",
    "Clbit",
    "ControlledGate",
    "CPhaseGate",
    "CRXGate",
    "CRYGate",
    "CRZGate",
    "CSwapGate",
    "CUGate",
    "CXGate",
    "CYGate",
    "CZGate",
    "EquivalenceLibrary",
    "Gate",
    "GlobalPhaseGate",
    "HGate",
    "IGate",
    "Instruction",
    "MCPhaseGate",
    "MCXGate",
    "Measure",
    "Operation",
    "Parameter",
    "ParameterExpression",
    "PhaseGate",
    "QuantumCircuit",
    "QuantumRegister",
    "Qubit",
    "Reset",
    "RXGate",
    "RYGate",
    "RZGate",
    "SdgGate",
    "SGate",
    "StandardEquivalenceLibrary",
    "SwapGate",
    "SXdgGate",
    "SXGate",
    "TdgGate",
    "TGate",
    "U2Gate",
    "UGate",
    "XGate",
    "YGate",
    "ZGate",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "get_gate",
    "iSwapGate",
    "random_dynamic_circuit",
    "random_static_circuit",
]
