"""The :class:`QuantumCircuit` intermediate representation.

The circuit is a flat list of :class:`~repro.circuit.operations.Instruction`
objects over integer-indexed qubits and classical bits, optionally grouped
into named registers.  It supports both *static* circuits (unitary gates plus
final measurements) and *dynamic* circuits containing the non-unitary
primitives the paper is concerned with: mid-circuit measurements, resets, and
classically-controlled operations.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.circuit.gates import (
    Barrier,
    CCXGate,
    CCZGate,
    CHGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CUGate,
    CXGate,
    CYGate,
    CZGate,
    Gate,
    GlobalPhaseGate,
    HGate,
    IGate,
    MCPhaseGate,
    MCXGate,
    Measure,
    Operation,
    PhaseGate,
    RXGate,
    RYGate,
    RZGate,
    Reset,
    SdgGate,
    SGate,
    SwapGate,
    SXdgGate,
    SXGate,
    TdgGate,
    TGate,
    U2Gate,
    UGate,
    XGate,
    YGate,
    ZGate,
    iSwapGate,
)
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.circuit.registers import ClassicalRegister, Clbit, QuantumRegister, Qubit
from repro.exceptions import CircuitError

__all__ = ["QuantumCircuit"]

QubitSpecifier = "int | Qubit"
ClbitSpecifier = "int | Clbit"


class QuantumCircuit:
    """A quantum circuit over named quantum and classical registers.

    Parameters
    ----------
    *regs:
        Any mix of :class:`QuantumRegister`, :class:`ClassicalRegister` and
        plain integers.  An integer adds an anonymous register of that size —
        the first integer a quantum register named ``"q"``, the second a
        classical register named ``"c"`` (mirroring the common two-integer
        constructor ``QuantumCircuit(n, m)``).
    name:
        Optional circuit name (used in exports and reports).

    Examples
    --------
    >>> qc = QuantumCircuit(2, 2, name="bell")
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> qc.measure(0, 0)
    >>> qc.measure(1, 1)
    >>> qc.num_qubits, qc.num_clbits, qc.size
    (2, 2, 4)
    """

    def __init__(self, *regs: QuantumRegister | ClassicalRegister | int, name: str = "circuit"):
        self.name = name
        self._qregs: list[QuantumRegister] = []
        self._cregs: list[ClassicalRegister] = []
        self._qubits: list[Qubit] = []
        self._clbits: list[Clbit] = []
        self._qubit_indices: dict[Qubit, int] = {}
        self._clbit_indices: dict[Clbit, int] = {}
        self._data: list[Instruction] = []

        int_count = 0
        for reg in regs:
            if isinstance(reg, QuantumRegister):
                self.add_register(reg)
            elif isinstance(reg, ClassicalRegister):
                self.add_register(reg)
            elif isinstance(reg, int):
                if int_count == 0:
                    self.add_register(QuantumRegister(reg, "q"))
                elif int_count == 1:
                    self.add_register(ClassicalRegister(reg, "c"))
                else:
                    raise CircuitError(
                        "at most two integer register sizes may be given "
                        "(quantum and classical)"
                    )
                int_count += 1
            else:
                raise CircuitError(f"unsupported register specifier: {reg!r}")

    # ------------------------------------------------------------------
    # registers and bits
    # ------------------------------------------------------------------

    def add_register(self, register: QuantumRegister | ClassicalRegister) -> None:
        """Add a register (its bits are appended to the flat bit lists)."""
        if isinstance(register, QuantumRegister):
            if any(r.name == register.name for r in self._qregs):
                raise CircuitError(f"duplicate quantum register name {register.name!r}")
            self._qregs.append(register)
            for qubit in register:
                self._qubit_indices[qubit] = len(self._qubits)
                self._qubits.append(qubit)
        elif isinstance(register, ClassicalRegister):
            if any(r.name == register.name for r in self._cregs):
                raise CircuitError(f"duplicate classical register name {register.name!r}")
            self._cregs.append(register)
            for clbit in register:
                self._clbit_indices[clbit] = len(self._clbits)
                self._clbits.append(clbit)
        else:
            raise CircuitError(f"unsupported register type: {register!r}")

    @property
    def qregs(self) -> list[QuantumRegister]:
        """Quantum registers, in insertion order."""
        return list(self._qregs)

    @property
    def cregs(self) -> list[ClassicalRegister]:
        """Classical registers, in insertion order."""
        return list(self._cregs)

    @property
    def qubits(self) -> list[Qubit]:
        """Flat list of qubits (index = circuit qubit index)."""
        return list(self._qubits)

    @property
    def clbits(self) -> list[Clbit]:
        """Flat list of classical bits (index = circuit clbit index)."""
        return list(self._clbits)

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return len(self._qubits)

    @property
    def num_clbits(self) -> int:
        """Number of classical bits."""
        return len(self._clbits)

    def qubit_index(self, qubit: "int | Qubit") -> int:
        """Resolve a qubit specifier (index or :class:`Qubit`) to its index."""
        if isinstance(qubit, Qubit):
            try:
                return self._qubit_indices[qubit]
            except KeyError:
                raise CircuitError(f"{qubit!r} is not part of this circuit") from None
        index = int(qubit)
        if not 0 <= index < self.num_qubits:
            raise CircuitError(
                f"qubit index {index} out of range (circuit has {self.num_qubits} qubits)"
            )
        return index

    def clbit_index(self, clbit: "int | Clbit") -> int:
        """Resolve a classical-bit specifier to its index."""
        if isinstance(clbit, Clbit):
            try:
                return self._clbit_indices[clbit]
            except KeyError:
                raise CircuitError(f"{clbit!r} is not part of this circuit") from None
        index = int(clbit)
        if not 0 <= index < self.num_clbits:
            raise CircuitError(
                f"clbit index {index} out of range (circuit has {self.num_clbits} clbits)"
            )
        return index

    def _resolve_condition(
        self, condition: "tuple | ClassicalCondition | None"
    ) -> ClassicalCondition | None:
        if condition is None or isinstance(condition, ClassicalCondition):
            return condition
        try:
            target, value = condition
        except (TypeError, ValueError):
            raise CircuitError(
                f"condition must be a (clbits, value) pair, got {condition!r}"
            ) from None
        if isinstance(target, ClassicalRegister):
            clbits = tuple(self.clbit_index(bit) for bit in target)
        elif isinstance(target, (list, tuple)):
            clbits = tuple(self.clbit_index(bit) for bit in target)
        else:
            clbits = (self.clbit_index(target),)
        return ClassicalCondition(clbits, int(value))

    # ------------------------------------------------------------------
    # instruction access
    # ------------------------------------------------------------------

    @property
    def data(self) -> list[Instruction]:
        """The instruction list (a copy; use :meth:`append` to modify)."""
        return list(self._data)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        return self._data[index]

    @property
    def size(self) -> int:
        """Total number of instructions excluding barriers (``|G|`` in the paper)."""
        return sum(1 for inst in self._data if not inst.is_barrier)

    def count_ops(self) -> Counter:
        """Histogram of operation names."""
        return Counter(inst.operation.name for inst in self._data)

    @property
    def num_measurements(self) -> int:
        """Number of measurement instructions."""
        return sum(1 for inst in self._data if inst.is_measurement)

    @property
    def num_resets(self) -> int:
        """Number of reset instructions."""
        return sum(1 for inst in self._data if inst.is_reset)

    @property
    def num_classically_controlled(self) -> int:
        """Number of classically-controlled operations."""
        return sum(1 for inst in self._data if inst.is_classically_controlled)

    @property
    def is_dynamic(self) -> bool:
        """Whether the circuit contains any dynamic (non-unitary) primitive
        other than measurements at the very end.

        Measurements are allowed at the tail of a circuit without making it
        dynamic: a trailing measurement layer is the conventional read-out of
        a static circuit.  Everything else — resets, classically-controlled
        operations, or measurements followed by further quantum operations on
        the measured qubit — makes the circuit dynamic.
        """
        measured: set[int] = set()
        for inst in self._data:
            if inst.is_barrier:
                continue
            if inst.is_reset or inst.is_classically_controlled:
                return True
            if inst.is_measurement:
                measured.add(inst.qubits[0])
                continue
            if measured.intersection(inst.qubits):
                return True
        return False

    @property
    def contains_non_unitaries(self) -> bool:
        """Whether the circuit contains any non-unitary instruction at all."""
        return any(inst.is_measurement or inst.is_reset for inst in self._data) or any(
            inst.is_classically_controlled for inst in self._data
        )

    def depth(self) -> int:
        """Circuit depth (longest path over shared qubits/clbits), ignoring barriers."""
        levels: dict[str, int] = {}
        depth = 0
        for inst in self._data:
            if inst.is_barrier:
                continue
            wires = [f"q{q}" for q in inst.qubits] + [f"c{c}" for c in inst.clbits]
            if inst.condition is not None:
                wires.extend(f"c{c}" for c in inst.condition.clbits)
            level = 1 + max((levels.get(w, 0) for w in wires), default=0)
            for w in wires:
                levels[w] = level
            depth = max(depth, level)
        return depth

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def append(
        self,
        operation: Operation,
        qubits: Sequence["int | Qubit"] = (),
        clbits: Sequence["int | Clbit"] = (),
        condition: "tuple | ClassicalCondition | None" = None,
    ) -> Instruction:
        """Append ``operation`` acting on the given qubits/clbits.

        Returns the created :class:`Instruction`.
        """
        qubit_indices = tuple(self.qubit_index(q) for q in qubits)
        clbit_indices = tuple(self.clbit_index(c) for c in clbits)
        instruction = Instruction(
            operation, qubit_indices, clbit_indices, self._resolve_condition(condition)
        )
        self._data.append(instruction)
        return instruction

    def append_instruction(self, instruction: Instruction) -> Instruction:
        """Append a pre-built instruction (indices must already be resolved)."""
        for q in instruction.qubits:
            self.qubit_index(q)
        for c in instruction.clbits:
            self.clbit_index(c)
        if instruction.condition is not None:
            for c in instruction.condition.clbits:
                self.clbit_index(c)
        self._data.append(instruction)
        return instruction

    # -- single-qubit gates -------------------------------------------------

    def i(self, qubit, condition=None) -> Instruction:
        """Apply the identity gate."""
        return self.append(IGate(), [qubit], condition=condition)

    def x(self, qubit, condition=None) -> Instruction:
        """Apply the Pauli-X gate."""
        return self.append(XGate(), [qubit], condition=condition)

    def y(self, qubit, condition=None) -> Instruction:
        """Apply the Pauli-Y gate."""
        return self.append(YGate(), [qubit], condition=condition)

    def z(self, qubit, condition=None) -> Instruction:
        """Apply the Pauli-Z gate."""
        return self.append(ZGate(), [qubit], condition=condition)

    def h(self, qubit, condition=None) -> Instruction:
        """Apply the Hadamard gate."""
        return self.append(HGate(), [qubit], condition=condition)

    def s(self, qubit, condition=None) -> Instruction:
        """Apply the S gate."""
        return self.append(SGate(), [qubit], condition=condition)

    def sdg(self, qubit, condition=None) -> Instruction:
        """Apply the S-dagger gate."""
        return self.append(SdgGate(), [qubit], condition=condition)

    def t(self, qubit, condition=None) -> Instruction:
        """Apply the T gate."""
        return self.append(TGate(), [qubit], condition=condition)

    def tdg(self, qubit, condition=None) -> Instruction:
        """Apply the T-dagger gate."""
        return self.append(TdgGate(), [qubit], condition=condition)

    def sx(self, qubit, condition=None) -> Instruction:
        """Apply the sqrt(X) gate."""
        return self.append(SXGate(), [qubit], condition=condition)

    def sxdg(self, qubit, condition=None) -> Instruction:
        """Apply the sqrt(X)-dagger gate."""
        return self.append(SXdgGate(), [qubit], condition=condition)

    def rx(self, theta, qubit, condition=None) -> Instruction:
        """Apply an X rotation by ``theta``."""
        return self.append(RXGate(theta), [qubit], condition=condition)

    def ry(self, theta, qubit, condition=None) -> Instruction:
        """Apply a Y rotation by ``theta``."""
        return self.append(RYGate(theta), [qubit], condition=condition)

    def rz(self, theta, qubit, condition=None) -> Instruction:
        """Apply a Z rotation by ``theta``."""
        return self.append(RZGate(theta), [qubit], condition=condition)

    def p(self, theta, qubit, condition=None) -> Instruction:
        """Apply a phase gate ``p(theta)``."""
        return self.append(PhaseGate(theta), [qubit], condition=condition)

    def u(self, theta, phi, lam, qubit, condition=None) -> Instruction:
        """Apply the generic single-qubit gate ``U(theta, phi, lam)``."""
        return self.append(UGate(theta, phi, lam), [qubit], condition=condition)

    def u2(self, phi, lam, qubit, condition=None) -> Instruction:
        """Apply the legacy ``u2(phi, lam)`` gate."""
        return self.append(U2Gate(phi, lam), [qubit], condition=condition)

    def global_phase(self, phase) -> Instruction:
        """Multiply the overall state by ``exp(i*phase)``."""
        return self.append(GlobalPhaseGate(phase), [])

    # -- two-qubit gates ------------------------------------------------------

    def cx(self, control, target, condition=None) -> Instruction:
        """Apply a CNOT gate."""
        return self.append(CXGate(), [control, target], condition=condition)

    def cy(self, control, target, condition=None) -> Instruction:
        """Apply a controlled-Y gate."""
        return self.append(CYGate(), [control, target], condition=condition)

    def cz(self, control, target, condition=None) -> Instruction:
        """Apply a controlled-Z gate."""
        return self.append(CZGate(), [control, target], condition=condition)

    def ch(self, control, target, condition=None) -> Instruction:
        """Apply a controlled-Hadamard gate."""
        return self.append(CHGate(), [control, target], condition=condition)

    def cp(self, theta, control, target, condition=None) -> Instruction:
        """Apply a controlled phase gate ``cp(theta)``."""
        return self.append(CPhaseGate(theta), [control, target], condition=condition)

    def crx(self, theta, control, target, condition=None) -> Instruction:
        """Apply a controlled X rotation."""
        return self.append(CRXGate(theta), [control, target], condition=condition)

    def cry(self, theta, control, target, condition=None) -> Instruction:
        """Apply a controlled Y rotation."""
        return self.append(CRYGate(theta), [control, target], condition=condition)

    def crz(self, theta, control, target, condition=None) -> Instruction:
        """Apply a controlled Z rotation."""
        return self.append(CRZGate(theta), [control, target], condition=condition)

    def cu(self, theta, phi, lam, control, target, condition=None) -> Instruction:
        """Apply a controlled ``U(theta, phi, lam)`` gate."""
        return self.append(CUGate(theta, phi, lam), [control, target], condition=condition)

    def swap(self, qubit1, qubit2, condition=None) -> Instruction:
        """Apply a SWAP gate."""
        return self.append(SwapGate(), [qubit1, qubit2], condition=condition)

    def iswap(self, qubit1, qubit2, condition=None) -> Instruction:
        """Apply an iSWAP gate."""
        return self.append(iSwapGate(), [qubit1, qubit2], condition=condition)

    # -- three-qubit and multi-controlled gates -------------------------------

    def ccx(self, control1, control2, target, condition=None) -> Instruction:
        """Apply a Toffoli gate."""
        return self.append(CCXGate(), [control1, control2, target], condition=condition)

    def ccz(self, control1, control2, target, condition=None) -> Instruction:
        """Apply a doubly-controlled Z gate."""
        return self.append(CCZGate(), [control1, control2, target], condition=condition)

    def cswap(self, control, target1, target2, condition=None) -> Instruction:
        """Apply a Fredkin (controlled-SWAP) gate."""
        return self.append(CSwapGate(), [control, target1, target2], condition=condition)

    def mcx(self, controls: Sequence, target, condition=None) -> Instruction:
        """Apply a multi-controlled X gate."""
        controls = list(controls)
        return self.append(MCXGate(len(controls)), [*controls, target], condition=condition)

    def mcp(self, theta, controls: Sequence, target, condition=None) -> Instruction:
        """Apply a multi-controlled phase gate."""
        controls = list(controls)
        return self.append(
            MCPhaseGate(theta, len(controls)), [*controls, target], condition=condition
        )

    # -- non-unitary operations -----------------------------------------------

    def measure(self, qubit, clbit) -> Instruction:
        """Measure ``qubit`` into ``clbit``."""
        return self.append(Measure(), [qubit], [clbit])

    def measure_all(self) -> list[Instruction]:
        """Measure qubit ``k`` into classical bit ``k`` for every qubit.

        Requires at least as many classical bits as qubits.
        """
        if self.num_clbits < self.num_qubits:
            raise CircuitError(
                f"measure_all needs {self.num_qubits} classical bits, "
                f"circuit has {self.num_clbits}"
            )
        return [self.measure(q, q) for q in range(self.num_qubits)]

    def reset(self, qubit, condition=None) -> Instruction:
        """Reset ``qubit`` to |0> (optionally classically conditioned)."""
        return self.append(Reset(), [qubit], condition=condition)

    def barrier(self, *qubits) -> Instruction:
        """Insert a barrier (over all qubits when none are given)."""
        if not qubits:
            qubits = tuple(range(self.num_qubits))
        return self.append(Barrier(len(qubits)), list(qubits))

    # ------------------------------------------------------------------
    # whole-circuit transformations
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (instructions are immutable, so this is safe)."""
        other = QuantumCircuit(name=name or self.name)
        for reg in self._qregs:
            other.add_register(reg)
        for reg in self._cregs:
            other.add_register(reg)
        other._data = list(self._data)
        return other

    def copy_empty(self, name: str | None = None) -> "QuantumCircuit":
        """Return a copy with the same registers but no instructions."""
        other = self.copy(name=name)
        other._data = []
        return other

    def inverse(self, name: str | None = None) -> "QuantumCircuit":
        """Return the inverse circuit.

        Only defined for circuits consisting purely of unitary gates (no
        measurements, resets or classical conditions).
        """
        other = self.copy_empty(name=name or f"{self.name}_dg")
        for inst in reversed(self._data):
            if inst.is_barrier:
                other._data.append(inst)
                continue
            if not inst.is_gate or inst.condition is not None:
                raise CircuitError(
                    "cannot invert a circuit containing non-unitary operations; "
                    "transform it with repro.core.to_unitary_circuit first"
                )
            gate = inst.operation
            assert isinstance(gate, Gate)
            other._data.append(Instruction(gate.inverse(), inst.qubits))
        return other

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
    ) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended onto this one.

        ``qubits``/``clbits`` map the other circuit's bit index ``k`` to
        ``qubits[k]`` of this circuit (identity mapping by default).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"qubit mapping has {len(qubits)} entries, other circuit has "
                f"{other.num_qubits} qubits"
            )
        if len(clbits) != other.num_clbits:
            raise CircuitError(
                f"clbit mapping has {len(clbits)} entries, other circuit has "
                f"{other.num_clbits} clbits"
            )
        result = self.copy()
        for inst in other._data:
            mapped_qubits = tuple(qubits[q] for q in inst.qubits)
            mapped_clbits = tuple(clbits[c] for c in inst.clbits)
            condition = inst.condition
            if condition is not None:
                condition = ClassicalCondition(
                    tuple(clbits[c] for c in condition.clbits), condition.value
                )
            result.append_instruction(
                Instruction(inst.operation, mapped_qubits, mapped_clbits, condition)
            )
        return result

    def remove_barriers(self) -> "QuantumCircuit":
        """Return a copy without barrier instructions."""
        other = self.copy_empty()
        other._data = [inst for inst in self._data if not inst.is_barrier]
        return other

    @property
    def free_parameters(self) -> frozenset:
        """The symbolic parameters the circuit's gates still depend on."""
        names: set = set()
        for inst in self._data:
            names |= inst.operation.free_parameters
        return frozenset(names)

    def bind_parameters(self, mapping) -> "QuantumCircuit":
        """Substitute symbolic parameter values, returning a new circuit.

        ``mapping`` maps :class:`~repro.circuit.parameter.Parameter` objects
        (or their names) to numeric values.  Gates without free parameters
        are shared unchanged; parameterized gates are rebuilt through their
        constructors so binding re-runs full validation.
        """
        other = self.copy_empty()
        other._data = [
            inst.replace(operation=inst.operation.bind_parameters(mapping))
            if inst.operation.free_parameters
            else inst
            for inst in self._data
        ]
        return other

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy without the trailing measurement layer.

        Only measurements that are not followed by any further operation on
        the measured qubit are removed (i.e. genuine read-out measurements).
        """
        keep: list[Instruction] = []
        last_use: dict[int, int] = {}
        for position, inst in enumerate(self._data):
            if inst.is_barrier:
                continue
            for q in inst.qubits:
                last_use[q] = position
        for position, inst in enumerate(self._data):
            if inst.is_measurement and last_use.get(inst.qubits[0]) == position:
                continue
            keep.append(inst)
        other = self.copy_empty()
        other._data = keep
        return other

    def gate_instructions(self) -> Iterator[Instruction]:
        """Iterate over unitary, unconditioned gate instructions (skip barriers).

        Raises if a dynamic primitive is encountered — callers that need to
        handle dynamic circuits must transform or branch first.
        """
        for inst in self._data:
            if inst.is_barrier:
                continue
            if not inst.is_gate or inst.condition is not None:
                raise CircuitError(
                    f"circuit contains non-unitary instruction {inst!r}; "
                    "use repro.core.to_unitary_circuit or the extraction scheme"
                )
            yield inst

    def used_qubits(self) -> set[int]:
        """Indices of qubits touched by at least one instruction."""
        used: set[int] = set()
        for inst in self._data:
            if inst.is_barrier:
                continue
            used.update(inst.qubits)
        return used

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle only the structural state: registers and instruction stream.

        The index maps ``_qubit_indices``/``_clbit_indices`` are keyed by bits
        that hash by register *identity*; serializing them would bake in
        memory addresses.  They are derived state and are rebuilt from the
        registers on unpickling, so circuits round-trip through ``pickle``
        (e.g. into a ``ProcessPoolExecutor``) with an identical instruction
        stream and internally consistent bit bookkeeping.
        """
        return {
            "name": self.name,
            "qregs": self._qregs,
            "cregs": self._cregs,
            "data": self._data,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(name=state["name"])
        for register in state["qregs"]:
            self.add_register(register)
        for register in state["cregs"]:
            self.add_register(register)
        self._data = list(state["data"])

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def to_qasm(self) -> str:
        """Export the circuit as OpenQASM 2 (with ``if`` for classical control)."""
        from repro.circuit.qasm import circuit_to_qasm

        return circuit_to_qasm(self)

    @staticmethod
    def from_qasm(text: str) -> "QuantumCircuit":
        """Parse an OpenQASM 2 string produced by :meth:`to_qasm` (or similar)."""
        from repro.circuit.qasm import circuit_from_qasm

        return circuit_from_qasm(text)

    def draw(self) -> str:
        """Render a plain-text drawing of the circuit."""
        from repro.circuit.drawer import draw_circuit

        return draw_circuit(self)

    def summary(self) -> str:
        """One-line summary used in logs and benchmark tables."""
        return (
            f"{self.name}: {self.num_qubits} qubits, {self.num_clbits} clbits, "
            f"{self.size} ops (measure={self.num_measurements}, reset={self.num_resets}, "
            f"classically-controlled={self.num_classically_controlled})"
        )

    def __repr__(self) -> str:
        return f"<QuantumCircuit {self.summary()}>"
