"""Plain-text circuit drawer.

Produces a compact column-per-instruction rendering, e.g.::

    q0: -H---*---M------
             |   |
    q1: -----X---|---M--
                 |   |
    c0: =========*===*==

The drawer is intentionally simple: one column per instruction (no packing),
which keeps the code small while still being useful for inspecting the
dynamic circuits and their unitary reconstructions in examples and tests.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import ControlledGate

__all__ = ["draw_circuit"]


def _gate_label(inst) -> str:
    op = inst.operation
    if op.params:
        args = ",".join(f"{p:.3g}" for p in op.params)
        return f"{op.name}({args})"
    return op.name


def draw_circuit(circuit: QuantumCircuit) -> str:
    """Render ``circuit`` as plain text (one column per instruction)."""
    num_qubits = circuit.num_qubits
    num_clbits = circuit.num_clbits
    qubit_rows: list[list[str]] = [[] for _ in range(num_qubits)]
    clbit_rows: list[list[str]] = [[] for _ in range(num_clbits)]

    for inst in circuit:
        column_q = ["-"] * num_qubits
        column_c = ["="] * num_clbits
        op = inst.operation

        if inst.is_barrier:
            for q in inst.qubits:
                column_q[q] = "|"
        elif inst.is_measurement:
            column_q[inst.qubits[0]] = "M"
            column_c[inst.clbits[0]] = "v"
        elif inst.is_reset:
            column_q[inst.qubits[0]] = "0"
        elif isinstance(op, ControlledGate):
            controls = inst.qubits[: op.num_ctrl_qubits]
            targets = inst.qubits[op.num_ctrl_qubits :]
            for k, control in enumerate(controls):
                active = (op.ctrl_state >> k) & 1
                column_q[control] = "*" if active else "o"
            label = op.base_gate.name.upper()
            for target in targets:
                column_q[target] = label
        else:
            label = _gate_label(inst)
            for q in inst.qubits:
                column_q[q] = label

        if inst.condition is not None:
            for c in inst.condition.clbits:
                column_c[c] = "?"

        width = max([len(cell) for cell in column_q + column_c] + [1])
        for q in range(num_qubits):
            qubit_rows[q].append(column_q[q].center(width, "-"))
        for c in range(num_clbits):
            clbit_rows[c].append(column_c[c].center(width, "="))

    lines = []
    label_width = max(len(f"q{num_qubits - 1}"), len(f"c{max(num_clbits - 1, 0)}"), 2) + 2
    for q in range(num_qubits):
        prefix = f"q{q}:".ljust(label_width)
        lines.append(prefix + "-" + "--".join(qubit_rows[q]) + "-")
    for c in range(num_clbits):
        prefix = f"c{c}:".ljust(label_width)
        lines.append(prefix + "=" + "==".join(clbit_rows[c]) + "=")
    return "\n".join(lines)
