"""Single source of decomposition truth: the equivalence library.

Before this module, three layers each kept their own decomposition tables:
``Gate.definition()`` bodies in :mod:`repro.circuit.gates`, the isinstance
ladder in :mod:`repro.compilation.basis`, and the controlled-composite
factoring used by measurement deferral in :mod:`repro.core.transformation`.
All three now resolve through one registry of *rules*

    (gate name, arity, formal parameters)  ->  defining sub-circuit

following the registration idiom of Qiskit's ``EquivalenceLibrary``: each
rule stores a *template* gate (whose parameters are symbolic
:class:`~repro.circuit.parameter.Parameter` objects for parameterized
families) together with steps ``(gate, local qubit indices)``.  Looking up a
concrete gate binds the template's formal parameters to the gate's actual
values by substitution — parameterized families register once.

Three lookup surfaces map onto the three former layers:

* :meth:`EquivalenceLibrary.definition_steps` — what ``Gate.definition()``
  returns: only rules tagged ``definition=True`` (the backend-facing
  decompositions of ``swap``/``iswap``/``iswapdg``/``cswap``).
* :meth:`EquivalenceLibrary.controlled_factoring` — the
  ``C(U_k ... U_1) = C(U_k) ... C(U_1)`` product rule for controlled gates
  with a decomposable multi-qubit base.
* :meth:`EquivalenceLibrary.translation_steps` — the full search used by
  basis translation: named rule, else negative-control normalization
  (X-conjugation onto the all-ones control state), else controlled
  factoring, else ``None``.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import (
    CCXGate,
    CCZGate,
    ControlledGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CUGate,
    CXGate,
    Gate,
    HGate,
    PhaseGate,
    RYGate,
    RZGate,
    SGate,
    SwapGate,
    XGate,
    _InverseISwapGate,
    iSwapGate,
)
from repro.circuit.parameter import Parameter
from repro.exceptions import CircuitError

__all__ = ["EquivalenceLibrary", "StandardEquivalenceLibrary"]

Steps = Sequence[tuple[Gate, tuple[int, ...]]]


class _Rule:
    """One registered equivalence: a template gate and its defining steps."""

    __slots__ = ("template", "steps", "is_definition")

    def __init__(self, template: Gate, steps: Steps, is_definition: bool):
        self.template = template
        self.steps = tuple((gate, tuple(qubits)) for gate, qubits in steps)
        self.is_definition = is_definition


class EquivalenceLibrary:
    """Registry mapping gates to defining sub-circuits on local qubit indices."""

    def __init__(self) -> None:
        self._rules: dict[tuple[str, int], _Rule] = {}

    # -- registration --------------------------------------------------

    def add_equivalence(
        self, template: Gate, steps: Steps, *, definition: bool = False
    ) -> None:
        """Register ``template -> steps``.

        ``template``'s parameters must all be plain :class:`Parameter`
        objects (the formal angles the steps are written in); lookups bind
        them to a concrete gate's values.  ``definition=True`` marks the
        rule as the gate's backend-facing ``definition()`` (the historic
        ``Gate.definition()`` bodies); untagged rules are translation-only.
        """
        for value in template.params:
            if not isinstance(value, Parameter):
                raise CircuitError(
                    f"template {template.name!r} parameters must be Parameter "
                    f"objects, got {value!r}"
                )
        for gate, qubits in steps:
            if any(q < 0 or q >= template.num_qubits for q in qubits):
                raise CircuitError(
                    f"rule for {template.name!r} references qubit outside "
                    f"range({template.num_qubits}): {qubits}"
                )
        self._rules[(template.name, template.num_qubits)] = _Rule(
            template, steps, definition
        )

    # -- matching ------------------------------------------------------

    def _match(self, gate: Gate) -> _Rule | None:
        rule = self._rules.get((gate.name, gate.num_qubits))
        if rule is None:
            return None
        template = rule.template
        if len(template.params) != len(gate.params):
            return None
        if isinstance(template, ControlledGate) != isinstance(gate, ControlledGate):
            return None
        if isinstance(template, ControlledGate) and (
            template.num_ctrl_qubits != gate.num_ctrl_qubits
            or template.ctrl_state != gate.ctrl_state
        ):
            return None
        return rule

    def _instantiate(self, rule: _Rule, gate: Gate) -> list[tuple[Gate, tuple[int, ...]]]:
        if not rule.template.params:
            return list(rule.steps)
        mapping = dict(zip(rule.template.params, gate.params))
        return [
            (step_gate.bind_parameters(mapping), qubits)
            for step_gate, qubits in rule.steps
        ]

    def has_entry(self, gate: Gate) -> bool:
        """Whether a named rule matches this gate exactly."""
        return self._match(gate) is not None

    # -- lookup surfaces -----------------------------------------------

    def definition_steps(self, gate: Gate) -> list[tuple[Gate, tuple[int, ...]]] | None:
        """The ``Gate.definition()`` body: definition-tagged rules only."""
        rule = self._match(gate)
        if rule is None or not rule.is_definition:
            return None
        return self._instantiate(rule, gate)

    def controlled_factoring(
        self, gate: ControlledGate
    ) -> list[tuple[Gate, tuple[int, ...]]] | None:
        """Factor a controlled composite: ``C(U_k ... U_1) = C(U_k) ... C(U_1)``.

        Backends handle controlled *single-qubit* gates natively, so those
        (and controlled gates whose base has no definition) return ``None``.
        """
        if gate.base_gate.num_qubits <= 1:
            return None
        base_definition = self.definition_steps(gate.base_gate)
        if base_definition is None and isinstance(gate.base_gate, ControlledGate):
            base_definition = self.controlled_factoring(gate.base_gate)
        if base_definition is None:
            return None
        nc = gate.num_ctrl_qubits
        controls = tuple(range(nc))
        return [
            (sub_gate.control(nc, gate.ctrl_state), controls + tuple(nc + q for q in qubits))
            for sub_gate, qubits in base_definition
        ]

    def translation_steps(
        self, gate: Gate
    ) -> list[tuple[Gate, tuple[int, ...]]] | None:
        """Full rewrite search used by basis translation.

        Order: exact named rule; negative-control normalization
        (X-conjugate the zero-controls so the all-ones rule applies);
        controlled factoring of a composite base.  Returns ``None`` when the
        library has nothing to say — callers fall back to numeric (ZYZ)
        machinery or report the gate as unsupported.
        """
        rule = self._match(gate)
        if rule is not None:
            return self._instantiate(rule, gate)
        if isinstance(gate, ControlledGate):
            normalized = self._normalize_controls(gate)
            if normalized is not None:
                return normalized
            return self.controlled_factoring(gate)
        return None

    def _normalize_controls(
        self, gate: ControlledGate
    ) -> list[tuple[Gate, tuple[int, ...]]] | None:
        """X-conjugate negative controls onto the all-ones control state.

        Only applies when the all-ones form itself has a named rule —
        otherwise normalizing would just push an unsupported gate one level
        deeper (and singly-controlled single-qubit gates already handle
        ``ctrl_state == 0`` in their numeric ABC fallback).
        """
        all_ones = (1 << gate.num_ctrl_qubits) - 1
        if gate.ctrl_state == all_ones:
            return None
        positive = ControlledGate(gate.base_gate, gate.num_ctrl_qubits, all_ones)
        if not self.has_entry(positive):
            return None
        flips = [
            (XGate(), (control,))
            for control in range(gate.num_ctrl_qubits)
            if not (gate.ctrl_state >> control) & 1
        ]
        body = (positive, tuple(range(gate.num_qubits)))
        return [*flips, body, *flips]


def _inverted(steps: Steps) -> list[tuple[Gate, tuple[int, ...]]]:
    """The inverse sub-circuit: reversed order, each gate inverted."""
    return [(gate.inverse(), qubits) for gate, qubits in reversed(list(steps))]


def _toffoli_steps() -> list[tuple[Gate, tuple[int, ...]]]:
    """Standard 6-CNOT Toffoli decomposition on (control a, control b, target c)."""
    from repro.circuit.gates import TdgGate, TGate

    return [
        (HGate(), (2,)),
        (CXGate(), (1, 2)),
        (TdgGate(), (2,)),
        (CXGate(), (0, 2)),
        (TGate(), (2,)),
        (CXGate(), (1, 2)),
        (TdgGate(), (2,)),
        (CXGate(), (0, 2)),
        (TGate(), (1,)),
        (TGate(), (2,)),
        (HGate(), (2,)),
        (CXGate(), (0, 1)),
        (TGate(), (0,)),
        (TdgGate(), (1,)),
        (CXGate(), (0, 1)),
    ]


def _populate_standard_library() -> EquivalenceLibrary:
    library = EquivalenceLibrary()
    theta = Parameter("theta")
    phi = Parameter("phi")
    lam = Parameter("lam")

    # Backend-facing definitions (the historic ``Gate.definition()`` bodies).
    iswap_steps = [
        (SGate(), (0,)),
        (SGate(), (1,)),
        (HGate(), (0,)),
        (CXGate(), (0, 1)),
        (CXGate(), (1, 0)),
        (HGate(), (1,)),
    ]
    library.add_equivalence(
        SwapGate(),
        [(CXGate(), (0, 1)), (CXGate(), (1, 0)), (CXGate(), (0, 1))],
        definition=True,
    )
    library.add_equivalence(iSwapGate(), iswap_steps, definition=True)
    library.add_equivalence(
        _InverseISwapGate(), _inverted(iswap_steps), definition=True
    )
    library.add_equivalence(
        CSwapGate(),
        [(CXGate(), (2, 1)), (CCXGate(), (0, 1, 2)), (CXGate(), (2, 1))],
        definition=True,
    )

    # Translation rules toward the CX + single-qubit basis.
    library.add_equivalence(CCXGate(), _toffoli_steps())
    library.add_equivalence(
        CCZGate(),
        [(HGate(), (2,)), (CCXGate(), (0, 1, 2)), (HGate(), (2,))],
    )

    # Parameterized controlled families, registered once with formal angles.
    # Qubit order is (control, target); ``X rz(a) X = rz(-a)`` telescopes the
    # conditional rotations.
    library.add_equivalence(
        CRZGate(theta),
        [
            (RZGate(theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (RZGate(-theta / 2), (1,)),
            (CXGate(), (0, 1)),
        ],
    )
    library.add_equivalence(
        CRYGate(theta),
        [
            (RYGate(theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (RYGate(-theta / 2), (1,)),
            (CXGate(), (0, 1)),
        ],
    )
    library.add_equivalence(
        CRXGate(theta),
        [
            (HGate(), (1,)),
            (RZGate(theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (RZGate(-theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (HGate(), (1,)),
        ],
    )
    # cp is exact (no phase residue): diag(1, 1, 1, e^{i*theta}).
    library.add_equivalence(
        CPhaseGate(theta),
        [
            (PhaseGate(theta / 2), (0,)),
            (PhaseGate(theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (PhaseGate(-theta / 2), (1,)),
            (CXGate(), (0, 1)),
        ],
    )
    # cu: ABC decomposition with the base gate's U-convention phase
    # (phi + lam)/2 emitted as a phase gate on the control.
    library.add_equivalence(
        CUGate(theta, phi, lam),
        [
            (RZGate((lam - phi) / 2), (1,)),
            (CXGate(), (0, 1)),
            (RZGate((phi + lam) * -0.5), (1,)),
            (RYGate(-theta / 2), (1,)),
            (CXGate(), (0, 1)),
            (RYGate(theta / 2), (1,)),
            (RZGate(phi), (1,)),
            (PhaseGate((phi + lam) / 2), (0,)),
        ],
    )
    return library


#: The shared standard library all three layers resolve through.
StandardEquivalenceLibrary = _populate_standard_library()
