"""Standard gate library.

Every gate knows its unitary matrix, its inverse, and (for gates that a
backend may not support natively) a *definition* in terms of more primitive
gates.  Controlled gates are first-class: :class:`ControlledGate` wraps a base
gate together with a number of control qubits and a control state, which is
exactly the information the decision-diagram backend needs to build the gate
directly (without blowing it up to a dense matrix).

Matrix convention
-----------------
For a gate acting on the qubit tuple ``(q_0, q_1, ..., q_{k-1})`` (the order in
which the qubits are passed to the circuit method), the matrix index is
``sum_j b_j * 2**j`` where ``b_j`` is the basis value of ``q_j``.  In other
words the *first* listed qubit is the least significant bit of the matrix —
the same little-endian convention used by Qiskit.  Controlled gates list their
control qubits first, followed by the qubits of the base gate.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from repro.circuit.parameter import ParameterExpression, is_symbolic
from repro.exceptions import CircuitError

__all__ = [
    "Barrier",
    "CCXGate",
    "CCZGate",
    "CHGate",
    "CPhaseGate",
    "CRXGate",
    "CRYGate",
    "CRZGate",
    "CSwapGate",
    "CUGate",
    "CXGate",
    "CYGate",
    "CZGate",
    "ControlledGate",
    "Gate",
    "GlobalPhaseGate",
    "HGate",
    "IGate",
    "MCPhaseGate",
    "MCXGate",
    "Measure",
    "Operation",
    "PhaseGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "Reset",
    "SdgGate",
    "SGate",
    "SXGate",
    "SXdgGate",
    "SwapGate",
    "TdgGate",
    "TGate",
    "U2Gate",
    "UGate",
    "XGate",
    "YGate",
    "ZGate",
    "iSwapGate",
    "get_gate",
    "STANDARD_GATES",
]


def _coerce_parameter(value):
    """Parameter coercion: floats stay floats, symbolic expressions pass.

    An expression with at least one free parameter is kept as-is (the gate
    becomes a *template*, instantiated by :meth:`Operation.bind_parameters`);
    everything else — including a fully-bound expression — collapses to
    ``float`` so concrete gates behave exactly as before.
    """
    if is_symbolic(value):
        return value
    return float(value)


def _params_equal(a, b) -> bool:
    if isinstance(a, ParameterExpression) or isinstance(b, ParameterExpression):
        return bool(a == b)
    return abs(a - b) < 1e-12


def _bind_argument(value, mapping):
    if isinstance(value, ParameterExpression):
        bound = value.bind(mapping)
        return _coerce_parameter(bound)
    if isinstance(value, Operation):
        return value.bind_parameters(mapping)
    return value


class Operation:
    """Base class for anything that can be appended to a circuit.

    Attributes
    ----------
    name:
        Lower-case mnemonic, also used for QASM export.
    num_qubits / num_clbits:
        Number of quantum / classical operands.
    params:
        Tuple of real parameters (rotation angles, phases).  Entries may
        also be symbolic :class:`~repro.circuit.parameter.ParameterExpression`
        values — such a gate is a template (no matrix) until
        :meth:`bind_parameters` substitutes concrete angles.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        num_clbits: int = 0,
        params: Sequence[float] = (),
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.params = tuple(_coerce_parameter(p) for p in params)

    @property
    def is_unitary(self) -> bool:
        """Whether this operation is described by a unitary matrix."""
        return False

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(
                str(p) if isinstance(p, ParameterExpression) else f"{p:.6g}"
                for p in self.params
            )
            return f"{type(self).__name__}({args})"
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and len(self.params) == len(other.params)
            and all(_params_equal(a, b) for a, b in zip(self.params, other.params))
        )

    @property
    def free_parameters(self) -> frozenset:
        """The symbolic parameters this operation still depends on."""
        names: set = set()
        for value in self.params:
            if isinstance(value, ParameterExpression):
                names |= value.parameters
        return frozenset(names)

    def bind_parameters(self, mapping) -> "Operation":
        """Substitute parameter values, returning a new concrete operation.

        Reconstructs the operation through its constructor (the same route
        pickling takes), so binding re-runs full validation and works for
        nested structures such as a :class:`ControlledGate`'s base gate.
        """
        cls, args = self.__reduce__()[:2]
        return cls(*(_bind_argument(value, mapping) for value in args))

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.num_clbits, self.params))

    # -- pickling -----------------------------------------------------------
    #
    # Operations are reconstructed through their constructors (rather than by
    # restoring ``__dict__``) so that unpickling re-runs the same validation
    # as normal construction and worker processes can never observe a gate
    # state that could not have been built directly.

    def _pickle_args(self) -> tuple:
        """Constructor arguments reproducing this operation (see __reduce__)."""
        if type(self) is Operation:
            return (self.name, self.num_qubits, self.num_clbits, self.params)
        # Every concrete operation subclass takes exactly its parameters.
        return self.params

    def __reduce__(self):
        return (type(self), self._pickle_args())


class Gate(Operation):
    """A unitary quantum gate."""

    def __init__(self, name: str, num_qubits: int, params: Sequence[float] = ()) -> None:
        super().__init__(name, num_qubits, 0, params)

    @property
    def is_unitary(self) -> bool:
        return True

    def _pickle_args(self) -> tuple:
        if type(self) is Gate:
            return (self.name, self.num_qubits, self.params)
        return self.params

    @property
    def matrix(self) -> np.ndarray:
        """The ``2**k x 2**k`` unitary matrix of the gate."""
        raise NotImplementedError(f"gate {self.name!r} does not define a matrix")

    def inverse(self) -> "Gate":
        """Return a gate realizing the inverse (adjoint) operation."""
        raise NotImplementedError(f"gate {self.name!r} does not define an inverse")

    def control(self, num_ctrl_qubits: int = 1, ctrl_state: int | None = None) -> "ControlledGate":
        """Return the controlled version of this gate."""
        return ControlledGate(self, num_ctrl_qubits, ctrl_state)

    def definition(self) -> list[tuple["Gate", tuple[int, ...]]] | None:
        """Decomposition into more primitive gates on local qubit indices.

        Resolved through the single
        :data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary`
        (imported lazily — the library is populated from gate templates
        defined in this module).  Returns ``None`` for gates that every
        backend supports natively (single-qubit gates and controlled
        single-qubit gates).
        """
        from repro.circuit.equivalence_library import StandardEquivalenceLibrary

        return StandardEquivalenceLibrary.definition_steps(self)

    def power(self, exponent: int) -> list["Gate"]:
        """Return a list of gates realizing ``self`` applied ``exponent`` times.

        Negative exponents use the inverse gate.
        """
        if exponent >= 0:
            return [self] * exponent
        return [self.inverse()] * (-exponent)


class GlobalPhaseGate(Gate):
    """A zero-qubit gate multiplying the state by ``exp(i*phase)``."""

    def __init__(self, phase: float) -> None:
        super().__init__("gphase", 0, (phase,))

    @property
    def phase(self) -> float:
        return self.params[0]

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[cmath.exp(1j * self.phase)]], dtype=complex)

    def inverse(self) -> "GlobalPhaseGate":
        return GlobalPhaseGate(-self.phase)


# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------


class IGate(Gate):
    """Identity gate."""

    def __init__(self) -> None:
        super().__init__("id", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.eye(2, dtype=complex)

    def inverse(self) -> "IGate":
        return IGate()


class XGate(Gate):
    """Pauli-X (NOT) gate."""

    def __init__(self) -> None:
        super().__init__("x", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def inverse(self) -> "XGate":
        return XGate()


class YGate(Gate):
    """Pauli-Y gate."""

    def __init__(self) -> None:
        super().__init__("y", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]], dtype=complex)

    def inverse(self) -> "YGate":
        return YGate()


class ZGate(Gate):
    """Pauli-Z gate."""

    def __init__(self) -> None:
        super().__init__("z", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]], dtype=complex)

    def inverse(self) -> "ZGate":
        return ZGate()


class HGate(Gate):
    """Hadamard gate."""

    def __init__(self) -> None:
        super().__init__("h", 1)

    @property
    def matrix(self) -> np.ndarray:
        s = 1.0 / math.sqrt(2.0)
        return np.array([[s, s], [s, -s]], dtype=complex)

    def inverse(self) -> "HGate":
        return HGate()


class SGate(Gate):
    """Phase gate S = sqrt(Z)."""

    def __init__(self) -> None:
        super().__init__("s", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]], dtype=complex)

    def inverse(self) -> "SdgGate":
        return SdgGate()


class SdgGate(Gate):
    """Adjoint of the S gate."""

    def __init__(self) -> None:
        super().__init__("sdg", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]], dtype=complex)

    def inverse(self) -> "SGate":
        return SGate()


class TGate(Gate):
    """T gate (pi/8 gate)."""

    def __init__(self) -> None:
        super().__init__("t", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> "TdgGate":
        return TdgGate()


class TdgGate(Gate):
    """Adjoint of the T gate."""

    def __init__(self) -> None:
        super().__init__("tdg", 1)

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> "TGate":
        return TGate()


class SXGate(Gate):
    """Square root of X."""

    def __init__(self) -> None:
        super().__init__("sx", 1)

    @property
    def matrix(self) -> np.ndarray:
        return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

    def inverse(self) -> "SXdgGate":
        return SXdgGate()


class SXdgGate(Gate):
    """Adjoint of the square root of X."""

    def __init__(self) -> None:
        super().__init__("sxdg", 1)

    @property
    def matrix(self) -> np.ndarray:
        return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)

    def inverse(self) -> "SXGate":
        return SXGate()


# ---------------------------------------------------------------------------
# Parameterized single-qubit gates
# ---------------------------------------------------------------------------


class RXGate(Gate):
    """Rotation about the X axis by ``theta``."""

    def __init__(self, theta: float) -> None:
        super().__init__("rx", 1, (theta,))

    @property
    def matrix(self) -> np.ndarray:
        c = math.cos(self.params[0] / 2)
        s = math.sin(self.params[0] / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)

    def inverse(self) -> "RXGate":
        return RXGate(-self.params[0])


class RYGate(Gate):
    """Rotation about the Y axis by ``theta``."""

    def __init__(self, theta: float) -> None:
        super().__init__("ry", 1, (theta,))

    @property
    def matrix(self) -> np.ndarray:
        c = math.cos(self.params[0] / 2)
        s = math.sin(self.params[0] / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)

    def inverse(self) -> "RYGate":
        return RYGate(-self.params[0])


class RZGate(Gate):
    """Rotation about the Z axis by ``theta`` (traceless convention)."""

    def __init__(self, theta: float) -> None:
        super().__init__("rz", 1, (theta,))

    @property
    def matrix(self) -> np.ndarray:
        half = self.params[0] / 2
        return np.array(
            [[cmath.exp(-1j * half), 0], [0, cmath.exp(1j * half)]], dtype=complex
        )

    def inverse(self) -> "RZGate":
        return RZGate(-self.params[0])


class PhaseGate(Gate):
    """Phase gate ``p(theta) = diag(1, exp(i*theta))``.

    This is the gate written as ``p(.)`` throughout the paper; for instance the
    running example uses ``U = p(3*pi/8)``.
    """

    def __init__(self, theta: float) -> None:
        super().__init__("p", 1, (theta,))

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * self.params[0])]], dtype=complex)

    def inverse(self) -> "PhaseGate":
        return PhaseGate(-self.params[0])


class UGate(Gate):
    """Generic single-qubit gate ``U(theta, phi, lam)`` (IBM convention)."""

    def __init__(self, theta: float, phi: float, lam: float) -> None:
        super().__init__("u", 1, (theta, phi, lam))

    @property
    def matrix(self) -> np.ndarray:
        theta, phi, lam = self.params
        c = math.cos(theta / 2)
        s = math.sin(theta / 2)
        return np.array(
            [
                [c, -cmath.exp(1j * lam) * s],
                [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )

    def inverse(self) -> "UGate":
        theta, phi, lam = self.params
        return UGate(-theta, -lam, -phi)


class U2Gate(Gate):
    """Legacy ``u2(phi, lam) = U(pi/2, phi, lam)`` gate."""

    def __init__(self, phi: float, lam: float) -> None:
        super().__init__("u2", 1, (phi, lam))

    @property
    def matrix(self) -> np.ndarray:
        phi, lam = self.params
        return UGate(math.pi / 2, phi, lam).matrix

    def inverse(self) -> "U2Gate":
        phi, lam = self.params
        return U2Gate(-lam - math.pi, -phi + math.pi)


# ---------------------------------------------------------------------------
# Controlled gates
# ---------------------------------------------------------------------------


class ControlledGate(Gate):
    """A gate controlled on one or more qubits.

    The instruction's qubit order is ``(controls..., base-gate qubits...)``.
    ``ctrl_state`` encodes the activation pattern as an integer whose bit ``j``
    is the required value of control ``j`` (default: all ones).
    """

    def __init__(
        self,
        base_gate: Gate,
        num_ctrl_qubits: int = 1,
        ctrl_state: int | None = None,
        name: str | None = None,
    ) -> None:
        if num_ctrl_qubits < 1:
            raise CircuitError("a controlled gate needs at least one control qubit")
        if ctrl_state is None:
            ctrl_state = (1 << num_ctrl_qubits) - 1
        if not 0 <= ctrl_state < (1 << num_ctrl_qubits):
            raise CircuitError(
                f"ctrl_state {ctrl_state} out of range for {num_ctrl_qubits} controls"
            )
        if name is None:
            name = "c" * num_ctrl_qubits + base_gate.name
        super().__init__(name, num_ctrl_qubits + base_gate.num_qubits, base_gate.params)
        self.base_gate = base_gate
        self.num_ctrl_qubits = num_ctrl_qubits
        self.ctrl_state = ctrl_state

    @property
    def matrix(self) -> np.ndarray:
        nc = self.num_ctrl_qubits
        base = self.base_gate.matrix
        nb = self.base_gate.num_qubits
        dim = 1 << (nc + nb)
        result = np.eye(dim, dtype=complex)
        mask = (1 << nc) - 1
        for col in range(dim):
            if (col & mask) != self.ctrl_state:
                continue
            base_col = col >> nc
            result[:, col] = 0.0
            for base_row in range(1 << nb):
                row = (base_row << nc) | self.ctrl_state
                result[row, col] = base[base_row, base_col]
        return result

    def inverse(self) -> "ControlledGate":
        return ControlledGate(
            self.base_gate.inverse(), self.num_ctrl_qubits, self.ctrl_state
        )

    def control(self, num_ctrl_qubits: int = 1, ctrl_state: int | None = None) -> "ControlledGate":
        if ctrl_state is None:
            ctrl_state = (1 << num_ctrl_qubits) - 1
        combined_state = (self.ctrl_state << num_ctrl_qubits) | ctrl_state
        return ControlledGate(
            self.base_gate, self.num_ctrl_qubits + num_ctrl_qubits, combined_state
        )

    def definition(self) -> list[tuple[Gate, tuple[int, ...]]] | None:
        """Decompose a controlled multi-qubit gate into controlled factors.

        ``C(U_k ... U_1) = C(U_k) ... C(U_1)``: controlling a product is the
        product of the controlled factors, for any control count and state.
        Resolved through the
        :data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary`
        so deferral, compilation and backends all share one factoring rule.
        """
        from repro.circuit.equivalence_library import StandardEquivalenceLibrary

        return StandardEquivalenceLibrary.controlled_factoring(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ControlledGate):
            return NotImplemented
        return (
            self.num_ctrl_qubits == other.num_ctrl_qubits
            and self.ctrl_state == other.ctrl_state
            and self.base_gate == other.base_gate
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_ctrl_qubits, self.ctrl_state, self.base_gate))

    def _pickle_args(self) -> tuple:
        if type(self) is ControlledGate:
            return (self.base_gate, self.num_ctrl_qubits, self.ctrl_state, self.name)
        # The single-control convenience subclasses take (params..., ctrl_state).
        return (*self.params, self.ctrl_state)


class CXGate(ControlledGate):
    """Controlled-NOT gate."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(XGate(), 1, ctrl_state, name="cx")

    def inverse(self) -> "CXGate":
        return CXGate(self.ctrl_state)


class CYGate(ControlledGate):
    """Controlled-Y gate."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(YGate(), 1, ctrl_state, name="cy")

    def inverse(self) -> "CYGate":
        return CYGate(self.ctrl_state)


class CZGate(ControlledGate):
    """Controlled-Z gate."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(ZGate(), 1, ctrl_state, name="cz")

    def inverse(self) -> "CZGate":
        return CZGate(self.ctrl_state)


class CHGate(ControlledGate):
    """Controlled-Hadamard gate."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(HGate(), 1, ctrl_state, name="ch")

    def inverse(self) -> "CHGate":
        return CHGate(self.ctrl_state)


class CPhaseGate(ControlledGate):
    """Controlled phase gate ``cp(theta)``."""

    def __init__(self, theta: float, ctrl_state: int | None = None) -> None:
        super().__init__(PhaseGate(theta), 1, ctrl_state, name="cp")

    def inverse(self) -> "CPhaseGate":
        return CPhaseGate(-self.params[0], self.ctrl_state)


class CRXGate(ControlledGate):
    """Controlled X rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None) -> None:
        super().__init__(RXGate(theta), 1, ctrl_state, name="crx")

    def inverse(self) -> "CRXGate":
        return CRXGate(-self.params[0], self.ctrl_state)


class CRYGate(ControlledGate):
    """Controlled Y rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None) -> None:
        super().__init__(RYGate(theta), 1, ctrl_state, name="cry")

    def inverse(self) -> "CRYGate":
        return CRYGate(-self.params[0], self.ctrl_state)


class CRZGate(ControlledGate):
    """Controlled Z rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None) -> None:
        super().__init__(RZGate(theta), 1, ctrl_state, name="crz")

    def inverse(self) -> "CRZGate":
        return CRZGate(-self.params[0], self.ctrl_state)


class CUGate(ControlledGate):
    """Controlled generic single-qubit gate ``cu(theta, phi, lam)``."""

    def __init__(
        self, theta: float, phi: float, lam: float, ctrl_state: int | None = None
    ) -> None:
        super().__init__(UGate(theta, phi, lam), 1, ctrl_state, name="cu")

    def inverse(self) -> "CUGate":
        theta, phi, lam = self.params
        return CUGate(-theta, -lam, -phi, self.ctrl_state)


class CCXGate(ControlledGate):
    """Toffoli gate (doubly-controlled X)."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(XGate(), 2, ctrl_state, name="ccx")

    def inverse(self) -> "CCXGate":
        return CCXGate(self.ctrl_state)


class CCZGate(ControlledGate):
    """Doubly-controlled Z gate."""

    def __init__(self, ctrl_state: int | None = None) -> None:
        super().__init__(ZGate(), 2, ctrl_state, name="ccz")

    def inverse(self) -> "CCZGate":
        return CCZGate(self.ctrl_state)


class MCXGate(ControlledGate):
    """Multi-controlled X gate."""

    def __init__(self, num_ctrl_qubits: int, ctrl_state: int | None = None) -> None:
        super().__init__(XGate(), num_ctrl_qubits, ctrl_state, name=f"mcx_{num_ctrl_qubits}")

    def inverse(self) -> "MCXGate":
        return MCXGate(self.num_ctrl_qubits, self.ctrl_state)

    def _pickle_args(self) -> tuple:
        return (self.num_ctrl_qubits, self.ctrl_state)


class MCPhaseGate(ControlledGate):
    """Multi-controlled phase gate."""

    def __init__(self, theta: float, num_ctrl_qubits: int, ctrl_state: int | None = None) -> None:
        super().__init__(
            PhaseGate(theta), num_ctrl_qubits, ctrl_state, name=f"mcphase_{num_ctrl_qubits}"
        )

    def inverse(self) -> "MCPhaseGate":
        return MCPhaseGate(-self.params[0], self.num_ctrl_qubits, self.ctrl_state)

    def _pickle_args(self) -> tuple:
        return (self.params[0], self.num_ctrl_qubits, self.ctrl_state)


# ---------------------------------------------------------------------------
# Multi-qubit gates with definitions
# ---------------------------------------------------------------------------


class SwapGate(Gate):
    """SWAP gate, exchanging two qubits."""

    def __init__(self) -> None:
        super().__init__("swap", 2)

    @property
    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> "SwapGate":
        return SwapGate()


class iSwapGate(Gate):  # noqa: N801 - conventional gate name
    """iSWAP gate."""

    def __init__(self) -> None:
        super().__init__("iswap", 2)

    @property
    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> Gate:
        # iSWAP^-1 = S^-1 x S^-1 . SWAP . CZ  (realized via its own definition)
        return _InverseISwapGate()


class _InverseISwapGate(Gate):
    """Adjoint of the iSWAP gate (internal helper)."""

    def __init__(self) -> None:
        super().__init__("iswapdg", 2)

    @property
    def matrix(self) -> np.ndarray:
        return iSwapGate().matrix.conj().T

    def inverse(self) -> iSwapGate:
        return iSwapGate()


class CSwapGate(Gate):
    """Fredkin gate (controlled SWAP); qubit order ``(control, a, b)``."""

    def __init__(self) -> None:
        super().__init__("cswap", 3)

    @property
    def matrix(self) -> np.ndarray:
        dim = 8
        result = np.eye(dim, dtype=complex)
        swap_pairs = []
        for idx in range(dim):
            control = idx & 1
            a = (idx >> 1) & 1
            b = (idx >> 2) & 1
            if control == 1 and a != b:
                swapped = 1 | (b << 1) | (a << 2)
                swap_pairs.append((idx, swapped))
        for i, j in swap_pairs:
            result[i, i] = 0.0
            result[i, j] = 1.0
        return result

    def inverse(self) -> "CSwapGate":
        return CSwapGate()


# ---------------------------------------------------------------------------
# Non-unitary operations
# ---------------------------------------------------------------------------


class Measure(Operation):
    """Projective measurement of one qubit into one classical bit."""

    def __init__(self) -> None:
        super().__init__("measure", 1, 1)


class Reset(Operation):
    """Reset of one qubit to the |0> state (non-unitary)."""

    def __init__(self) -> None:
        super().__init__("reset", 1, 0)


class Barrier(Operation):
    """Barrier pseudo-operation (no functional effect)."""

    def __init__(self, num_qubits: int) -> None:
        super().__init__("barrier", num_qubits, 0)

    def _pickle_args(self) -> tuple:
        return (self.num_qubits,)

    @property
    def is_unitary(self) -> bool:
        # A barrier has no effect on the state; it is treated as the identity
        # by all functional backends but kept distinct so that it can be
        # skipped (and exported to QASM) explicitly.
        return False


# ---------------------------------------------------------------------------
# Name-based construction (used by the QASM importer)
# ---------------------------------------------------------------------------

STANDARD_GATES: dict[str, tuple[type[Gate], int]] = {
    # name -> (class, number of parameters)
    "id": (IGate, 0),
    "x": (XGate, 0),
    "y": (YGate, 0),
    "z": (ZGate, 0),
    "h": (HGate, 0),
    "s": (SGate, 0),
    "sdg": (SdgGate, 0),
    "t": (TGate, 0),
    "tdg": (TdgGate, 0),
    "sx": (SXGate, 0),
    "sxdg": (SXdgGate, 0),
    "rx": (RXGate, 1),
    "ry": (RYGate, 1),
    "rz": (RZGate, 1),
    "p": (PhaseGate, 1),
    "u1": (PhaseGate, 1),
    "u2": (U2Gate, 2),
    "u": (UGate, 3),
    "u3": (UGate, 3),
    "cx": (CXGate, 0),
    "cy": (CYGate, 0),
    "cz": (CZGate, 0),
    "ch": (CHGate, 0),
    "cp": (CPhaseGate, 1),
    "cu1": (CPhaseGate, 1),
    "crx": (CRXGate, 1),
    "cry": (CRYGate, 1),
    "crz": (CRZGate, 1),
    "cu": (CUGate, 3),
    "cu3": (CUGate, 3),
    "swap": (SwapGate, 0),
    "iswap": (iSwapGate, 0),
    "ccx": (CCXGate, 0),
    "ccz": (CCZGate, 0),
    "cswap": (CSwapGate, 0),
}


def get_gate(name: str, params: Sequence[float] = ()) -> Gate:
    """Construct a standard gate by QASM name.

    Raises :class:`~repro.exceptions.CircuitError` for unknown names or a
    parameter-count mismatch.
    """
    key = name.lower()
    if key not in STANDARD_GATES:
        raise CircuitError(f"unknown gate {name!r}")
    cls, num_params = STANDARD_GATES[key]
    params = tuple(params)
    if len(params) != num_params:
        raise CircuitError(
            f"gate {name!r} expects {num_params} parameter(s), got {len(params)}"
        )
    return cls(*params)
