"""Circuit instructions: an operation bound to qubits, clbits and an optional
classical condition.

A *classical condition* is what turns an ordinary gate into a
classically-controlled operation — one of the three dynamic-circuit primitives
discussed in the paper (together with mid-circuit measurement and reset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.gates import Barrier, Gate, Measure, Operation, Reset
from repro.exceptions import CircuitError
from repro.utils.bits import int_to_bits

__all__ = ["ClassicalCondition", "Instruction"]


@dataclass(frozen=True)
class ClassicalCondition:
    """Condition ``clbits == value`` attached to an instruction.

    ``clbits`` are circuit-level classical bit indices, least significant
    first; ``value`` is the integer the bits must equal for the operation to
    be applied.
    """

    clbits: tuple[int, ...]
    value: int

    def __post_init__(self) -> None:
        if not self.clbits:
            raise CircuitError("a classical condition needs at least one classical bit")
        if len(set(self.clbits)) != len(self.clbits):
            raise CircuitError(f"duplicate classical bits in condition: {self.clbits}")
        if not 0 <= self.value < (1 << len(self.clbits)):
            raise CircuitError(
                f"condition value {self.value} out of range for {len(self.clbits)} bit(s)"
            )

    @property
    def bit_values(self) -> tuple[int, ...]:
        """Required value of each condition bit, aligned with ``clbits``."""
        return tuple(int_to_bits(self.value, len(self.clbits)))

    def is_satisfied(self, classical_values: Sequence[int]) -> bool:
        """Evaluate the condition against a full classical-bit assignment."""
        for clbit, required in zip(self.clbits, self.bit_values):
            if classical_values[clbit] != required:
                return False
        return True


class Instruction:
    """An operation applied to specific circuit qubits/clbits.

    Attributes
    ----------
    operation:
        The underlying :class:`~repro.circuit.gates.Operation`.
    qubits:
        Circuit-level qubit indices, in the operation's operand order.
    clbits:
        Circuit-level classical bit indices (only measurements use these).
    condition:
        Optional :class:`ClassicalCondition`; when present the operation is a
        classically-controlled operation.
    """

    __slots__ = ("operation", "qubits", "clbits", "condition")

    def __init__(
        self,
        operation: Operation,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
        condition: ClassicalCondition | None = None,
    ) -> None:
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if len(qubits) != operation.num_qubits:
            raise CircuitError(
                f"operation {operation.name!r} expects {operation.num_qubits} qubit(s), "
                f"got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits in instruction: {qubits}")
        if len(clbits) != operation.num_clbits:
            raise CircuitError(
                f"operation {operation.name!r} expects {operation.num_clbits} clbit(s), "
                f"got {len(clbits)}"
            )
        if condition is not None and not (operation.is_unitary or isinstance(operation, Reset)):
            # OpenQASM 2 allows ``if (c == v)`` on any quantum operation; of
            # the non-unitary primitives only the conditioned *reset* has
            # well-defined semantics here (measure-into-a-bit under a
            # condition on that very register is ill-specified).
            raise CircuitError(
                f"only unitary operations and resets may carry a classical "
                f"condition, got {operation.name!r}"
            )
        self.operation = operation
        self.qubits = qubits
        self.clbits = clbits
        self.condition = condition

    # -- classification helpers used throughout the core package ------------

    @property
    def is_gate(self) -> bool:
        """True if the underlying operation is a unitary gate."""
        return isinstance(self.operation, Gate)

    @property
    def is_measurement(self) -> bool:
        """True for measurement instructions."""
        return isinstance(self.operation, Measure)

    @property
    def is_reset(self) -> bool:
        """True for reset instructions."""
        return isinstance(self.operation, Reset)

    @property
    def is_barrier(self) -> bool:
        """True for barrier pseudo-instructions."""
        return isinstance(self.operation, Barrier)

    @property
    def is_classically_controlled(self) -> bool:
        """True if the instruction carries a classical condition."""
        return self.condition is not None

    @property
    def is_dynamic(self) -> bool:
        """True if this is one of the dynamic-circuit (non-unitary) primitives."""
        return self.is_measurement or self.is_reset or self.is_classically_controlled

    def replace(
        self,
        operation: Operation | None = None,
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
        condition: ClassicalCondition | None = None,
        *,
        drop_condition: bool = False,
    ) -> "Instruction":
        """Return a copy with selected fields replaced."""
        return Instruction(
            operation if operation is not None else self.operation,
            qubits if qubits is not None else self.qubits,
            clbits if clbits is not None else self.clbits,
            None if drop_condition else (condition if condition is not None else self.condition),
        )

    def __reduce__(self):
        # Rebuild through __init__ (instead of restoring raw slots) so that an
        # unpickled instruction has passed the same operand validation as one
        # built directly — important for circuits shipped to worker processes.
        return (Instruction, (self.operation, self.qubits, self.clbits, self.condition))

    def __repr__(self) -> str:
        parts = [f"{self.operation.name}", f"qubits={list(self.qubits)}"]
        if self.clbits:
            parts.append(f"clbits={list(self.clbits)}")
        if self.condition is not None:
            parts.append(f"if c{list(self.condition.clbits)}=={self.condition.value}")
        return f"Instruction({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.operation == other.operation
            and self.qubits == other.qubits
            and self.clbits == other.clbits
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.operation, self.qubits, self.clbits, self.condition))
