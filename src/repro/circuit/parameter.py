"""Minimal symbolic parameters for gate families.

Decomposition rules for parameterized gate families (``rz``, ``ry``, ``u``,
``p`` and their controlled forms) must be registered *once* in the
equivalence library and instantiated per concrete gate by substitution.  The
library's rules only ever need linear combinations of the formal angles —
``theta/2``, ``-(phi + lam)/2``, ``lam - phi`` — so a full symbolic algebra
system is unnecessary: a :class:`ParameterExpression` is a linear form

    ``sum(coefficient * parameter) + constant``

closed under addition, subtraction, negation and scalar multiplication /
division.  Anything beyond that (multiplying two expressions, transcendental
functions) raises ``TypeError`` — by design, not omission.

Identity is *by name*: two ``Parameter("theta")`` objects are the same
formal parameter.  This is what makes binding survive serialization — a
parameter that round-trips through pickle or QASM text reconstructs to an
object that still matches the keys callers bind with.

Example
-------
>>> theta, phi = Parameter("theta"), Parameter("phi")
>>> expr = theta / 2 - phi
>>> sorted(p.name for p in expr.parameters)
['phi', 'theta']
>>> expr.bind({"theta": 1.0, "phi": 0.25})
0.25
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["Parameter", "ParameterExpression"]

_SCALARS = (int, float)


def _rebuild_expression(terms, constant):
    """Pickle helper: rebuild an expression from ``((name, coeff), ...)``."""
    expression = ParameterExpression.__new__(ParameterExpression)
    expression._terms = tuple((Parameter(name), float(coeff)) for name, coeff in terms)
    expression._constant = float(constant)
    return expression


class ParameterExpression:
    """A linear combination of formal parameters plus a float constant.

    Instances are immutable.  Arithmetic that eliminates every free
    parameter returns a plain ``float``, so fully-bound values flow through
    gate constructors unchanged.
    """

    __slots__ = ("_terms", "_constant")

    def __init__(self, terms=(), constant=0.0):
        collected: dict[str, tuple[Parameter, float]] = {}
        for parameter, coefficient in terms:
            coefficient = float(coefficient)
            if parameter.name in collected:
                previous, existing = collected[parameter.name]
                coefficient += existing
                parameter = previous
            collected[parameter.name] = (parameter, coefficient)
        self._terms = tuple(
            (parameter, coefficient)
            for parameter, coefficient in (
                collected[name] for name in sorted(collected)
            )
            if coefficient != 0.0
        )
        self._constant = float(constant)

    # -- introspection -------------------------------------------------

    @property
    def parameters(self) -> frozenset[Parameter]:
        """The free parameters of this expression."""
        return frozenset(parameter for parameter, _ in self._terms)

    def bind(self, mapping: Mapping) -> "ParameterExpression | float":
        """Substitute values (or expressions) for parameters.

        ``mapping`` keys may be :class:`Parameter` objects or their names.
        Returns a plain ``float`` once no free parameters remain.
        """
        values: dict[str, object] = {}
        for key, value in mapping.items():
            name = key.name if isinstance(key, Parameter) else str(key)
            values[name] = value
        result: ParameterExpression | float = self._constant
        for parameter, coefficient in self._terms:
            if parameter.name in values:
                result = result + coefficient * values[parameter.name]
            else:
                result = result + ParameterExpression(((parameter, coefficient),))
        return result

    # -- arithmetic ----------------------------------------------------

    def _reduced(self) -> "ParameterExpression | float":
        if not self._terms:
            return self._constant
        return self

    def __add__(self, other):
        if isinstance(other, ParameterExpression):
            return ParameterExpression(
                self._terms + other._terms, self._constant + other._constant
            )._reduced()
        if isinstance(other, _SCALARS):
            return ParameterExpression(
                self._terms, self._constant + float(other)
            )._reduced()
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (ParameterExpression, *_SCALARS)):
            return self + (-other)
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, _SCALARS):
            return (-self) + other
        return NotImplemented

    def __neg__(self):
        return ParameterExpression(
            tuple((parameter, -coefficient) for parameter, coefficient in self._terms),
            -self._constant,
        )._reduced()

    def __mul__(self, other):
        if isinstance(other, _SCALARS):
            factor = float(other)
            if factor == 0.0:
                return 0.0
            return ParameterExpression(
                tuple(
                    (parameter, coefficient * factor)
                    for parameter, coefficient in self._terms
                ),
                self._constant * factor,
            )._reduced()
        if isinstance(other, ParameterExpression):
            raise TypeError(
                "products of parameter expressions are not supported; "
                "library rules only need linear forms"
            )
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, _SCALARS):
            return self * (1.0 / float(other))
        return NotImplemented

    # -- protocol ------------------------------------------------------

    def __float__(self) -> float:
        if self._terms:
            names = ", ".join(sorted(p.name for p in self.parameters))
            raise TypeError(
                f"cannot convert expression with free parameter(s) {names} to float"
            )
        return self._constant

    def __eq__(self, other) -> bool:
        if isinstance(other, ParameterExpression):
            return (
                tuple((p.name, c) for p, c in self._terms)
                == tuple((p.name, c) for p, c in other._terms)
                and self._constant == other._constant
            )
        if isinstance(other, _SCALARS):
            return not self._terms and self._constant == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (
                "ParameterExpression",
                tuple((p.name, c) for p, c in self._terms),
                self._constant,
            )
        )

    def __str__(self) -> str:
        # Eval-able form (see qasm._eval_param): "0.5*theta + -1.0*phi + 0.25".
        pieces = [
            f"{coefficient!r}*{parameter.name}"
            for parameter, coefficient in self._terms
        ]
        if self._constant != 0.0 or not pieces:
            pieces.append(repr(self._constant))
        return " + ".join(pieces)

    def __repr__(self) -> str:
        return f"ParameterExpression({self})"

    def __reduce__(self):
        return (
            _rebuild_expression,
            (
                tuple((p.name, c) for p, c in self._terms),
                self._constant,
            ),
        )


class Parameter(ParameterExpression):
    """A named formal parameter (the expression ``1.0 * self``)."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty string, got {name!r}")
        self._name = name
        super().__init__(((self, 1.0),))

    @property
    def name(self) -> str:
        return self._name

    def __str__(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"

    def __reduce__(self):
        return (Parameter, (self._name,))


def bind_value(value, mapping: Mapping):
    """Bind ``value`` if it is a parameter expression; pass through otherwise."""
    if isinstance(value, ParameterExpression):
        bound = value.bind(mapping)
        if isinstance(bound, ParameterExpression) and not bound.parameters:
            return float(bound)
        return bound
    return value


def is_symbolic(value) -> bool:
    """Whether ``value`` is an expression with at least one free parameter."""
    return isinstance(value, ParameterExpression) and bool(value.parameters)


def evaluate_if_bound(value):
    """Collapse a fully-bound expression to a float; pass anything else through."""
    if isinstance(value, ParameterExpression) and not value.parameters:
        return float(value)
    return value


# Re-exported for callers that need the helpers without the classes.
__all__ += ["bind_value", "evaluate_if_bound", "is_symbolic"]
