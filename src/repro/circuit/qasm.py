"""OpenQASM 2 export and import.

The exporter emits the dialect understood by most tools (``qelib1.inc`` gate
names, ``measure``, ``reset`` and ``if (creg == value)`` statements).  The
importer parses the same subset, which is sufficient to round-trip every
circuit this library generates, including dynamic circuits.
"""

from __future__ import annotations

import math
import re

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Barrier, ControlledGate, Gate, GlobalPhaseGate, get_gate
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import QasmError

__all__ = ["circuit_from_qasm", "circuit_to_qasm"]

_EXPORTABLE_NAMES = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "sxdg",
    "rx",
    "ry",
    "rz",
    "p",
    "u",
    "u2",
    "cx",
    "cy",
    "cz",
    "ch",
    "cp",
    "crx",
    "cry",
    "crz",
    "cu",
    "swap",
    "iswap",
    "ccx",
    "ccz",
    "cswap",
}


def _format_param(value) -> str:
    """Format an angle, preferring exact multiples of pi for readability.

    Symbolic :class:`~repro.circuit.parameter.ParameterExpression` values are
    emitted as their evaluable text form (``1.0*theta + 0.5``), which
    :func:`_eval_param` parses back into the identical expression.
    """
    from repro.circuit.parameter import ParameterExpression

    if isinstance(value, ParameterExpression):
        return str(value)
    if value == 0:
        return "0"
    for denominator in (1, 2, 3, 4, 6, 8, 16, 32):
        multiple = value * denominator / math.pi
        if abs(multiple - round(multiple)) < 1e-12 and round(multiple) != 0:
            numerator = int(round(multiple))
            if denominator == 1:
                return "pi" if numerator == 1 else f"{numerator}*pi"
            if numerator == 1:
                return f"pi/{denominator}"
            return f"{numerator}*pi/{denominator}"
    return repr(float(value))


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to an OpenQASM 2 string."""
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    qreg_of: dict[int, tuple[str, int]] = {}
    creg_of: dict[int, tuple[str, int]] = {}

    index = 0
    for reg in circuit.qregs:
        lines.append(f"qreg {reg.name}[{reg.size}];")
        for offset in range(reg.size):
            qreg_of[index] = (reg.name, offset)
            index += 1
    index = 0
    for reg in circuit.cregs:
        lines.append(f"creg {reg.name}[{reg.size}];")
        for offset in range(reg.size):
            creg_of[index] = (reg.name, offset)
            index += 1

    def qname(qubit: int) -> str:
        name, offset = qreg_of[qubit]
        return f"{name}[{offset}]"

    def cname(clbit: int) -> str:
        name, offset = creg_of[clbit]
        return f"{name}[{offset}]"

    for inst in circuit:
        op = inst.operation
        prefix = ""
        if inst.condition is not None:
            cond = inst.condition
            registers = {creg_of[c][0] for c in cond.clbits}
            if len(registers) != 1:
                raise QasmError(
                    "OpenQASM 2 conditions must address a single classical register, "
                    f"got bits from {sorted(registers)}"
                )
            register_name = registers.pop()
            register = next(r for r in circuit.cregs if r.name == register_name)
            offsets = [creg_of[c][1] for c in cond.clbits]
            if sorted(offsets) != list(range(register.size)):
                # OpenQASM 2 ``if`` compares a whole register; a condition on a
                # strict subset of its bits cannot be expressed faithfully.
                raise QasmError(
                    "OpenQASM 2 cannot express a condition on a subset of register "
                    f"{register_name!r}; use one classical register per condition bit"
                )
            value = 0
            for offset, bit in zip(offsets, cond.bit_values):
                value |= bit << offset
            prefix = f"if ({register_name} == {value}) "

        if isinstance(op, Barrier):
            operands = ", ".join(qname(q) for q in inst.qubits)
            lines.append(f"barrier {operands};")
            continue
        if op.name == "measure":
            lines.append(f"{prefix}measure {qname(inst.qubits[0])} -> {cname(inst.clbits[0])};")
            continue
        if op.name == "reset":
            lines.append(f"{prefix}reset {qname(inst.qubits[0])};")
            continue
        if isinstance(op, GlobalPhaseGate):
            # OpenQASM 2 has no global-phase statement; emit an equivalent
            # two-gate identity on qubit 0 when possible, otherwise drop it.
            if circuit.num_qubits > 0:
                phase = _format_param(op.phase)
                target = qname(0)
                lines.append(f"{prefix}p({phase}) {target};")
                lines.append(f"{prefix}x {target};")
                lines.append(f"{prefix}p({phase}) {target};")
                lines.append(f"{prefix}x {target};")
            continue

        name = op.name
        if name not in _EXPORTABLE_NAMES:
            if isinstance(op, Gate) and op.definition() is not None:
                for sub_gate, local_qubits in op.definition():
                    mapped = [qname(inst.qubits[lq]) for lq in local_qubits]
                    params = ""
                    if sub_gate.params:
                        params = "(" + ", ".join(_format_param(p) for p in sub_gate.params) + ")"
                    lines.append(f"{prefix}{sub_gate.name}{params} {', '.join(mapped)};")
                continue
            if isinstance(op, ControlledGate):
                raise QasmError(
                    f"gate {name!r} has no OpenQASM 2 representation; decompose it first"
                )
            raise QasmError(f"cannot export operation {name!r} to OpenQASM 2")

        params = ""
        if op.params:
            params = "(" + ", ".join(_format_param(p) for p in op.params) + ")"
        operands = ", ".join(qname(q) for q in inst.qubits)
        lines.append(f"{prefix}{name}{params} {operands};")

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Importer
# ---------------------------------------------------------------------------

_TOKEN_COMMENT = re.compile(r"//.*?$", re.MULTILINE)
_QREG = re.compile(r"^qreg\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$")
_CREG = re.compile(r"^creg\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$")
_IF = re.compile(r"^if\s*\(\s*([A-Za-z_]\w*)\s*==\s*(\d+)\s*\)\s*(.*)$")
_MEASURE = re.compile(
    r"^measure\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]\s*->\s*([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$"
)
_RESET = re.compile(r"^reset\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$")
_GATE = re.compile(r"^([A-Za-z_]\w*)\s*(\(([^)]*)\))?\s+(.*)$")
_OPERAND = re.compile(r"^([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]$")


def _eval_param(text: str):
    """Evaluate a parameter expression (numbers, ``pi``, + - * /, parentheses).

    Free identifiers other than ``pi`` become symbolic
    :class:`~repro.circuit.parameter.Parameter` objects, so parameterized
    QASM (as emitted by :func:`_format_param` for symbolic angles) round-trips
    into the identical :class:`ParameterExpression`.
    """
    stripped = text.strip()
    if not re.fullmatch(r"[\w+\-*/(). ]*", stripped):
        raise QasmError(f"unsupported parameter expression {text!r}")
    if re.search(r"\.\s*[A-Za-z_]", stripped):
        # Attribute access would escape the sandboxed eval below.
        raise QasmError(f"unsupported parameter expression {text!r}")
    names = set(re.findall(r"(?<![\w.])[A-Za-z_]\w*", stripped))
    names.discard("pi")
    env: dict[str, object] = {"pi": math.pi}
    if names:
        from repro.circuit.parameter import Parameter

        env.update({name: Parameter(name) for name in names})
    try:
        value = eval(stripped, {"__builtins__": {}}, env)  # noqa: S307 - sanitized
        return value if names else float(value)
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter expression {text!r}") from exc


def circuit_from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2 string into a :class:`QuantumCircuit`."""
    body = _TOKEN_COMMENT.sub("", text)
    statements = [s.strip() for s in body.replace("\n", " ").split(";")]
    statements = [s for s in statements if s]

    circuit = QuantumCircuit(name="from_qasm")
    qregs: dict[str, QuantumRegister] = {}
    cregs: dict[str, ClassicalRegister] = {}

    def qubit_index(name: str, offset: int) -> int:
        if name not in qregs:
            raise QasmError(f"unknown quantum register {name!r}")
        base = 0
        for reg in circuit.qregs:
            if reg.name == name:
                if offset >= reg.size:
                    raise QasmError(f"index {offset} out of range for qreg {name!r}")
                return base + offset
            base += reg.size
        raise QasmError(f"unknown quantum register {name!r}")  # pragma: no cover

    def clbit_index(name: str, offset: int) -> int:
        if name not in cregs:
            raise QasmError(f"unknown classical register {name!r}")
        base = 0
        for reg in circuit.cregs:
            if reg.name == name:
                if offset >= reg.size:
                    raise QasmError(f"index {offset} out of range for creg {name!r}")
                return base + offset
            base += reg.size
        raise QasmError(f"unknown classical register {name!r}")  # pragma: no cover

    for statement in statements:
        if statement.startswith("OPENQASM") or statement.startswith("include"):
            continue

        match = _QREG.match(statement)
        if match:
            name, size = match.group(1), int(match.group(2))
            register = QuantumRegister(size, name)
            qregs[name] = register
            circuit.add_register(register)
            continue

        match = _CREG.match(statement)
        if match:
            name, size = match.group(1), int(match.group(2))
            register = ClassicalRegister(size, name)
            cregs[name] = register
            circuit.add_register(register)
            continue

        condition = None
        match = _IF.match(statement)
        if match:
            register_name, value, statement = match.group(1), int(match.group(2)), match.group(3)
            if register_name not in cregs:
                raise QasmError(f"condition references unknown creg {register_name!r}")
            register = cregs[register_name]
            condition = (register, value)
            statement = statement.strip()

        match = _MEASURE.match(statement)
        if match:
            if condition is not None:
                # Silently dropping the condition would miscompile the circuit
                # into one that always measures.
                raise QasmError(
                    f"classically-conditioned measurement is not supported: {statement!r}"
                )
            q = qubit_index(match.group(1), int(match.group(2)))
            c = clbit_index(match.group(3), int(match.group(4)))
            circuit.measure(q, c)
            continue

        match = _RESET.match(statement)
        if match:
            q = qubit_index(match.group(1), int(match.group(2)))
            circuit.reset(q, condition=condition)
            continue

        match = _GATE.match(statement)
        if not match:
            raise QasmError(f"cannot parse statement {statement!r}")
        name = match.group(1)
        param_text = match.group(3)
        operand_text = match.group(4)

        operands = []
        for raw in operand_text.split(","):
            raw = raw.strip()
            operand_match = _OPERAND.match(raw)
            if not operand_match:
                raise QasmError(f"cannot parse operand {raw!r} in statement {statement!r}")
            operands.append(qubit_index(operand_match.group(1), int(operand_match.group(2))))

        if name == "barrier":
            circuit.barrier(*operands)
            continue

        params = []
        if param_text is not None and param_text.strip():
            params = [_eval_param(p) for p in param_text.split(",")]
        gate = get_gate(name, params)
        circuit.append(gate, operands, condition=condition)

    return circuit
