"""Random circuit generation.

Used by the property-based tests (random static circuits must round-trip
through QASM, the DD backend must agree with the dense backend, equivalence of
a circuit with a permuted-but-equal copy must be detected, ...) and by the
benchmark harness for stress workloads.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

__all__ = ["random_dynamic_circuit", "random_static_circuit"]

_SINGLE_QUBIT = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx")
_SINGLE_QUBIT_PARAM = ("rx", "ry", "rz", "p")
_TWO_QUBIT = ("cx", "cy", "cz", "ch", "swap")
_TWO_QUBIT_PARAM = ("cp", "crx", "cry", "crz")


def _apply_named(circuit: QuantumCircuit, name: str, qubits: Sequence[int], rng: random.Random):
    if name in _SINGLE_QUBIT:
        getattr(circuit, name)(qubits[0])
    elif name in _SINGLE_QUBIT_PARAM:
        getattr(circuit, name)(rng.uniform(-math.pi, math.pi), qubits[0])
    elif name in _TWO_QUBIT:
        getattr(circuit, name)(qubits[0], qubits[1])
    elif name in _TWO_QUBIT_PARAM:
        getattr(circuit, name)(rng.uniform(-math.pi, math.pi), qubits[0], qubits[1])
    else:  # pragma: no cover - defensive
        raise CircuitError(f"unknown random gate name {name!r}")


def random_static_circuit(
    num_qubits: int,
    depth: int,
    seed: int | None = None,
    *,
    measure: bool = False,
    two_qubit_probability: float = 0.4,
) -> QuantumCircuit:
    """Generate a random unitary circuit (optionally with final measurements).

    Parameters
    ----------
    num_qubits:
        Number of qubits (>= 1).
    depth:
        Number of gate layers; each layer applies roughly one gate per qubit.
    seed:
        Seed for reproducibility.
    measure:
        If true, append a full measurement layer (requires classical bits).
    two_qubit_probability:
        Probability of choosing a two-qubit gate when at least two qubits are
        still free in the current layer.
    """
    if num_qubits < 1:
        raise CircuitError("random circuits need at least one qubit")
    if depth < 0:
        raise CircuitError("depth must be non-negative")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0, name="random")
    for _ in range(depth):
        free = list(range(num_qubits))
        rng.shuffle(free)
        while free:
            if len(free) >= 2 and rng.random() < two_qubit_probability:
                a, b = free.pop(), free.pop()
                name = rng.choice(_TWO_QUBIT + _TWO_QUBIT_PARAM)
                _apply_named(circuit, name, (a, b), rng)
            else:
                a = free.pop()
                name = rng.choice(_SINGLE_QUBIT + _SINGLE_QUBIT_PARAM)
                _apply_named(circuit, name, (a,), rng)
    if measure:
        circuit.measure_all()
    return circuit


def random_dynamic_circuit(
    num_qubits: int,
    depth: int,
    seed: int | None = None,
    *,
    num_measurements: int = 2,
    reset_probability: float = 0.5,
    conditional_probability: float = 0.5,
) -> QuantumCircuit:
    """Generate a random *dynamic* circuit.

    The circuit interleaves random unitary blocks with mid-circuit
    measurements; every measured qubit is reset afterwards (so that it can be
    re-used, exactly the situation Scheme 1 of the paper handles) and
    subsequent single-qubit gates may be conditioned on the measurement
    outcome.  With probability ``reset_probability`` an *additional*
    standalone reset of a random qubit is inserted after each round.  Used to
    stress-test the transformation and extraction schemes on circuits without
    any algorithmic structure.
    """
    if num_measurements < 1:
        raise CircuitError("a dynamic circuit needs at least one measurement")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, num_measurements, name="random_dynamic")
    block_depth = max(1, depth // (num_measurements + 1))

    def random_block() -> None:
        for _ in range(block_depth):
            qubits = list(range(num_qubits))
            rng.shuffle(qubits)
            if len(qubits) >= 2 and rng.random() < 0.4:
                name = rng.choice(_TWO_QUBIT + _TWO_QUBIT_PARAM)
                _apply_named(circuit, name, qubits[:2], rng)
            else:
                name = rng.choice(_SINGLE_QUBIT + _SINGLE_QUBIT_PARAM)
                _apply_named(circuit, name, qubits[:1], rng)

    for measurement in range(num_measurements):
        random_block()
        measured_qubit = rng.randrange(num_qubits)
        circuit.measure(measured_qubit, measurement)
        circuit.reset(measured_qubit)
        if rng.random() < reset_probability:
            circuit.reset(rng.randrange(num_qubits))
        if rng.random() < conditional_probability:
            target = rng.randrange(num_qubits)
            name = rng.choice(_SINGLE_QUBIT + _SINGLE_QUBIT_PARAM)
            if name in _SINGLE_QUBIT:
                getattr(circuit, name)(target, condition=(measurement, 1))
            else:
                getattr(circuit, name)(
                    rng.uniform(-math.pi, math.pi), target, condition=(measurement, 1)
                )
    random_block()
    return circuit
