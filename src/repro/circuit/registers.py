"""Quantum and classical registers.

A :class:`QuantumCircuit` owns a flat list of qubits and classical bits; the
register classes group them under a name (mirroring OpenQASM 2 semantics) so
circuits can be exported to and imported from QASM without losing structure.
Bit index 0 of a register is its least-significant bit.
"""

from __future__ import annotations

from repro.exceptions import CircuitError

__all__ = ["Clbit", "ClassicalRegister", "QuantumRegister", "Qubit"]


def _bit_from_register(register: "_Register", index: int) -> "_Bit":
    """Pickle helper: resolve a bit through its (unpickled) register.

    Bits compare and hash by register *identity*, so an unpickled bit must be
    the very object stored in its register's bit tuple — a freshly constructed
    ``_Bit(register, index)`` would be equal to no circuit-held bit.
    """
    return register[index]


class _Bit:
    """A single bit belonging to a register."""

    __slots__ = ("register", "index")

    def __init__(self, register: "_Register", index: int) -> None:
        if not 0 <= index < register.size:
            raise CircuitError(
                f"bit index {index} out of range for register {register.name!r} "
                f"of size {register.size}"
            )
        self.register = register
        self.index = index

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.register.name!r}, {self.index})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self.register is other.register and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.register), self.index, type(self).__name__))

    def __reduce__(self):
        return (_bit_from_register, (self.register, self.index))


class Qubit(_Bit):
    """A single qubit of a :class:`QuantumRegister`."""


class Clbit(_Bit):
    """A single classical bit of a :class:`ClassicalRegister`."""


class _Register:
    """Common behaviour of quantum and classical registers."""

    _bit_type: type[_Bit] = _Bit
    _prefix = "reg"
    _counter = 0

    def __init__(self, size: int, name: str | None = None) -> None:
        if size < 0:
            raise CircuitError(f"register size must be non-negative, got {size}")
        if name is None:
            name = f"{self._prefix}{type(self)._counter}"
            type(self)._counter += 1
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise CircuitError(f"invalid register name {name!r}")
        self._name = name
        self._size = size
        self._bits = tuple(self._bit_type(self, i) for i in range(size))

    @property
    def name(self) -> str:
        """Register name (used as the QASM identifier)."""
        return self._name

    @property
    def size(self) -> int:
        """Number of bits in the register."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._bits[index])
        return self._bits[index]

    def __iter__(self):
        return iter(self._bits)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._size}, {self._name!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __reduce__(self):
        # Reconstruct through __init__ so the register owns a fresh, internally
        # consistent bit tuple; pickle's memo keeps one unpickled register per
        # pickled register, preserving identity-based equality within (and
        # across) the circuits of a single payload.
        return (type(self), (self._size, self._name))


class QuantumRegister(_Register):
    """A named group of qubits."""

    _bit_type = Qubit
    _prefix = "q"
    _counter = 0


class ClassicalRegister(_Register):
    """A named group of classical bits."""

    _bit_type = Clbit
    _prefix = "c"
    _counter = 0
