"""Command-line interface.

Mirrors the way the original QCEC tool is used from the shell: point it at two
OpenQASM files and get an equivalence verdict, or extract the measurement
outcome distribution of a single (dynamic) circuit.

Usage (after ``pip install -e .``)::

    repro-qcec verify static.qasm dynamic.qasm --method alternating --strategy proportional
    repro-qcec verify static.qasm dynamic.qasm --portfolio simulation,alternating
    repro-qcec verify static.qasm dynamic.qasm --scheduler adaptive
    repro-qcec batch manifest.txt --max-workers 8 --scheduler adaptive --json
    repro-qcec batch manifest.txt --executor process --chunk-size 4 --max-workers 8
    repro-qcec batch manifest.txt --cache-path verdicts.jsonl      # warm re-runs
    repro-qcec serve --port 8111 --cache-path verdicts.jsonl       # job-queue server
    repro-qcec verify-behaviour static.qasm dynamic.qasm
    repro-qcec extract dynamic.qasm --backend dd
    repro-qcec show circuit.qasm
    repro-qcec verify a.qasm b.qasm --json > out.json && repro-qcec trace out.json
    repro-qcec telemetry summarize runs.telemetry.jsonl
    repro-qcec --version

or equivalently ``python -m repro.cli ...``.

Every command accepts ``--log-level``/``--log-file`` (JSON-lines structured
logs on stderr or to a file); ``verify``, ``batch`` and ``serve`` accept
``--telemetry PATH`` to append one journal record per settled run.

The ``batch`` manifest is a text file with one circuit pair per line (two
whitespace-separated QASM paths, relative paths resolved against the manifest's
directory; blank lines and ``#`` comments are ignored), or a JSON array of
``[first, second]`` pairs.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro import __version__
from repro.circuit import QuantumCircuit, circuit_from_qasm
from repro.core import (
    BatchEntry,
    BatchResult,
    Configuration,
    EquivalenceCheckingManager,
    EquivalenceCriterion,
    available_checkers,
    available_schedulers,
    check_behavioural_equivalence,
    check_equivalence,
    extract_distribution,
)
from repro.exceptions import ReproError
from repro.obs import trace
from repro.obs.logs import configure_logging

__all__ = ["build_parser", "main"]


def _load_circuit(path: str) -> QuantumCircuit:
    text = Path(path).read_text(encoding="utf-8")
    circuit = circuit_from_qasm(text)
    circuit.name = Path(path).stem
    return circuit


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-qcec",
        description="Equivalence checking of (dynamic) quantum circuits given as OpenQASM 2 files.",
    )
    # Single-sourced from repro.__version__ (setup.py reads the same string)
    # so deployed servers and clients can be version-checked.
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Structured-logging options shared by every subcommand.  Logs go to
    # stderr (or --log-file) as JSON lines, keeping stdout payloads clean.
    logging_options = argparse.ArgumentParser(add_help=False)
    logging_options.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="emit JSON-lines structured logs at this level (default: off)",
    )
    logging_options.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append structured logs to this file instead of stderr "
        "(implies --log-level info unless given)",
    )

    verify = subparsers.add_parser(
        "verify",
        help="full functional verification (Scheme 1 for dynamic circuits)",
        parents=[logging_options],
    )
    verify.add_argument("first", help="OpenQASM 2 file of the first circuit")
    verify.add_argument("second", help="OpenQASM 2 file of the second circuit")
    # Checker and scheduler names come from the live registries, so
    # registered third-party plugins are selectable without touching the CLI.
    verify.add_argument(
        "--method", default="alternating", choices=list(available_checkers())
    )
    verify.add_argument(
        "--strategy", default="proportional", choices=["naive", "one_to_one", "proportional", "lookahead"]
    )
    verify.add_argument("--backend", default="dd", choices=["dd", "dense"])
    verify.add_argument("--tolerance", type=float, default=1e-7)
    verify.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed of the simulative stimuli (fixed seeds make verdicts cacheable)",
    )
    verify.add_argument(
        "--dense-cutoff",
        type=int,
        default=0,
        metavar="K",
        help=(
            "evaluate DD subtrees below level K as dense numpy blocks "
            "(hybrid kernels; 0 disables)"
        ),
    )
    verify.add_argument(
        "--portfolio",
        default=None,
        metavar="CHECKERS",
        help=(
            "run a comma-separated portfolio of checkers with early termination "
            "instead of a single --method (e.g. 'simulation,alternating')"
        ),
    )
    verify.add_argument(
        "--scheduler",
        default="static",
        choices=list(available_schedulers()),
        help=(
            "portfolio scheduling policy: 'static' runs the portfolio in the "
            "given order, 'adaptive' orders checkers and splits budgets from "
            "circuit features (implies a portfolio run; the default line-up "
            "is used when --portfolio is not given)"
        ),
    )
    verify.add_argument(
        "--timeout", type=float, default=None, help="overall portfolio budget in seconds"
    )
    verify.add_argument(
        "--checker-timeout", type=float, default=None, help="per-checker budget in seconds"
    )
    verify.add_argument(
        "--canonicalize",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "consult the translation-level-invariant canonical fingerprint on "
            "verdict-cache lookups so verdicts are shared across translation "
            "levels (default: on; --no-canonicalize restricts the cache to "
            "raw structural fingerprints)"
        ),
    )
    verify.add_argument(
        "--verdict-cache",
        action="store_true",
        help="consult the verdict cache before scheduling checkers",
    )
    verify.add_argument(
        "--cache-path",
        default=None,
        metavar="PATH",
        help=(
            "persistent JSON-lines tier of the verdict cache (implies "
            "--verdict-cache; verdicts survive across invocations)"
        ),
    )
    verify.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append one run-telemetry journal record per settled run",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="print the result as JSON (includes the span tree of the run "
        "under 'trace' for portfolio runs)",
    )

    batch = subparsers.add_parser(
        "batch",
        help="verify many circuit pairs concurrently from a manifest file",
        parents=[logging_options],
    )
    batch.add_argument(
        "manifest",
        help="text file with 'first.qasm second.qasm' per line, or a JSON array of pairs",
    )
    batch.add_argument(
        "--portfolio",
        default=None,
        metavar="CHECKERS",
        help="comma-separated checkers (default: simulation,alternating)",
    )
    batch.add_argument(
        "--strategy", default="proportional", choices=["naive", "one_to_one", "proportional", "lookahead"]
    )
    batch.add_argument("--backend", default="dd", choices=["dd", "dense"])
    batch.add_argument("--tolerance", type=float, default=1e-7)
    batch.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "seed of the simulative stimuli; without it, unseeded "
            "PROBABLY_EQUIVALENT verdicts are never persisted to --cache-path "
            "(fresh stimuli could still falsify them)"
        ),
    )
    batch.add_argument(
        "--dense-cutoff",
        type=int,
        default=0,
        metavar="K",
        help="hybrid dense-subtree cutoff of the DD kernels (0 disables)",
    )
    batch.add_argument(
        "--scheduler",
        default="static",
        choices=list(available_schedulers()),
        help="portfolio scheduling policy (see 'verify --scheduler')",
    )
    batch.add_argument("--max-workers", type=int, default=4)
    batch.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help=(
            "run pairs on a thread pool (default) or on a process pool; the DD "
            "checkers are CPU-bound pure Python, so processes scale with cores "
            "where threads are GIL-bound"
        ),
    )
    batch.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        metavar="N",
        help="circuit pairs per process work unit (amortizes pickling overhead)",
    )
    batch.add_argument(
        "--gate-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="bound the per-package gate-DD cache (LRU eviction; default unbounded)",
    )
    batch.add_argument("--timeout", type=float, default=None, help="overall budget per pair in seconds")
    batch.add_argument(
        "--checker-timeout", type=float, default=None, help="per-checker budget in seconds"
    )
    batch.add_argument(
        "--verdict-cache",
        action="store_true",
        help=(
            "consult the verdict cache before scheduling checkers and dedupe "
            "identical pairs within the batch (each distinct pair runs once)"
        ),
    )
    batch.add_argument(
        "--cache-path",
        default=None,
        metavar="PATH",
        help=(
            "persistent JSON-lines tier of the verdict cache (implies "
            "--verdict-cache; verdicts survive across invocations)"
        ),
    )
    batch.add_argument(
        "--canonicalize",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "consult the translation-level-invariant canonical fingerprint on "
            "verdict-cache lookups (default: on; see 'verify --canonicalize')"
        ),
    )
    batch.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append one run-telemetry journal record per settled run",
    )
    batch.add_argument("--json", action="store_true")

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP verification job-queue server (submit/status/result/stats)",
        parents=[logging_options],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8111, help="listen port (0 binds an ephemeral port)"
    )
    serve.add_argument(
        "--portfolio",
        default=None,
        metavar="CHECKERS",
        help="comma-separated checkers (default: simulation,alternating)",
    )
    serve.add_argument(
        "--scheduler",
        default="adaptive",
        choices=list(available_schedulers()),
        help="portfolio scheduling policy (adaptive by default for mixed traffic)",
    )
    serve.add_argument("--max-workers", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0, help="stimuli seed (fixed so identical submissions are cacheable)")
    serve.add_argument("--tolerance", type=float, default=1e-7)
    serve.add_argument("--timeout", type=float, default=None, help="overall budget per job in seconds")
    serve.add_argument(
        "--checker-timeout", type=float, default=None, help="per-checker budget in seconds"
    )
    serve.add_argument(
        "--cache-path",
        default=None,
        metavar="PATH",
        help="persistent JSON-lines verdict cache (verdicts survive restarts)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="N",
        help="LRU bound of the in-memory verdict-cache tier",
    )
    serve.add_argument(
        "--gate-cache-size",
        type=int,
        default=256,
        metavar="N",
        help="bound the per-package gate-DD caches (long-lived workers)",
    )
    serve.add_argument(
        "--gate-cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire memoized gate DDs older than this (lazy, on lookup)",
    )
    serve.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "async"),
        help="HTTP front end: thread-per-request or single-event-loop asyncio",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="reject (429 + Retry-After) once N jobs are unsettled "
        "(async backend default: 16*workers; thread backend default: unbounded)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="PER_SECOND",
        help="per-client token-bucket submission rate (async backend only)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        metavar="N",
        help="token-bucket burst size (default: max(2, 2*rate))",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="run every submission fresh instead of serving cached verdicts",
    )
    serve.add_argument(
        "--max-finished-jobs",
        type=int,
        default=1024,
        metavar="N",
        help="settled jobs kept pollable before pruning (pruned verdicts are "
        "still served from the cache when possible)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM, stop accepting (503 + Retry-After) and finish "
        "in-flight jobs for up to this long before exiting (0 disables)",
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append one run-telemetry journal record per settled run "
        "(summaries appear under 'telemetry' in GET /stats)",
    )

    behaviour = subparsers.add_parser(
        "verify-behaviour",
        help="compare measurement-outcome distributions for the |0...0> input (Scheme 2)",
        parents=[logging_options],
    )
    behaviour.add_argument("first")
    behaviour.add_argument("second")
    behaviour.add_argument("--backend", default="statevector", choices=["statevector", "dd"])
    behaviour.add_argument("--tolerance", type=float, default=1e-7)
    behaviour.add_argument("--json", action="store_true")

    extract = subparsers.add_parser(
        "extract",
        help="extract the measurement-outcome distribution of one circuit",
        parents=[logging_options],
    )
    extract.add_argument("circuit")
    extract.add_argument("--backend", default="statevector", choices=["statevector", "dd"])
    extract.add_argument("--initial-state", default=None, help="bitstring input state (default |0...0>)")
    extract.add_argument("--json", action="store_true")

    show = subparsers.add_parser(
        "show",
        help="print a summary and drawing of a circuit",
        parents=[logging_options],
    )
    show.add_argument("circuit")

    trace_cmd = subparsers.add_parser(
        "trace",
        help="convert recorded spans to Chrome trace-event JSON "
        "(chrome://tracing, https://ui.perfetto.dev)",
        parents=[logging_options],
    )
    trace_cmd.add_argument(
        "file",
        help="JSON file: 'verify --json' output, a GET /jobs/<id>/trace "
        "payload, or a raw span list",
    )
    trace_cmd.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="write the trace-event JSON here (default: stdout)",
    )

    telemetry = subparsers.add_parser(
        "telemetry",
        help="inspect a run-telemetry journal written via --telemetry",
        parents=[logging_options],
    )
    telemetry.add_argument("action", choices=["summarize"])
    telemetry.add_argument("path", help="telemetry journal file")
    telemetry.add_argument("--json", action="store_true")
    return parser


def _parse_portfolio(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _load_manifest(path: str) -> list[tuple[Path, Path]]:
    """Read a batch manifest: whitespace-separated pairs or a JSON array."""
    manifest = Path(path)
    text = manifest.read_text(encoding="utf-8")
    base = manifest.parent
    pairs: list[tuple[Path, Path]] = []
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            entries = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"manifest {path!r} is not valid JSON: {error}") from error
        for position, entry in enumerate(entries):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ReproError(
                    f"manifest entry {position} must be a [first, second] pair, "
                    f"got {entry!r}"
                )
            pairs.append((base / str(entry[0]), base / str(entry[1])))
    else:
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ReproError(
                    f"manifest line {lineno} must name exactly two QASM files, got {line!r}"
                )
            pairs.append((base / parts[0], base / parts[1]))
    if not pairs:
        raise ReproError(f"manifest {path!r} names no circuit pairs")
    return pairs


def _portfolio_payload(name_first: str, name_second: str, result) -> dict:
    # The payload itself lives on PortfolioResult.to_json (shared with the
    # job-queue server); the CLI only adds the operand names.
    return {"first": name_first, "second": name_second, **result.to_json()}


def _command_verify(args: argparse.Namespace) -> int:
    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    configuration = Configuration(
        method=args.method,
        strategy=args.strategy,
        backend=args.backend,
        tolerance=args.tolerance,
        seed=args.seed,
        dense_cutoff=args.dense_cutoff,
        portfolio=_parse_portfolio(args.portfolio),
        scheduler=args.scheduler,
        timeout=args.timeout,
        checker_timeout=args.checker_timeout,
        verdict_cache=args.verdict_cache,
        cache_path=args.cache_path,
        canonicalize=True if args.canonicalize is None else args.canonicalize,
        telemetry_path=args.telemetry,
    )
    if configuration.cache_enabled:
        # Cache consultation happens in the manager; route through it.
        if args.portfolio is None and args.method != "alternating":
            configuration = configuration.updated(portfolio=(args.method,))
        return _verify_with_portfolio(first, second, configuration, args)
    if args.portfolio is not None or args.scheduler != "static":
        # An explicit portfolio, or any non-static scheduling policy, runs
        # through the manager.  Without --portfolio the scheduler orders the
        # default line-up — unless the user explicitly picked a --method, in
        # which case that single checker is the portfolio (an explicit
        # --method is never silently replaced by the default line-up).
        if args.portfolio is None and args.method != "alternating":
            configuration = configuration.updated(portfolio=(args.method,))
        return _verify_with_portfolio(first, second, configuration, args)
    if (
        args.timeout is not None
        or args.checker_timeout is not None
        or args.telemetry is not None
    ):
        # Timeouts and run telemetry are enforced by the manager; run the
        # single method as a one-checker portfolio so they actually apply.
        configuration = configuration.updated(portfolio=(args.method,))
        return _verify_with_portfolio(first, second, configuration, args)
    result = check_equivalence(first, second, configuration)
    if args.json:
        print(
            json.dumps(
                {
                    "criterion": result.criterion.value,
                    "equivalent": result.equivalent,
                    "method": result.method,
                    "strategy": result.strategy,
                    "backend": result.backend,
                    "time_transformation": result.time_transformation,
                    "time_check": result.time_check,
                }
            )
        )
    else:
        print(f"{first.name} vs {second.name}: {result.criterion.value}")
        print(
            f"  method={result.method} strategy={result.strategy} backend={result.backend} "
            f"t_trans={result.time_transformation:.6f}s t_ver={result.time_check:.6f}s"
        )
    return 0 if result.equivalent else 1


def _verify_with_portfolio(first, second, configuration: Configuration, args) -> int:
    manager = EquivalenceCheckingManager(configuration)
    tracer = trace.Tracer()
    with trace.activate(tracer):
        result = manager.run(first, second)
    if args.json:
        payload = _portfolio_payload(first.name, second.name, result)
        payload["trace"] = {"trace_id": tracer.trace_id, "tree": tracer.tree()}
        print(json.dumps(payload))
    else:
        print(f"{first.name} vs {second.name}: {result.criterion.value}")
        print(
            f"  scheduler={result.scheduler} schedule={','.join(result.schedule)} "
            f"decided_by={result.decided_by}"
        )
        if result.cached:
            print(f"  served from cache (via {result.cached_via})")
        print(f"  {result.reason}")
        for attempt in result.attempts:
            verdict = attempt.result.criterion.value if attempt.result else "-"
            print(
                f"  [{attempt.status}] {attempt.method}: {verdict} "
                f"t={attempt.time_taken:.6f}s"
            )
    if result.criterion is EquivalenceCriterion.NO_INFORMATION:
        # No checker produced a verdict (errors/timeouts) — that is a failed
        # check, not a non-equivalence finding.
        print(f"error: {result.reason}", file=sys.stderr)
        return 2
    return 0 if result.equivalent else 1


def _command_batch(args: argparse.Namespace) -> int:
    pairs_paths = _load_manifest(args.manifest)
    # Load per pair so that one unreadable/malformed QASM file is recorded as
    # a failed entry instead of aborting the whole batch.
    circuits: list[tuple[QuantumCircuit, QuantumCircuit]] = []
    load_failures: dict[int, BatchEntry] = {}
    for index, (first_path, second_path) in enumerate(pairs_paths):
        try:
            circuits.append((_load_circuit(str(first_path)), _load_circuit(str(second_path))))
        except (ReproError, OSError) as error:
            load_failures[index] = BatchEntry(
                index=index,
                name_first=first_path.stem,
                name_second=second_path.stem,
                error=f"{type(error).__name__}: {error}",
            )
    configuration = Configuration(
        strategy=args.strategy,
        backend=args.backend,
        tolerance=args.tolerance,
        seed=args.seed,
        dense_cutoff=args.dense_cutoff,
        portfolio=_parse_portfolio(args.portfolio),
        scheduler=args.scheduler,
        timeout=args.timeout,
        checker_timeout=args.checker_timeout,
        max_workers=args.max_workers,
        executor=args.executor,
        batch_chunk_size=args.chunk_size,
        gate_cache_size=args.gate_cache_size,
        verdict_cache=args.verdict_cache,
        cache_path=args.cache_path,
        canonicalize=True if args.canonicalize is None else args.canonicalize,
        telemetry_path=args.telemetry,
    )
    manager = EquivalenceCheckingManager(configuration)
    batch = manager.verify_batch(circuits)
    if load_failures:
        merged: list[BatchEntry] = []
        verified = iter(batch.entries)
        for index in range(len(pairs_paths)):
            if index in load_failures:
                merged.append(load_failures[index])
            else:
                entry = next(verified)
                entry.index = index
                merged.append(entry)
        batch = BatchResult(
            entries=merged,
            total_time=batch.total_time,
            max_workers=batch.max_workers,
            executor=batch.executor,
        )
    cache_stats = (
        manager.verdict_cache.statistics() if manager.verdict_cache is not None else None
    )
    if args.json:
        payload = batch.summary()
        payload["cache"] = cache_stats
        payload["entries"] = [
            {
                "index": entry.index,
                "first": entry.name_first,
                "second": entry.name_second,
                "criterion": entry.result.criterion.value if entry.result else None,
                "equivalent": entry.equivalent,
                "decided_by": entry.result.decided_by if entry.result else None,
                "scheduler": entry.result.scheduler if entry.result else None,
                "schedule": entry.result.schedule if entry.result else None,
                "cached": entry.result.cached if entry.result else None,
                "cached_via": entry.result.cached_via if entry.result else None,
                "checkers": (
                    [attempt.to_json() for attempt in entry.result.attempts]
                    if entry.result
                    else None
                ),
                "error": entry.error,
                "time": entry.time_taken,
            }
            for entry in batch.entries
        ]
        print(json.dumps(payload))
    else:
        for entry in batch.entries:
            if entry.result is not None:
                verdict = entry.result.criterion.value
                extra = f"decided_by={entry.result.decided_by}"
            else:
                verdict = "failed"
                extra = entry.error or ""
            print(
                f"[{entry.index}] {entry.name_first} vs {entry.name_second}: "
                f"{verdict} t={entry.time_taken:.6f}s {extra}".rstrip()
            )
        print(
            f"batch: {batch.num_equivalent}/{batch.num_pairs} equivalent, "
            f"{batch.num_failed} failed, t={batch.total_time:.6f}s "
            f"(workers={batch.max_workers}, executor={batch.executor})"
        )
        if cache_stats is not None:
            print(
                f"cache: {cache_stats['hits']} hits, {cache_stats['misses']} misses, "
                f"{cache_stats['stores']} stores, "
                f"{cache_stats['persistent_entries']} persisted"
            )
    if not batch.any_verdict:
        # Mirror `verify`: every pair failed or stayed undecided, so nothing
        # was actually checked — that is a failed run (2), not a
        # non-equivalence finding (1).
        print(
            f"error: no pair produced a verdict ({batch.num_failed}/{batch.num_pairs} "
            "failed or undecided)",
            file=sys.stderr,
        )
        return 2
    return 0 if batch.all_equivalent else 1


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so plain verify/batch invocations never pay for the
    # service layer.
    from repro.service.aserver import AsyncVerificationServer
    from repro.service.server import VerificationServer

    use_cache = not args.no_cache
    configuration = Configuration(
        portfolio=_parse_portfolio(args.portfolio),
        scheduler=args.scheduler,
        max_workers=args.max_workers,
        seed=args.seed,
        tolerance=args.tolerance,
        timeout=args.timeout,
        checker_timeout=args.checker_timeout,
        verdict_cache=use_cache,
        cache_path=args.cache_path if use_cache else None,
        cache_size=args.cache_size,
        gate_cache_size=args.gate_cache_size,
        gate_cache_ttl=args.gate_cache_ttl,
        telemetry_path=args.telemetry,
    )
    if args.backend == "async":
        server = AsyncVerificationServer(
            host=args.host,
            port=args.port,
            configuration=configuration,
            cache=use_cache,
            max_finished_jobs=args.max_finished_jobs,
            queue_limit=args.queue_limit if args.queue_limit is not None else "auto",
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
        )
        thread = server.start_background()
    else:
        if args.rate_limit is not None or args.rate_burst is not None:
            print(
                "warning: --rate-limit/--rate-burst only apply to --backend async",
                file=sys.stderr,
            )
        server = VerificationServer(
            host=args.host,
            port=args.port,
            configuration=configuration,
            cache=use_cache,
            max_finished_jobs=args.max_finished_jobs,
            queue_limit=args.queue_limit,
        )
        thread = None
    cache = (args.cache_path or "in-memory") if use_cache else "disabled"
    queue_limit = server.service.queue_limit
    print(
        f"repro-qcec {__version__} serving on {server.url} "
        f"(backend={args.backend}, workers={args.max_workers}, "
        f"scheduler={args.scheduler}, cache={cache}, "
        f"queue_limit={queue_limit if queue_limit is not None else 'unbounded'})",
        flush=True,
    )
    # SIGTERM (the orchestrator's "please stop") drains gracefully: new
    # submissions get 503 + Retry-After while in-flight jobs finish and the
    # verdict journal is flushed.  Ctrl-C stays an immediate shutdown.
    class _Terminated(Exception):
        pass

    def _on_sigterm(signum, frame):
        raise _Terminated

    previous_handler = None
    try:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use); skip the handler
    drain_timeout = 0.0
    try:
        if thread is not None:
            thread.join()
        else:
            server.serve_forever()
    except _Terminated:
        drain_timeout = max(0.0, args.drain_timeout)
        print(
            f"SIGTERM: draining in-flight jobs (up to {drain_timeout:g}s)",
            file=sys.stderr,
        )
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.close(drain_timeout=drain_timeout)
    return 0


def _command_verify_behaviour(args: argparse.Namespace) -> int:
    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    result = check_behavioural_equivalence(
        first, second, backend=args.backend, tolerance=args.tolerance
    )
    if args.json:
        print(
            json.dumps(
                {
                    "criterion": result.criterion.value,
                    "equivalent": result.equivalent,
                    "total_variation_distance": result.details["total_variation_distance"],
                    "classical_fidelity": result.details["classical_fidelity"],
                }
            )
        )
    else:
        print(f"{first.name} vs {second.name}: {result.criterion.value}")
        print(
            f"  TVD={result.details['total_variation_distance']:.3e} "
            f"fidelity={result.details['classical_fidelity']:.6f}"
        )
    return 0 if result.equivalent else 1


def _command_extract(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    result = extract_distribution(circuit, args.initial_state, backend=args.backend)
    if args.json:
        print(
            json.dumps(
                {
                    "distribution": result.distribution,
                    "num_paths": result.num_paths,
                    "backend": result.backend,
                    "time": result.time_taken,
                }
            )
        )
    else:
        print(f"{circuit.name}: {result.num_paths} path(s), t_extract={result.time_taken:.6f}s")
        for outcome in sorted(result.distribution):
            print(f"  |{outcome}> : {result.distribution[outcome]:.6f}")
    return 0


def _command_show(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    print(circuit.summary())
    print(circuit.draw())
    return 0


def _flatten_span_nodes(nodes: list) -> list[dict]:
    """Flatten ``span_tree`` nodes (or already-flat span dicts) to a list."""
    flat: list[dict] = []
    for node in nodes:
        if not isinstance(node, dict):
            continue
        flat.append({key: value for key, value in node.items() if key != "children"})
        children = node.get("children")
        if isinstance(children, list):
            flat.extend(_flatten_span_nodes(children))
    return flat


def _extract_spans(payload) -> list[dict]:
    """Spans from any supported trace container (see the ``trace`` command)."""
    if isinstance(payload, list):
        return _flatten_span_nodes(payload)
    if isinstance(payload, dict):
        for key in ("trace", "tree", "spans"):
            value = payload.get(key)
            if isinstance(value, dict):
                # 'verify --json' nests {"trace_id": ..., "tree": [...]}.
                inner = value.get("tree")
                if isinstance(inner, list):
                    return _flatten_span_nodes(inner)
            if isinstance(value, list):
                return _flatten_span_nodes(value)
    return []


def _command_trace(args: argparse.Namespace) -> int:
    try:
        payload = json.loads(Path(args.file).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        print(f"error: {args.file!r} is not valid JSON: {error}", file=sys.stderr)
        return 2
    spans = _extract_spans(payload)
    if not spans:
        print(
            f"error: no spans found in {args.file!r} (expected 'verify --json' "
            "output, a /jobs/<id>/trace payload, or a span list)",
            file=sys.stderr,
        )
        return 2
    text = json.dumps(trace.export_chrome(spans))
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(spans)} span(s) to {args.output}")
    else:
        print(text)
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import TelemetryJournal

    if not Path(args.path).exists():
        print(f"error: no telemetry journal at {args.path!r}", file=sys.stderr)
        return 2
    summary = TelemetryJournal(args.path).summarize()
    if args.json:
        print(json.dumps(summary))
        return 0
    print(f"runs: {summary['runs']} (total {summary['total_time']:.6f}s)")
    for title, counts in (
        ("verdicts", summary["verdicts"]),
        ("schedulers", summary["schedulers"]),
        ("cache", summary["cache"]),
    ):
        if counts:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(counts.items()))
            print(f"{title}: {rendered}")
    for name in sorted(summary["checkers"]):
        stats = summary["checkers"][name]
        statuses = ", ".join(
            f"{key}={value}" for key, value in sorted(stats["statuses"].items())
        )
        print(
            f"  {name}: attempts={stats['attempts']} decisions={stats['decisions']} "
            f"mean={stats['mean_time']:.6f}s [{statuses}]"
        )
    return 0


_COMMANDS = {
    "verify": _command_verify,
    "batch": _command_batch,
    "serve": _command_serve,
    "verify-behaviour": _command_verify_behaviour,
    "extract": _command_extract,
    "show": _command_show,
    "trace": _command_trace,
    "telemetry": _command_telemetry,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None) is not None or getattr(args, "log_file", None):
        configure_logging(level=args.log_level, path=args.log_file)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
