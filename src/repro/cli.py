"""Command-line interface.

Mirrors the way the original QCEC tool is used from the shell: point it at two
OpenQASM files and get an equivalence verdict, or extract the measurement
outcome distribution of a single (dynamic) circuit.

Usage (after ``pip install -e .``)::

    repro-qcec verify static.qasm dynamic.qasm --method alternating --strategy proportional
    repro-qcec verify-behaviour static.qasm dynamic.qasm
    repro-qcec extract dynamic.qasm --backend dd
    repro-qcec show circuit.qasm

or equivalently ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.circuit import QuantumCircuit, circuit_from_qasm
from repro.core import (
    Configuration,
    check_behavioural_equivalence,
    check_equivalence,
    extract_distribution,
)
from repro.exceptions import ReproError

__all__ = ["build_parser", "main"]


def _load_circuit(path: str) -> QuantumCircuit:
    text = Path(path).read_text(encoding="utf-8")
    circuit = circuit_from_qasm(text)
    circuit.name = Path(path).stem
    return circuit


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-qcec",
        description="Equivalence checking of (dynamic) quantum circuits given as OpenQASM 2 files.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser(
        "verify", help="full functional verification (Scheme 1 for dynamic circuits)"
    )
    verify.add_argument("first", help="OpenQASM 2 file of the first circuit")
    verify.add_argument("second", help="OpenQASM 2 file of the second circuit")
    verify.add_argument("--method", default="alternating", choices=["alternating", "construction", "simulation"])
    verify.add_argument(
        "--strategy", default="proportional", choices=["naive", "one_to_one", "proportional", "lookahead"]
    )
    verify.add_argument("--backend", default="dd", choices=["dd", "dense"])
    verify.add_argument("--tolerance", type=float, default=1e-7)
    verify.add_argument("--json", action="store_true", help="print the result as JSON")

    behaviour = subparsers.add_parser(
        "verify-behaviour",
        help="compare measurement-outcome distributions for the |0...0> input (Scheme 2)",
    )
    behaviour.add_argument("first")
    behaviour.add_argument("second")
    behaviour.add_argument("--backend", default="statevector", choices=["statevector", "dd"])
    behaviour.add_argument("--tolerance", type=float, default=1e-7)
    behaviour.add_argument("--json", action="store_true")

    extract = subparsers.add_parser(
        "extract", help="extract the measurement-outcome distribution of one circuit"
    )
    extract.add_argument("circuit")
    extract.add_argument("--backend", default="statevector", choices=["statevector", "dd"])
    extract.add_argument("--initial-state", default=None, help="bitstring input state (default |0...0>)")
    extract.add_argument("--json", action="store_true")

    show = subparsers.add_parser("show", help="print a summary and drawing of a circuit")
    show.add_argument("circuit")
    return parser


def _command_verify(args: argparse.Namespace) -> int:
    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    configuration = Configuration(
        method=args.method,
        strategy=args.strategy,
        backend=args.backend,
        tolerance=args.tolerance,
    )
    result = check_equivalence(first, second, configuration)
    if args.json:
        print(
            json.dumps(
                {
                    "criterion": result.criterion.value,
                    "equivalent": result.equivalent,
                    "method": result.method,
                    "strategy": result.strategy,
                    "backend": result.backend,
                    "time_transformation": result.time_transformation,
                    "time_check": result.time_check,
                }
            )
        )
    else:
        print(f"{first.name} vs {second.name}: {result.criterion.value}")
        print(
            f"  method={result.method} strategy={result.strategy} backend={result.backend} "
            f"t_trans={result.time_transformation:.6f}s t_ver={result.time_check:.6f}s"
        )
    return 0 if result.equivalent else 1


def _command_verify_behaviour(args: argparse.Namespace) -> int:
    first = _load_circuit(args.first)
    second = _load_circuit(args.second)
    result = check_behavioural_equivalence(
        first, second, backend=args.backend, tolerance=args.tolerance
    )
    if args.json:
        print(
            json.dumps(
                {
                    "criterion": result.criterion.value,
                    "equivalent": result.equivalent,
                    "total_variation_distance": result.details["total_variation_distance"],
                    "classical_fidelity": result.details["classical_fidelity"],
                }
            )
        )
    else:
        print(f"{first.name} vs {second.name}: {result.criterion.value}")
        print(
            f"  TVD={result.details['total_variation_distance']:.3e} "
            f"fidelity={result.details['classical_fidelity']:.6f}"
        )
    return 0 if result.equivalent else 1


def _command_extract(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    result = extract_distribution(circuit, args.initial_state, backend=args.backend)
    if args.json:
        print(
            json.dumps(
                {
                    "distribution": result.distribution,
                    "num_paths": result.num_paths,
                    "backend": result.backend,
                    "time": result.time_taken,
                }
            )
        )
    else:
        print(f"{circuit.name}: {result.num_paths} path(s), t_extract={result.time_taken:.6f}s")
        for outcome in sorted(result.distribution):
            print(f"  |{outcome}> : {result.distribution[outcome]:.6f}")
    return 0


def _command_show(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    print(circuit.summary())
    print(circuit.draw())
    return 0


_COMMANDS = {
    "verify": _command_verify,
    "verify-behaviour": _command_verify_behaviour,
    "extract": _command_extract,
    "show": _command_show,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
