"""A small compilation stack (decomposition, routing, optimization).

Provides the "compilation results" that the equivalence checker is meant to
verify (Section 2.3 / Fig. 1 of the paper): basis-gate decomposition, routing
onto a coupling map (including the T-shaped IBMQ-London device), and simple
peephole optimizations.
"""

from repro.compilation.basis import (
    decompose_to_cx_and_single_qubit,
    rewrite_single_qubit_to_u,
    zyz_decomposition,
)
from repro.compilation.canonical import (
    CANONICAL_ANGLE_GRID,
    canonical_angle,
    canonicalize,
    canonicalize_with_statistics,
)
from repro.compilation.compiler import CompilationResult, compile_circuit
from repro.compilation.coupling import CouplingMap, ibmq_london, linear_coupling, ring_coupling
from repro.compilation.optimize import (
    cancel_inverse_pairs,
    merge_rotations,
    optimize_circuit,
    remove_identities,
)
from repro.compilation.routing import RoutingResult, pad_circuit, route_circuit

__all__ = [
    "CANONICAL_ANGLE_GRID",
    "CompilationResult",
    "CouplingMap",
    "RoutingResult",
    "cancel_inverse_pairs",
    "canonical_angle",
    "canonicalize",
    "canonicalize_with_statistics",
    "compile_circuit",
    "decompose_to_cx_and_single_qubit",
    "ibmq_london",
    "linear_coupling",
    "merge_rotations",
    "optimize_circuit",
    "pad_circuit",
    "remove_identities",
    "rewrite_single_qubit_to_u",
    "ring_coupling",
    "route_circuit",
    "zyz_decomposition",
]
