"""Basis-gate decomposition passes.

Real devices support only a restricted gate set (IBM devices: arbitrary
single-qubit gates plus CNOT, cf. Example 2 of the paper).  The passes in this
module rewrite a circuit so that

* every multi-qubit gate becomes CNOTs plus single-qubit gates
  (:func:`decompose_to_cx_and_single_qubit`), and
* optionally every single-qubit gate becomes a single ``U(theta, phi, lam)``
  gate (:func:`rewrite_single_qubit_to_u`).

The decompositions are *exact* (they track global phases with explicit
``gphase`` operations), so a compiled circuit remains strictly functionally
equivalent to its original — which is precisely what the equivalence checker
is then used to confirm.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.equivalence_library import StandardEquivalenceLibrary
from repro.circuit.gates import (
    ControlledGate,
    CXGate,
    Gate,
    GlobalPhaseGate,
    PhaseGate,
    RYGate,
    RZGate,
    UGate,
)
from repro.circuit.operations import Instruction
from repro.exceptions import CompilationError

__all__ = [
    "decompose_to_cx_and_single_qubit",
    "rewrite_single_qubit_to_u",
    "zyz_decomposition",
]

_ANGLE_TOLERANCE = 1e-12


def zyz_decomposition(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a single-qubit unitary as ``exp(i*alpha) Rz(phi) Ry(theta) Rz(lam)``.

    Returns ``(alpha, theta, phi, lam)`` where the rotations are the traceless
    (``Rz``/``Ry``) conventions of :mod:`repro.circuit.gates`.
    """
    if matrix.shape != (2, 2):
        raise CompilationError(f"expected a 2x2 matrix, got {matrix.shape}")
    # Make the matrix special-unitary first.
    determinant = np.linalg.det(matrix)
    alpha = cmath.phase(determinant) / 2.0
    special = matrix * cmath.exp(-1j * alpha)

    cos_half = abs(special[0, 0])
    sin_half = abs(special[1, 0])
    theta = 2.0 * math.atan2(sin_half, cos_half)

    if cos_half > _ANGLE_TOLERANCE and sin_half > _ANGLE_TOLERANCE:
        # special[0,0] = cos(theta/2) * exp(-i(phi+lam)/2)
        # special[1,0] = sin(theta/2) * exp(+i(phi-lam)/2)
        sum_angle = -2.0 * cmath.phase(special[0, 0])
        diff_angle = 2.0 * cmath.phase(special[1, 0])
        phi = (sum_angle + diff_angle) / 2.0
        lam = (sum_angle - diff_angle) / 2.0
    elif sin_half <= _ANGLE_TOLERANCE:
        # Diagonal: only phi + lam matters.
        phi = -2.0 * cmath.phase(special[0, 0])
        lam = 0.0
        theta = 0.0
    else:
        # Anti-diagonal: only phi - lam matters.
        phi = 2.0 * cmath.phase(special[1, 0])
        lam = 0.0
        theta = math.pi
    return alpha, theta, phi, lam


def _single_qubit_to_u(gate: Gate) -> tuple[UGate, float]:
    """Express a single-qubit gate as a ``U`` gate plus a global phase."""
    alpha, theta, phi, lam = zyz_decomposition(gate.matrix)
    # U(theta, phi, lam) = exp(i*(phi+lam)/2) Rz(phi) Ry(theta) Rz(lam)
    global_phase = alpha - (phi + lam) / 2.0
    return UGate(theta, phi, lam), global_phase


def _controlled_single_qubit_decomposition(
    gate: ControlledGate, qubits: tuple[int, ...]
) -> list[Instruction]:
    """ABC decomposition of a singly-controlled single-qubit gate into CX + 1q gates."""
    control, target = qubits
    base = gate.base_gate
    alpha, theta, phi, lam = zyz_decomposition(base.matrix)

    instructions: list[Instruction] = []
    if gate.ctrl_state == 0:
        # Negative control: conjugate the control with X gates.
        from repro.circuit.gates import XGate

        instructions.append(Instruction(XGate(), (control,)))

    # C = Rz((lam - phi) / 2)
    c_angle = (lam - phi) / 2.0
    if abs(c_angle) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(RZGate(c_angle), (target,)))
    instructions.append(Instruction(CXGate(), (control, target)))
    # B = Ry(-theta/2) Rz(-(phi + lam)/2)  (circuit order: Rz first, then Ry)
    b_rz = -(phi + lam) / 2.0
    if abs(b_rz) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(RZGate(b_rz), (target,)))
    if abs(theta) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(RYGate(-theta / 2.0), (target,)))
    instructions.append(Instruction(CXGate(), (control, target)))
    # A = Rz(phi) Ry(theta/2)  (circuit order: Ry first, then Rz)
    if abs(theta) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(RYGate(theta / 2.0), (target,)))
    if abs(phi) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(RZGate(phi), (target,)))
    # The global phase of the base gate becomes a phase gate on the control.
    if abs(alpha) > _ANGLE_TOLERANCE:
        instructions.append(Instruction(PhaseGate(alpha), (control,)))

    if gate.ctrl_state == 0:
        from repro.circuit.gates import XGate

        instructions.append(Instruction(XGate(), (control,)))
    return instructions


def _decompose_instruction(instruction: Instruction) -> list[Instruction]:
    """Rewrite one instruction into CX + single-qubit gates (no conditions touched).

    All structural rewrites resolve through the
    :data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary`
    (named rules, negative-control normalization, controlled-composite
    factoring); the numeric ZYZ/ABC decomposition remains the fallback for
    singly-controlled single-qubit gates without a named rule (``ch``,
    ``cy``, ``cz``, arbitrary controlled unitaries).
    """
    gate = instruction.operation
    qubits = instruction.qubits
    if not isinstance(gate, Gate) or gate.num_qubits <= 1:
        return [instruction]
    if isinstance(gate, CXGate) and gate.ctrl_state == 1:
        return [instruction]
    steps = StandardEquivalenceLibrary.translation_steps(gate)
    if steps is not None:
        expanded: list[Instruction] = []
        for sub_gate, local in steps:
            mapped = tuple(qubits[index] for index in local)
            expanded.extend(_decompose_instruction(Instruction(sub_gate, mapped)))
        return expanded
    if (
        isinstance(gate, ControlledGate)
        and gate.num_ctrl_qubits == 1
        and gate.base_gate.num_qubits == 1
    ):
        return _controlled_single_qubit_decomposition(gate, qubits)
    raise CompilationError(
        f"no CX + single-qubit decomposition implemented for gate {gate.name!r}"
    )


def decompose_to_cx_and_single_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every multi-qubit gate into CNOTs and single-qubit gates.

    Dynamic primitives (measurements, resets, classical conditions on
    single-qubit gates) are passed through unchanged; a classical condition on
    a multi-qubit gate is propagated onto every gate of its decomposition.
    """
    result = circuit.copy_empty(name=f"{circuit.name}_decomposed")
    for instruction in circuit:
        if instruction.is_barrier or not instruction.is_gate:
            result.append_instruction(instruction)
            continue
        expanded = _decompose_instruction(instruction.replace(drop_condition=True))
        for piece in expanded:
            if instruction.condition is not None:
                piece = piece.replace(condition=instruction.condition)
            result.append_instruction(piece)
    return result


def rewrite_single_qubit_to_u(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every single-qubit gate into a single ``U`` gate (plus ``gphase``)."""
    result = circuit.copy_empty(name=f"{circuit.name}_u")
    accumulated_phase = 0.0
    for instruction in circuit:
        gate = instruction.operation
        if (
            not instruction.is_gate
            or instruction.is_barrier
            or not isinstance(gate, Gate)
            or gate.num_qubits != 1
            or instruction.condition is not None
        ):
            result.append_instruction(instruction)
            continue
        if isinstance(gate, GlobalPhaseGate):
            accumulated_phase += gate.phase
            continue
        u_gate, phase = _single_qubit_to_u(gate)
        accumulated_phase += phase
        result.append_instruction(Instruction(u_gate, instruction.qubits))
    if abs(accumulated_phase) > _ANGLE_TOLERANCE:
        result.append_instruction(Instruction(GlobalPhaseGate(accumulated_phase), ()))
    return result
