"""Canonicalization pass for transpilation-aware fingerprinting.

Different translation levels of the same circuit (original, CX + single-qubit
basis, U-gate rewrite) are functionally identical but fingerprint
differently, so the PR-5 verdict cache treats them as unrelated pairs.
:func:`canonicalize` maps all levels onto one normal form:

1. library-translate to the CX + single-qubit base gate set
   (:func:`~repro.compilation.basis.decompose_to_cx_and_single_qubit`, which
   resolves every rewrite through the
   :data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary`);
2. merge every run of adjacent unconditioned single-qubit gates per qubit
   into a single ``U`` gate via the existing ZYZ machinery, accumulating the
   run's global phase into one trailing ``gphase``.

Angles of the merged gates are quantized onto a ``1e-9`` grid: the float
noise between translation levels is ~1e-15..1e-13, far inside a grid cell,
while two circuits that are *functionally* different by more than the grid
cannot collide as long as ``Configuration.tolerance`` exceeds the grid (the
``canonical_fingerprints_sound_for`` gate in :mod:`repro.service.fingerprint`
enforces exactly that).  A value straddling a grid boundary merely causes a
cache miss — never a wrong verdict.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GlobalPhaseGate, UGate
from repro.circuit.operations import Instruction
from repro.compilation.basis import (
    decompose_to_cx_and_single_qubit,
    zyz_decomposition,
)

__all__ = [
    "CANONICAL_ANGLE_GRID",
    "canonical_angle",
    "canonicalize",
    "canonicalize_with_statistics",
]

#: Quantization grid (radians) for angles of the canonical form.  Coarser
#: than the raw fingerprint's 1e-12 resolution on purpose: cross-level float
#: noise must land inside one cell.
CANONICAL_ANGLE_GRID = 1e-9

_TWO_PI = 2.0 * math.pi
_TWO_PI_QUANTIZED = round(_TWO_PI, 9)


def canonical_angle(value: float) -> float:
    """Quantize an angle onto the canonical ``[0, 2*pi)`` grid."""
    quantized = round(float(value) % _TWO_PI, 9)
    if quantized >= _TWO_PI_QUANTIZED:
        return 0.0
    return quantized


def _merged_gate(matrix: np.ndarray) -> tuple[UGate | None, float]:
    """Collapse a merged 2x2 run into a quantized ``U`` gate plus phase.

    Returns ``(None, phase)`` when the run is the identity up to a global
    phase.  The phase is the *unquantized* residue ``alpha - (phi+lam)/2``
    (the caller accumulates and quantizes once at the end, so per-run
    rounding cannot drift the total).
    """
    alpha, theta, phi, lam = zyz_decomposition(matrix)
    phase = alpha - (phi + lam) / 2.0
    q_theta = canonical_angle(theta)
    if q_theta == 0.0:
        # Diagonal: only phi + lam matters; fold it into one angle so both
        # ZYZ branches produce the same normal form.
        q_sum = canonical_angle(phi + lam)
        if q_sum == 0.0:
            return None, phase
        return UGate(0.0, q_sum, 0.0), phase
    return UGate(q_theta, canonical_angle(phi), canonical_angle(lam)), phase


def canonicalize_with_statistics(
    circuit: QuantumCircuit,
) -> tuple[QuantumCircuit, dict[str, int]]:
    """Canonical form of ``circuit`` plus merge counters (see module doc)."""
    decomposed = decompose_to_cx_and_single_qubit(circuit)
    result = decomposed.copy_empty(name=f"{circuit.name}_canonical")
    statistics = {
        "instructions_in": len(list(circuit)),
        "single_qubit_gates_merged": 0,
        "identity_runs_dropped": 0,
        "instructions_out": 0,
    }

    pending: dict[int, np.ndarray] = {}
    accumulated_phase = 0.0

    def emit(instruction: Instruction) -> None:
        statistics["instructions_out"] += 1
        result.append_instruction(instruction)

    def flush(qubit: int) -> None:
        nonlocal accumulated_phase
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        gate, phase = _merged_gate(matrix)
        accumulated_phase += phase
        if gate is None:
            statistics["identity_runs_dropped"] += 1
            return
        emit(Instruction(gate, (qubit,)))

    for instruction in decomposed:
        operation = instruction.operation
        mergeable = (
            instruction.is_gate
            and not instruction.is_barrier
            and instruction.condition is None
            and isinstance(operation, Gate)
        )
        if mergeable and isinstance(operation, GlobalPhaseGate):
            accumulated_phase += operation.phase
            continue
        if mergeable and operation.num_qubits == 1:
            qubit = instruction.qubits[0]
            statistics["single_qubit_gates_merged"] += 1
            pending[qubit] = (
                operation.matrix @ pending[qubit]
                if qubit in pending
                else operation.matrix
            )
            continue
        for qubit in instruction.qubits:
            flush(qubit)
        emit(instruction)

    for qubit in sorted(pending):
        flush(qubit)
    final_phase = canonical_angle(accumulated_phase)
    if final_phase != 0.0:
        emit(Instruction(GlobalPhaseGate(final_phase), ()))
    return result, statistics


def canonicalize(circuit: QuantumCircuit) -> QuantumCircuit:
    """The canonical form alone (most callers don't need the counters)."""
    return canonicalize_with_statistics(circuit)[0]
