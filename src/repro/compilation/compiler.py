"""The compilation pipeline: decomposition -> routing -> optimization.

This is the substrate for the paper's first use case (Section 2.3): a circuit
is compiled to a device's native gate set and connectivity, and the
equivalence checker verifies that the compiled circuit still realizes the
original functionality (Fig. 1a vs. Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.compilation.basis import decompose_to_cx_and_single_qubit, rewrite_single_qubit_to_u
from repro.compilation.coupling import CouplingMap
from repro.compilation.optimize import optimize_circuit
from repro.compilation.routing import RoutingResult, pad_circuit, route_circuit

__all__ = ["CompilationResult", "compile_circuit"]


@dataclass
class CompilationResult:
    """Outcome of :func:`compile_circuit`."""

    circuit: QuantumCircuit
    original: QuantumCircuit
    coupling_map: CouplingMap | None = None
    routing: RoutingResult | None = None
    stats: dict = field(default_factory=dict)

    @property
    def padded_original(self) -> QuantumCircuit:
        """The original circuit padded to the device size (for verification)."""
        if self.coupling_map is None:
            return self.original
        return pad_circuit(self.original, self.coupling_map.num_qubits)


def compile_circuit(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap | None = None,
    *,
    initial_layout: list[int] | None = None,
    single_qubit_to_u: bool = True,
    optimize: bool = True,
) -> CompilationResult:
    """Compile ``circuit`` for a device.

    Steps: (1) decompose all multi-qubit gates to CNOT + single-qubit gates,
    (2) route onto ``coupling_map`` (if given) inserting SWAPs — which are then
    themselves decomposed into CNOTs, (3) optionally fuse single-qubit gates
    into ``U`` gates, and (4) optionally run the peephole optimizations.  The
    result is strictly functionally equivalent to the original circuit (padded
    to the device size when a coupling map is used).
    """
    stats = {"original_size": circuit.size, "original_qubits": circuit.num_qubits}
    compiled = decompose_to_cx_and_single_qubit(circuit)

    routing = None
    if coupling_map is not None:
        routing = route_circuit(compiled, coupling_map, initial_layout, restore_layout=True)
        compiled = decompose_to_cx_and_single_qubit(routing.circuit)
        stats["num_swaps"] = routing.num_swaps

    if single_qubit_to_u:
        compiled = rewrite_single_qubit_to_u(compiled)
    if optimize:
        compiled = optimize_circuit(compiled)

    stats["compiled_size"] = compiled.size
    stats["compiled_qubits"] = compiled.num_qubits
    stats["compiled_cx"] = compiled.count_ops().get("cx", 0)
    return CompilationResult(
        circuit=compiled,
        original=circuit,
        coupling_map=coupling_map,
        routing=routing,
        stats=stats,
    )
