"""Coupling maps (device connectivity graphs).

A coupling map lists the physical qubit pairs that support two-qubit gates.
The routing pass inserts SWAPs along shortest paths of this graph; the
pre-defined :func:`ibmq_london` map is the T-shaped five-qubit device used for
the compiled QPE circuit in Fig. 1b of the paper.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.exceptions import CompilationError

__all__ = ["CouplingMap", "ibmq_london", "linear_coupling", "ring_coupling"]


class CouplingMap:
    """Undirected connectivity graph over ``num_qubits`` physical qubits."""

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]]):
        if num_qubits < 1:
            raise CompilationError("a coupling map needs at least one qubit")
        self.num_qubits = num_qubits
        self._adjacency: dict[int, set[int]] = {q: set() for q in range(num_qubits)}
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise CompilationError(f"edge ({a}, {b}) out of range for {num_qubits} qubits")
            if a == b:
                raise CompilationError(f"self-loop edge on qubit {a}")
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._distances: list[list[int]] | None = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of undirected edges."""
        result = set()
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                result.add((min(a, b), max(a, b)))
        return sorted(result)

    def neighbors(self, qubit: int) -> set[int]:
        """Physical qubits adjacent to ``qubit``."""
        return set(self._adjacency[qubit])

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether a two-qubit gate between ``a`` and ``b`` is directly supported."""
        return b in self._adjacency[a]

    def is_connected(self) -> bool:
        """Whether every qubit can reach every other qubit."""
        if self.num_qubits == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == self.num_qubits

    def _compute_distances(self) -> list[list[int]]:
        distances = []
        for source in range(self.num_qubits):
            row = [-1] * self.num_qubits
            row[source] = 0
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in self._adjacency[current]:
                    if row[neighbor] == -1:
                        row[neighbor] = row[current] + 1
                        queue.append(neighbor)
            distances.append(row)
        return distances

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two physical qubits."""
        if self._distances is None:
            self._distances = self._compute_distances()
        distance = self._distances[a][b]
        if distance < 0:
            raise CompilationError(f"qubits {a} and {b} are not connected")
        return distance

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest path from ``a`` to ``b`` (inclusive)."""
        if a == b:
            return [a]
        previous: dict[int, int] = {a: a}
        queue = deque([a])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(previous[path[-1]])
                        return list(reversed(path))
                    queue.append(neighbor)
        raise CompilationError(f"qubits {a} and {b} are not connected")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CouplingMap(num_qubits={self.num_qubits}, edges={self.edges})"


def ibmq_london() -> CouplingMap:
    """The T-shaped five-qubit IBMQ London connectivity (Fig. 1b of the paper)."""
    return CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])


def linear_coupling(num_qubits: int) -> CouplingMap:
    """A simple nearest-neighbour line of ``num_qubits`` qubits."""
    return CouplingMap(num_qubits, [(q, q + 1) for q in range(num_qubits - 1)])


def ring_coupling(num_qubits: int) -> CouplingMap:
    """A ring of ``num_qubits`` qubits."""
    if num_qubits < 3:
        raise CompilationError("a ring needs at least three qubits")
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    return CouplingMap(num_qubits, edges)
