"""Peephole circuit optimizations.

Small, semantics-preserving rewrites used after decomposition and routing:

* cancellation of adjacent gate/inverse pairs,
* merging of adjacent rotations about the same axis,
* removal of identity gates and zero-angle rotations.

These passes are also exercised by the equivalence-checking tests: an
optimized circuit must always remain equivalent to its original (and an
intentionally broken "optimization" must be caught).
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import (
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    Gate,
    IGate,
    PhaseGate,
    RXGate,
    RYGate,
    RZGate,
)
from repro.circuit.operations import Instruction

__all__ = ["cancel_inverse_pairs", "merge_rotations", "optimize_circuit", "remove_identities"]

_ANGLE_TOLERANCE = 1e-12

# Rotation families that can be merged by adding their angles.
_MERGEABLE = (RXGate, RYGate, RZGate, PhaseGate, CPhaseGate, CRXGate, CRYGate, CRZGate)

# Families for which a 2*pi angle is exactly the identity (no global phase).
_PERIOD_TWO_PI = (PhaseGate, CPhaseGate)


def _is_zero_rotation(gate: Gate) -> bool:
    if not isinstance(gate, _MERGEABLE):
        return False
    angle = gate.params[0]
    if abs(angle) <= _ANGLE_TOLERANCE:
        return True
    if isinstance(gate, _PERIOD_TWO_PI):
        reduced = math.fmod(angle, 2.0 * math.pi)
        return abs(reduced) <= _ANGLE_TOLERANCE or abs(abs(reduced) - 2.0 * math.pi) <= _ANGLE_TOLERANCE
    return False


def _rebuild(circuit: QuantumCircuit, data: list[Instruction], suffix: str) -> QuantumCircuit:
    result = circuit.copy_empty(name=f"{circuit.name}_{suffix}")
    for instruction in data:
        result.append_instruction(instruction)
    return result


def remove_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop identity gates and zero-angle rotations."""
    kept = []
    for instruction in circuit:
        gate = instruction.operation
        if instruction.is_gate and instruction.condition is None and isinstance(gate, Gate):
            if isinstance(gate, IGate) or _is_zero_rotation(gate):
                continue
        kept.append(instruction)
    return _rebuild(circuit, kept, "noid")


def _blocks_commute(first: Instruction, second: Instruction) -> bool:
    """Conservative check whether two instructions act on disjoint wires."""
    if set(first.qubits) & set(second.qubits):
        return False
    wires_first = set(first.clbits)
    wires_second = set(second.clbits)
    if first.condition is not None:
        wires_first.update(first.condition.clbits)
    if second.condition is not None:
        wires_second.update(second.condition.clbits)
    return not (wires_first & wires_second)


def cancel_inverse_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel adjacent gate / inverse-gate pairs on the same qubits.

    "Adjacent" means no intervening instruction shares a wire with the pair.
    The pass iterates to a fixpoint.
    """
    data = [inst for inst in circuit]
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(data):
            first = data[index]
            if not first.is_gate or first.condition is not None or first.is_barrier:
                index += 1
                continue
            partner = None
            for later in range(index + 1, len(data)):
                second = data[later]
                if second.is_barrier:
                    break
                if _blocks_commute(first, second):
                    continue
                if (
                    second.is_gate
                    and second.condition is None
                    and second.qubits == first.qubits
                    and isinstance(first.operation, Gate)
                    and first.operation.inverse() == second.operation
                ):
                    partner = later
                break
            if partner is not None:
                del data[partner]
                del data[index]
                changed = True
            else:
                index += 1
    return _rebuild(circuit, data, "cancelled")


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge adjacent rotations of the same family acting on the same qubits."""
    data = [inst for inst in circuit]
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(data):
            first = data[index]
            gate = first.operation
            if (
                not first.is_gate
                or first.condition is not None
                or not isinstance(gate, _MERGEABLE)
            ):
                index += 1
                continue
            partner = None
            for later in range(index + 1, len(data)):
                second = data[later]
                if second.is_barrier:
                    break
                if _blocks_commute(first, second):
                    continue
                if (
                    second.is_gate
                    and second.condition is None
                    and second.qubits == first.qubits
                    and type(second.operation) is type(gate)
                    and getattr(second.operation, "ctrl_state", None)
                    == getattr(gate, "ctrl_state", None)
                ):
                    partner = later
                break
            if partner is None:
                index += 1
                continue
            merged_angle = gate.params[0] + data[partner].operation.params[0]
            ctrl_state = getattr(gate, "ctrl_state", None)
            if ctrl_state is None:
                merged_gate = type(gate)(merged_angle)
            else:
                merged_gate = type(gate)(merged_angle, ctrl_state)
            del data[partner]
            data[index] = Instruction(merged_gate, first.qubits)
            changed = True
    return _rebuild(circuit, data, "merged")


def optimize_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Run all peephole passes to a joint fixpoint."""
    current = circuit
    while True:
        size_before = current.size
        current = remove_identities(merge_rotations(cancel_inverse_pairs(current)))
        if current.size >= size_before:
            return current
