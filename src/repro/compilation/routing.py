"""Qubit routing (mapping) onto a coupling map.

The router maps logical qubits onto the physical qubits of a device and
inserts SWAP gates whenever a two-qubit gate acts on non-adjacent physical
qubits (shortest-path routing).  By default the logical-to-physical layout is
restored at the end of the circuit, so the routed circuit is *strictly*
functionally equivalent to the original one padded to the device size — the
property the equivalence checker is then used to verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import SwapGate
from repro.circuit.operations import Instruction
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.compilation.coupling import CouplingMap
from repro.exceptions import CompilationError

__all__ = ["RoutingResult", "pad_circuit", "route_circuit"]


@dataclass
class RoutingResult:
    """Routed circuit plus layout bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: list[int]
    final_layout: list[int]
    num_swaps: int = 0
    details: dict = field(default_factory=dict)


def pad_circuit(circuit: QuantumCircuit, num_qubits: int) -> QuantumCircuit:
    """Return a copy of ``circuit`` extended with idle qubits up to ``num_qubits``.

    Used to compare an ``n``-qubit logical circuit against its realization on
    a device with more physical qubits.
    """
    if num_qubits < circuit.num_qubits:
        raise CompilationError(
            f"cannot pad a {circuit.num_qubits}-qubit circuit down to {num_qubits} qubits"
        )
    if num_qubits == circuit.num_qubits:
        return circuit.copy()
    result = QuantumCircuit(
        QuantumRegister(num_qubits, "q"),
        *[ClassicalRegister(reg.size, reg.name) for reg in circuit.cregs],
        name=f"{circuit.name}_padded",
    )
    for instruction in circuit:
        result.append_instruction(instruction)
    return result


class _Layout:
    """Bidirectional logical <-> physical qubit assignment."""

    def __init__(self, logical_to_physical: list[int], num_physical: int):
        self.logical_to_physical = list(logical_to_physical)
        self.physical_to_logical: list[int | None] = [None] * num_physical
        for logical, physical in enumerate(self.logical_to_physical):
            if self.physical_to_logical[physical] is not None:
                raise CompilationError(f"physical qubit {physical} assigned twice in layout")
            self.physical_to_logical[physical] = logical

    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def swap_physical(self, a: int, b: int) -> None:
        """Record that physical qubits ``a`` and ``b`` exchanged their contents."""
        logical_a = self.physical_to_logical[a]
        logical_b = self.physical_to_logical[b]
        self.physical_to_logical[a], self.physical_to_logical[b] = logical_b, logical_a
        if logical_a is not None:
            self.logical_to_physical[logical_a] = b
        if logical_b is not None:
            self.logical_to_physical[logical_b] = a


def route_circuit(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    initial_layout: list[int] | None = None,
    *,
    restore_layout: bool = True,
) -> RoutingResult:
    """Map ``circuit`` onto ``coupling_map`` by inserting SWAP gates.

    Parameters
    ----------
    circuit:
        The logical circuit; only single- and two-qubit gates are supported
        (run the basis decomposition first).
    coupling_map:
        Device connectivity.
    initial_layout:
        ``initial_layout[logical] = physical``; defaults to the identity.
    restore_layout:
        Append SWAPs at the end so that the final layout equals the initial
        one, making the routed circuit strictly equivalent to the (padded)
        original.
    """
    num_logical = circuit.num_qubits
    num_physical = coupling_map.num_qubits
    if num_logical > num_physical:
        raise CompilationError(
            f"circuit needs {num_logical} qubits but the device only has {num_physical}"
        )
    if not coupling_map.is_connected():
        raise CompilationError("the coupling map is not connected")
    if initial_layout is None:
        initial_layout = list(range(num_logical))
    if sorted(set(initial_layout)) != sorted(initial_layout) or any(
        not 0 <= p < num_physical for p in initial_layout
    ):
        raise CompilationError(f"invalid initial layout {initial_layout}")

    layout = _Layout(initial_layout, num_physical)
    routed = QuantumCircuit(
        QuantumRegister(num_physical, "q"),
        *[ClassicalRegister(reg.size, reg.name) for reg in circuit.cregs],
        name=f"{circuit.name}_routed",
    )
    num_swaps = 0

    def insert_swap(a: int, b: int) -> None:
        nonlocal num_swaps
        routed.append_instruction(Instruction(SwapGate(), (a, b)))
        layout.swap_physical(a, b)
        num_swaps += 1

    # Split off the trailing read-out measurements: the layout is restored
    # *before* them, so that the routed circuit never operates on a qubit
    # after it has been measured (which would make it dynamic).
    instructions = list(circuit)
    last_use: dict[int, int] = {}
    for position, instruction in enumerate(instructions):
        if instruction.is_barrier:
            continue
        for qubit in instruction.qubits:
            last_use[qubit] = position
    tail_positions = {
        position
        for position, instruction in enumerate(instructions)
        if instruction.is_measurement and last_use.get(instruction.qubits[0]) == position
    }
    body = [inst for position, inst in enumerate(instructions) if position not in tail_positions]
    tail = [inst for position, inst in enumerate(instructions) if position in tail_positions]

    for instruction in body:
        if instruction.is_barrier:
            mapped = tuple(layout.physical(q) for q in instruction.qubits)
            routed.append_instruction(instruction.replace(qubits=mapped))
            continue
        physical_qubits = tuple(layout.physical(q) for q in instruction.qubits)
        if len(physical_qubits) > 2:
            raise CompilationError(
                f"routing requires <= 2-qubit operations, got {instruction!r}; "
                "run decompose_to_cx_and_single_qubit first"
            )
        if len(physical_qubits) == 2 and not coupling_map.are_adjacent(*physical_qubits):
            path = coupling_map.shortest_path(*physical_qubits)
            # Move the first operand along the path until it neighbours the second.
            for hop in range(len(path) - 2):
                insert_swap(path[hop], path[hop + 1])
            physical_qubits = tuple(layout.physical(q) for q in instruction.qubits)
        routed.append_instruction(instruction.replace(qubits=physical_qubits))

    final_before_restore = list(layout.logical_to_physical)
    if restore_layout:
        for logical in range(num_logical):
            target = initial_layout[logical]
            while layout.physical(logical) != target:
                current = layout.physical(logical)
                path = coupling_map.shortest_path(current, target)
                insert_swap(path[0], path[1])

    for instruction in tail:
        mapped = tuple(layout.physical(q) for q in instruction.qubits)
        routed.append_instruction(instruction.replace(qubits=mapped))

    return RoutingResult(
        circuit=routed,
        initial_layout=list(initial_layout),
        final_layout=list(layout.logical_to_physical),
        num_swaps=num_swaps,
        details={"layout_before_restore": final_before_restore},
    )
