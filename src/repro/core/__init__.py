"""Core of the reproduction: the paper's two schemes and the equivalence checker.

* Scheme 1 — unitary reconstruction: :func:`to_unitary_circuit`,
  :func:`substitute_resets`, :func:`defer_measurements`.
* Scheme 2 — distribution extraction: :func:`extract_distribution`,
  :func:`check_behavioural_equivalence`.
* Equivalence checking engine: :func:`check_equivalence` / :func:`verify`,
  :class:`EquivalenceChecker`, :class:`Configuration`,
  :class:`EquivalenceCheckResult`.
* Pluggable checker subsystem: :class:`Checker` / :class:`CheckerOutcome`
  plus the :func:`register_checker` / :func:`resolve_checker` registry
  (:mod:`repro.core.checkers`).
* Feature-driven portfolio scheduling: :func:`extract_pair_features`,
  :class:`PortfolioScheduler`, :class:`Schedule`
  (:mod:`repro.core.features`, :mod:`repro.core.scheduler`).
"""

from repro.core.checkers import (
    Checker,
    CheckerOutcome,
    available_checkers,
)
from repro.core.checkers import register as register_checker
from repro.core.checkers import resolve as resolve_checker
from repro.core.checkers import unregister as unregister_checker
from repro.core.configuration import Configuration
from repro.core.distributions import (
    classical_fidelity,
    distributions_equivalent,
    hellinger_distance,
    jensen_shannon_divergence,
    kullback_leibler_divergence,
    normalize_distribution,
    total_variation_distance,
)
from repro.core.equivalence import (
    EquivalenceChecker,
    check_behavioural_equivalence,
    check_equivalence,
    verify,
)
from repro.core.extraction import ExtractionResult, extract_distribution
from repro.core.features import (
    CircuitFeatures,
    PairFeatures,
    circuit_features,
    extract_pair_features,
)
from repro.core.manager import (
    DEFAULT_PORTFOLIO,
    EquivalenceCheckingManager,
    verify_batch,
    verify_portfolio,
)
from repro.core.results import (
    BatchEntry,
    BatchResult,
    CheckerAttempt,
    EquivalenceCheckResult,
    EquivalenceCriterion,
    PortfolioResult,
)
from repro.core.scheduler import (
    AdaptiveScheduler,
    PortfolioScheduler,
    Schedule,
    ScheduledChecker,
    StaticScheduler,
    available_schedulers,
    register_scheduler,
    resolve_scheduler,
)
from repro.core.simulative import run_simulative_check
from repro.core.strategies import alternating_schedule
from repro.core.transformation import (
    TransformationResult,
    defer_measurements,
    permute_qubits,
    substitute_resets,
    to_unitary_circuit,
)
from repro.core.workers import BatchWorkUnit, chunk_pairs, verify_work_unit

__all__ = [
    "AdaptiveScheduler",
    "BatchEntry",
    "BatchResult",
    "BatchWorkUnit",
    "Checker",
    "CheckerAttempt",
    "CheckerOutcome",
    "CircuitFeatures",
    "Configuration",
    "DEFAULT_PORTFOLIO",
    "EquivalenceCheckResult",
    "EquivalenceChecker",
    "EquivalenceCheckingManager",
    "EquivalenceCriterion",
    "ExtractionResult",
    "PairFeatures",
    "PortfolioResult",
    "PortfolioScheduler",
    "Schedule",
    "ScheduledChecker",
    "StaticScheduler",
    "TransformationResult",
    "alternating_schedule",
    "available_checkers",
    "available_schedulers",
    "circuit_features",
    "check_behavioural_equivalence",
    "check_equivalence",
    "chunk_pairs",
    "classical_fidelity",
    "defer_measurements",
    "distributions_equivalent",
    "extract_distribution",
    "extract_pair_features",
    "hellinger_distance",
    "jensen_shannon_divergence",
    "kullback_leibler_divergence",
    "normalize_distribution",
    "permute_qubits",
    "register_checker",
    "register_scheduler",
    "resolve_checker",
    "resolve_scheduler",
    "run_simulative_check",
    "substitute_resets",
    "to_unitary_circuit",
    "total_variation_distance",
    "unregister_checker",
    "verify",
    "verify_batch",
    "verify_portfolio",
    "verify_work_unit",
]
