"""Core of the reproduction: the paper's two schemes and the equivalence checker.

* Scheme 1 — unitary reconstruction: :func:`to_unitary_circuit`,
  :func:`substitute_resets`, :func:`defer_measurements`.
* Scheme 2 — distribution extraction: :func:`extract_distribution`,
  :func:`check_behavioural_equivalence`.
* Equivalence checking engine: :func:`check_equivalence` / :func:`verify`,
  :class:`EquivalenceChecker`, :class:`Configuration`,
  :class:`EquivalenceCheckResult`.
"""

from repro.core.configuration import Configuration
from repro.core.distributions import (
    classical_fidelity,
    distributions_equivalent,
    hellinger_distance,
    jensen_shannon_divergence,
    kullback_leibler_divergence,
    normalize_distribution,
    total_variation_distance,
)
from repro.core.equivalence import (
    EquivalenceChecker,
    check_behavioural_equivalence,
    check_equivalence,
    verify,
)
from repro.core.extraction import ExtractionResult, extract_distribution
from repro.core.manager import (
    DEFAULT_PORTFOLIO,
    EquivalenceCheckingManager,
    verify_batch,
    verify_portfolio,
)
from repro.core.results import (
    BatchEntry,
    BatchResult,
    CheckerAttempt,
    EquivalenceCheckResult,
    EquivalenceCriterion,
    PortfolioResult,
)
from repro.core.simulative import run_simulative_check
from repro.core.strategies import alternating_schedule
from repro.core.transformation import (
    TransformationResult,
    defer_measurements,
    permute_qubits,
    substitute_resets,
    to_unitary_circuit,
)
from repro.core.workers import BatchWorkUnit, chunk_pairs, verify_work_unit

__all__ = [
    "BatchEntry",
    "BatchResult",
    "BatchWorkUnit",
    "CheckerAttempt",
    "Configuration",
    "DEFAULT_PORTFOLIO",
    "EquivalenceCheckResult",
    "EquivalenceChecker",
    "EquivalenceCheckingManager",
    "EquivalenceCriterion",
    "ExtractionResult",
    "PortfolioResult",
    "TransformationResult",
    "alternating_schedule",
    "check_behavioural_equivalence",
    "check_equivalence",
    "chunk_pairs",
    "classical_fidelity",
    "defer_measurements",
    "distributions_equivalent",
    "extract_distribution",
    "hellinger_distance",
    "jensen_shannon_divergence",
    "kullback_leibler_divergence",
    "normalize_distribution",
    "permute_qubits",
    "run_simulative_check",
    "substitute_resets",
    "to_unitary_circuit",
    "total_variation_distance",
    "verify",
    "verify_batch",
    "verify_portfolio",
    "verify_work_unit",
]
