"""Pluggable equivalence-checker subsystem.

Importing this package registers the built-in checkers — ``alternating``,
``construction``, ``simulation`` (Scheme 1) and ``distribution`` (Scheme 2) —
in the :mod:`~repro.core.checkers.base` registry.  Third-party strategies
subclass :class:`~repro.core.checkers.base.Checker` and call
:func:`~repro.core.checkers.base.register`; their name then works everywhere
a checker name is accepted (``Configuration.method``,
``Configuration.portfolio``, ``--portfolio`` on the CLI, the scheduler).

Registration is per-process.  The batch ``executor="process"`` path rebuilds
``Configuration`` inside each worker, which re-validates names against the
worker's own registry — under a ``spawn``/``forkserver`` start method a
third-party checker must therefore be registered at *import time* of a module
that worker processes also import (under ``fork``, the default on Linux,
workers inherit the parent's registry).
"""

from repro.core.checkers.alternating import AlternatingChecker
from repro.core.checkers.base import (
    Checker,
    CheckerInterrupted,
    CheckerOutcome,
    available_checkers,
    is_registered,
    register,
    resolve,
    unregister,
)
from repro.core.checkers.construction import ConstructionChecker
from repro.core.checkers.distribution import DistributionChecker
from repro.core.checkers.rewrite import RewriteChecker
from repro.core.checkers.simulation import SimulationChecker

__all__ = [
    "AlternatingChecker",
    "Checker",
    "CheckerInterrupted",
    "CheckerOutcome",
    "ConstructionChecker",
    "DistributionChecker",
    "RewriteChecker",
    "SimulationChecker",
    "available_checkers",
    "is_registered",
    "register",
    "resolve",
    "unregister",
]
