"""The alternating (QCEC-style) equivalence checker.

Keeps the product ``E = U * U'^dagger`` close to the identity by interleaving
gate applications from both circuits according to
``Configuration.strategy`` (``naive``, ``one_to_one``, ``proportional``,
``lookahead``); see :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.checkers.base import (
    Checker,
    CheckerOutcome,
    criterion_from_matrix,
    criterion_from_scalar,
    gate_lists,
    inverse_instruction,
    register,
)
from repro.core.strategies import LEFT, alternating_schedule
from repro.dd.circuits import instruction_to_dd
from repro.dd.package import DDPackage
from repro.simulators.unitary import embed_gate_matrix

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = ["AlternatingChecker"]


class AlternatingChecker(Checker):
    """Prove or refute equivalence via the alternating scheme."""

    name: ClassVar[str] = "alternating"
    role: ClassVar[str] = "prover"
    uses_strategy: ClassVar[bool] = True

    def check(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        if configuration.backend == "dd":
            return self._check_dd(first, second, configuration, interrupt)
        return self._check_dense(first, second, configuration, interrupt)

    def _check_dd(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        config: "Configuration",
        interrupt: Callable[[], bool] | None,
    ) -> CheckerOutcome:
        num_qubits = first.num_qubits
        package = DDPackage(
            num_qubits,
            gate_cache=config.gate_cache,
            gate_cache_size=config.gate_cache_size,
            gate_cache_ttl=config.gate_cache_ttl,
            dense_cutoff=config.dense_cutoff,
        )
        left, right = gate_lists(first, second)
        product = package.identity()
        max_nodes = package.count_nodes(product)
        left_index = 0
        right_index = 0

        def apply_left(current):
            nonlocal left_index
            gate_dd = instruction_to_dd(package, left[left_index])
            left_index += 1
            return package.multiply_matrices(gate_dd, current)

        def apply_right(current):
            nonlocal right_index
            gate_dd = instruction_to_dd(package, inverse_instruction(right[right_index]))
            right_index += 1
            return package.multiply_matrices(current, gate_dd)

        if config.strategy == "lookahead":
            while left_index < len(left) or right_index < len(right):
                self.check_interrupt(interrupt)
                if left_index >= len(left):
                    product = apply_right(product)
                elif right_index >= len(right):
                    product = apply_left(product)
                else:
                    saved_left, saved_right = left_index, right_index
                    candidate_left = apply_left(product)
                    left_after = left_index
                    left_index = saved_left
                    candidate_right = apply_right(product)
                    right_after = right_index
                    if package.count_nodes(candidate_left) <= package.count_nodes(candidate_right):
                        product = candidate_left
                        left_index, right_index = left_after, saved_right
                    else:
                        product = candidate_right
                        left_index, right_index = saved_left, right_after
                max_nodes = max(max_nodes, package.count_nodes(product))
        else:
            for token in alternating_schedule(len(left), len(right), config.strategy):
                self.check_interrupt(interrupt)
                product = apply_left(product) if token == LEFT else apply_right(product)
                max_nodes = max(max_nodes, package.count_nodes(product))

        scalar = package.identity_scalar(product, config.tolerance)
        details = {
            "max_nodes": max_nodes,
            "final_nodes": package.count_nodes(product),
            "num_gates_first": len(left),
            "num_gates_second": len(right),
            "dd_statistics": package.statistics(),
        }
        return CheckerOutcome(criterion_from_scalar(scalar, config.tolerance), details)

    def _check_dense(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        config: "Configuration",
        interrupt: Callable[[], bool] | None,
    ) -> CheckerOutcome:
        num_qubits = first.num_qubits
        dim = 1 << num_qubits
        left, right = gate_lists(first, second)
        product = np.eye(dim, dtype=complex)

        left_matrices = (_dense_gate(inst, num_qubits) for inst in left)
        right_matrices = (
            _dense_gate(inverse_instruction(inst), num_qubits) for inst in right
        )
        for token in alternating_schedule(len(left), len(right), _dense_strategy(config)):
            self.check_interrupt(interrupt)
            if token == LEFT:
                product = next(left_matrices) @ product
            else:
                product = product @ next(right_matrices)

        details = {"num_gates_first": len(left), "num_gates_second": len(right)}
        return CheckerOutcome(criterion_from_matrix(product, config.tolerance), details)


def _dense_strategy(config: "Configuration") -> str:
    # Lookahead is a DD-size heuristic; on the dense backend it degenerates
    # to the proportional schedule.
    if config.strategy == "lookahead":
        return "proportional"
    return config.strategy


def _dense_gate(instruction, num_qubits: int) -> np.ndarray:
    gate = instruction.operation
    if gate.num_qubits == 0:
        return complex(gate.matrix[0, 0]) * np.eye(1 << num_qubits, dtype=complex)
    return embed_gate_matrix(gate.matrix, instruction.qubits, num_qubits)


register(AlternatingChecker)
