"""Checker abstraction and registry of the pluggable checker subsystem.

Historically every equivalence-checking strategy lived as a private method on
``EquivalenceChecker`` and was dispatched by string comparison.  This module
replaces that hub with first-class :class:`Checker` objects:

* each strategy is a :class:`Checker` subclass in its own module
  (:mod:`~repro.core.checkers.alternating`,
  :mod:`~repro.core.checkers.construction`,
  :mod:`~repro.core.checkers.simulation`,
  :mod:`~repro.core.checkers.distribution`);
* checkers are looked up *by name* through the :func:`register` /
  :func:`resolve` registry, so third-party checkers plug in without touching
  the core — ``register`` a subclass and its name becomes valid in
  ``Configuration.method`` and ``Configuration.portfolio``;
* class-level metadata (:attr:`Checker.role`, :attr:`Checker.scheme_two`)
  lets the portfolio scheduler reason about a checker without running it.

A checker receives the two circuits plus the active
:class:`~repro.core.configuration.Configuration` and returns a
:class:`CheckerOutcome`; wrapping into the public
:class:`~repro.core.results.EquivalenceCheckResult` (timings, method name,
backend) is done by the calling layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.circuit.gates import Gate
from repro.circuit.operations import Instruction
from repro.core.results import EquivalenceCriterion
from repro.exceptions import EquivalenceCheckingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (configuration
    # validates names against this registry, so it must not be imported here
    # at runtime)
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = [
    "Checker",
    "CheckerInterrupted",
    "CheckerOutcome",
    "available_checkers",
    "criterion_from_matrix",
    "criterion_from_scalar",
    "exact_comparison_tolerance",
    "gate_lists",
    "inverse_instruction",
    "is_registered",
    "register",
    "resolve",
    "unregister",
]


class CheckerInterrupted(Exception):
    """Raised inside a checker when its cancellation flag was set.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: interruption
    is control flow between the portfolio manager and an abandoned worker
    thread, never a user-facing library failure.
    """


@dataclass
class CheckerOutcome:
    """What a checker found: a criterion plus free-form diagnostics."""

    criterion: EquivalenceCriterion
    details: dict = field(default_factory=dict)


class Checker(ABC):
    """One equivalence-checking strategy.

    Subclasses set the class attributes and implement :meth:`check`; calling
    :func:`register` on the subclass makes it resolvable by name everywhere a
    checker name is accepted (``Configuration.method``,
    ``Configuration.portfolio``, the CLI, the scheduler).

    Attributes
    ----------
    name:
        Registry name of the strategy (e.g. ``"alternating"``).
    role:
        ``"prover"`` — can deliver a definitive *positive* verdict
        (``EQUIVALENT`` / ``EQUIVALENT_UP_TO_GLOBAL_PHASE``) — or
        ``"falsifier"`` — decides only ``NOT_EQUIVALENT`` definitively and is
        otherwise indicative (``PROBABLY_EQUIVALENT``).
    scheme_two:
        Whether the checker compares circuits *behaviourally* (Scheme 2 of
        the paper) and therefore handles dynamic primitives natively.  The
        calling layer skips the Scheme-1 unitary reconstruction for such
        checkers and hands them the original circuits.
    uses_strategy:
        Whether ``Configuration.strategy`` influences this checker (only the
        alternating scheme); controls result reporting.
    """

    name: ClassVar[str]
    role: ClassVar[str] = "prover"
    scheme_two: ClassVar[bool] = False
    uses_strategy: ClassVar[bool] = False

    @abstractmethod
    def check(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        """Decide equivalence of two circuits under ``configuration``.

        ``interrupt`` is an optional cancellation probe: long-running loops
        must call :meth:`check_interrupt` between steps so that a checker
        whose budget expired stops doing work instead of running to
        completion on an abandoned thread.
        """

    @staticmethod
    def check_interrupt(interrupt: Callable[[], bool] | None) -> None:
        """Raise :class:`CheckerInterrupted` when the cancellation flag is set."""
        if interrupt is not None and interrupt():
            raise CheckerInterrupted


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker], *, replace: bool = False) -> type[Checker]:
    """Register a :class:`Checker` subclass under ``cls.name``.

    Usable as a plain call or as a class decorator.  Registration makes the
    name valid in ``Configuration.method`` / ``Configuration.portfolio`` and
    resolvable by the portfolio scheduler — this registry is the single
    source of truth for which checkers exist.
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise EquivalenceCheckingError(
            f"checker class {cls.__name__} must define a non-empty string 'name'"
        )
    if not (isinstance(cls, type) and issubclass(cls, Checker)):
        raise EquivalenceCheckingError(
            f"{cls!r} is not a Checker subclass and cannot be registered"
        )
    if name in _REGISTRY and not replace:
        raise EquivalenceCheckingError(
            f"a checker named {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); pass replace=True to override"
        )
    _REGISTRY[name] = cls
    return cls


def unregister(name: str) -> None:
    """Remove a checker from the registry (plugin teardown, tests)."""
    _REGISTRY.pop(name, None)


def resolve(name: str) -> type[Checker]:
    """Look up a registered checker class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EquivalenceCheckingError(
            f"unknown checker {name!r}; registered checkers: {available_checkers()}"
        ) from None


def is_registered(name: str) -> bool:
    """Whether a checker with this name exists in the registry."""
    return name in _REGISTRY


def available_checkers() -> tuple[str, ...]:
    """Names of all registered checkers, in registration order."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# helpers shared by the concrete checkers
# ----------------------------------------------------------------------


def inverse_instruction(instruction: Instruction) -> Instruction:
    """The inverse of a unitary gate instruction (same qubits)."""
    gate = instruction.operation
    assert isinstance(gate, Gate)
    return Instruction(gate.inverse(), instruction.qubits)


def gate_lists(
    first: "QuantumCircuit", second: "QuantumCircuit"
) -> tuple[list[Instruction], list[Instruction]]:
    """Unitary gate streams of both circuits, read-out measurements stripped."""
    left = list(first.remove_final_measurements().gate_instructions())
    right = list(second.remove_final_measurements().gate_instructions())
    return left, right


def criterion_from_scalar(
    scalar: complex | None, tolerance: float
) -> EquivalenceCriterion:
    """Verdict from the identity scalar of ``U * U'^dagger`` (DD backends)."""
    if scalar is None:
        return EquivalenceCriterion.NOT_EQUIVALENT
    if abs(scalar - 1.0) <= tolerance:
        return EquivalenceCriterion.EQUIVALENT
    if abs(abs(scalar) - 1.0) <= tolerance:
        return EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
    return EquivalenceCriterion.NOT_EQUIVALENT


def criterion_from_matrix(matrix: np.ndarray, tolerance: float) -> EquivalenceCriterion:
    """Verdict from the dense product matrix (dense backends)."""
    dim = matrix.shape[0]
    identity = np.eye(dim, dtype=complex)
    if np.allclose(matrix, identity, atol=tolerance):
        return EquivalenceCriterion.EQUIVALENT
    scalar = np.trace(matrix) / dim
    if abs(abs(scalar) - 1.0) <= tolerance and np.allclose(
        matrix, scalar * identity, atol=tolerance * 10
    ):
        return EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
    return EquivalenceCriterion.NOT_EQUIVALENT


def exact_comparison_tolerance(tolerance: float) -> float:
    """Absolute tolerance used for exact (phase-sensitive) matrix comparisons."""
    return max(tolerance, 1e-9)
