"""The construction equivalence checker.

Builds both system matrices in full — as decision diagrams or dense numpy
arrays — and compares them.  Conceptually the simplest prover, and the most
memory-hungry: the alternating scheme exists precisely to avoid materializing
both unitaries.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.checkers.base import (
    Checker,
    CheckerOutcome,
    criterion_from_scalar,
    exact_comparison_tolerance,
    register,
)
from repro.core.results import EquivalenceCriterion
from repro.dd.package import DDPackage
from repro.simulators.unitary import circuit_unitary, process_fidelity

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = ["ConstructionChecker"]


class ConstructionChecker(Checker):
    """Prove or refute equivalence by building both unitaries outright."""

    name: ClassVar[str] = "construction"
    role: ClassVar[str] = "prover"

    def check(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        config = configuration
        if config.backend == "dd":
            package = DDPackage(
                first.num_qubits,
                gate_cache=config.gate_cache,
                gate_cache_size=config.gate_cache_size,
                gate_cache_ttl=config.gate_cache_ttl,
                dense_cutoff=config.dense_cutoff,
            )
            from repro.dd.circuits import circuit_to_unitary_dd

            unitary_first = circuit_to_unitary_dd(package, first, interrupt=interrupt)
            unitary_second_inverse = circuit_to_unitary_dd(
                package,
                second.remove_final_measurements().inverse(),
                interrupt=interrupt,
            )
            self.check_interrupt(interrupt)
            product = package.multiply_matrices(unitary_first, unitary_second_inverse)
            scalar = package.identity_scalar(product, config.tolerance)
            details = {
                "nodes_first": package.count_nodes(unitary_first),
                "nodes_second": package.count_nodes(unitary_second_inverse),
                "final_nodes": package.count_nodes(product),
                "dd_statistics": package.statistics(),
            }
            return CheckerOutcome(criterion_from_scalar(scalar, config.tolerance), details)

        unitary_first = circuit_unitary(first, interrupt=interrupt)
        unitary_second = circuit_unitary(second, interrupt=interrupt)
        self.check_interrupt(interrupt)
        fidelity = process_fidelity(unitary_first, unitary_second)
        details = {"process_fidelity": fidelity}
        if fidelity > 1.0 - config.tolerance:
            phase_free = np.allclose(
                unitary_first,
                unitary_second,
                atol=exact_comparison_tolerance(config.tolerance),
            )
            criterion = (
                EquivalenceCriterion.EQUIVALENT
                if phase_free
                else EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
            )
            return CheckerOutcome(criterion, details)
        return CheckerOutcome(EquivalenceCriterion.NOT_EQUIVALENT, details)


register(ConstructionChecker)
