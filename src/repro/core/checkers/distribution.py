"""The distribution (Scheme-2) equivalence checker.

Compares the complete measurement-outcome distributions of the two circuits
for the all-zero input state via branching classical simulation
(:func:`~repro.core.extraction.extract_distribution`).  This is the only
checker that handles dynamic primitives *natively* — including
classically-conditioned resets, which Scheme 1 cannot reconstruct into a
unitary circuit — so the adaptive scheduler routes such pairs here.

Like the simulative check it is behavioural, not functional: equal
distributions yield ``PROBABLY_EQUIVALENT``; a distribution mismatch is a
definitive ``NOT_EQUIVALENT`` (unitarily equivalent circuits can never
disagree behaviourally).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, ClassVar

from repro.core.checkers.base import Checker, CheckerOutcome, register
from repro.core.distributions import classical_fidelity, total_variation_distance
from repro.core.extraction import extract_distribution
from repro.core.results import EquivalenceCriterion
from repro.exceptions import EquivalenceCheckingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = ["DistributionChecker"]


class DistributionChecker(Checker):
    """Compare measurement-outcome distributions (Scheme 2 of the paper)."""

    name: ClassVar[str] = "distribution"
    role: ClassVar[str] = "falsifier"
    scheme_two: ClassVar[bool] = True

    def check(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        if first.num_clbits != second.num_clbits:
            raise EquivalenceCheckingError(
                "the distribution checker compares measurement outcomes; the "
                f"circuits measure different numbers of classical bits "
                f"({first.num_clbits} vs {second.num_clbits})"
            )
        if first.num_clbits == 0:
            raise EquivalenceCheckingError(
                "the distribution checker needs measured classical bits; "
                "neither circuit measures anything"
            )
        backend = "dd" if configuration.backend == "dd" else "statevector"
        first_result = extract_distribution(
            first, None, backend=backend, interrupt=interrupt
        )
        second_result = extract_distribution(
            second, None, backend=backend, interrupt=interrupt
        )
        self.check_interrupt(interrupt)
        distance = total_variation_distance(
            first_result.distribution, second_result.distribution
        )
        fidelity = classical_fidelity(
            first_result.distribution, second_result.distribution
        )
        criterion = (
            EquivalenceCriterion.PROBABLY_EQUIVALENT
            if distance <= configuration.tolerance
            else EquivalenceCriterion.NOT_EQUIVALENT
        )
        details = {
            "total_variation_distance": distance,
            "classical_fidelity": fidelity,
            "num_paths_first": first_result.num_paths,
            "num_paths_second": second_result.num_paths,
            "time_extract_first": first_result.time_taken,
            "time_extract_second": second_result.time_taken,
        }
        return CheckerOutcome(criterion, details)


register(DistributionChecker)
