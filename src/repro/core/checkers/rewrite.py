"""Library-driven peephole ``rewrite`` checker (a DD-free prover).

Where the DD provers build ``G * G'^dagger`` as a decision diagram, this
checker reduces it *syntactically*: both circuits are translated to the
CX + single-qubit basis through the
:data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary` (the
same rules the compiler uses), the concatenation ``G ∘ G'^{-1}`` is streamed
through a peephole stack, and

* adjacent single-qubit gates on the same qubit merge as 2x2 numpy products,
  vanishing when the product is the identity up to a global phase;
* a ``cx`` cancels against an identical ``cx`` that is topmost on *both* its
  qubits (CX is self-inverse);
* ``gphase`` accumulates into one scalar.

When the stack telescopes to nothing the circuits are *proven* equivalent —
in O(gates) 2x2 arithmetic, without constructing a single DD node.  This is
exactly the compilation-flow workload (same circuit, other gate set): every
translated run reduces to identity between the cancelling CX skeletons.  A
non-empty residue yields ``NO_INFORMATION``, never ``NOT_EQUIVALENT`` — the
peephole is incomplete (it has no commutation rules), so a residue means
"this prover cannot tell", and the DD portfolio keeps the final word.
"""

from __future__ import annotations

import cmath
from collections.abc import Callable
from typing import ClassVar

import numpy as np

from repro.circuit.gates import ControlledGate, GlobalPhaseGate
from repro.core.checkers.base import (
    Checker,
    CheckerOutcome,
    exact_comparison_tolerance,
    gate_lists,
    inverse_instruction,
    register,
)
from repro.core.results import EquivalenceCriterion

__all__ = ["RewriteChecker"]

_IDENTITY = np.eye(2, dtype=complex)

#: How often the reduction loop polls the cancellation flag.
_INTERRUPT_STRIDE = 256


class _Entry:
    """One live stack entry: a pending 1q matrix or an uncancelled cx."""

    __slots__ = ("kind", "qubit", "matrix", "control", "target", "ctrl_state", "prev")

    def __init__(self, kind: str):
        self.kind = kind
        self.prev: dict[int, "_Entry | None"] = {}


class _PeepholeStack:
    """Per-qubit linked stack with 1q merging and cx pair cancellation."""

    def __init__(self, tolerance: float):
        self.tolerance = tolerance
        self.top: dict[int, _Entry | None] = {}
        self.phase = 0.0
        self.live = 0
        self.merged = 0
        self.cancelled = 0

    def _identity_phase(self, matrix: np.ndarray) -> float | None:
        """The ``delta`` with ``matrix ≈ e^{i*delta} I``, or None."""
        if abs(matrix[0, 0]) <= self.tolerance:
            return None
        delta = cmath.phase(matrix[0, 0])
        if np.max(np.abs(matrix - cmath.exp(1j * delta) * _IDENTITY)) <= self.tolerance:
            return float(delta)
        return None

    def push_single_qubit(self, qubit: int, matrix: np.ndarray) -> None:
        top = self.top.get(qubit)
        if top is not None and top.kind == "1q":
            self.merged += 1
            top.matrix = matrix @ top.matrix
            delta = self._identity_phase(top.matrix)
            if delta is not None:
                self.phase += delta
                self.top[qubit] = top.prev[qubit]
                self.live -= 1
            return
        entry = _Entry("1q")
        entry.qubit = qubit
        entry.matrix = matrix
        entry.prev[qubit] = top
        self.top[qubit] = entry
        self.live += 1

    def push_cx(self, control: int, target: int, ctrl_state: int) -> None:
        top_c = self.top.get(control)
        top_t = self.top.get(target)
        if (
            top_c is not None
            and top_c is top_t
            and top_c.kind == "cx"
            and top_c.control == control
            and top_c.target == target
            and top_c.ctrl_state == ctrl_state
        ):
            self.cancelled += 1
            self.top[control] = top_c.prev[control]
            self.top[target] = top_c.prev[target]
            self.live -= 1
            return
        entry = _Entry("cx")
        entry.control = control
        entry.target = target
        entry.ctrl_state = ctrl_state
        entry.prev[control] = top_c
        entry.prev[target] = top_t
        self.top[control] = entry
        self.top[target] = entry
        self.live += 1


class RewriteChecker(Checker):
    """Prove equivalence by peephole reduction of ``G ∘ G'^{-1}`` to identity."""

    name: ClassVar[str] = "rewrite"
    role: ClassVar[str] = "prover"
    scheme_two: ClassVar[bool] = False
    uses_strategy: ClassVar[bool] = False

    def check(
        self,
        first,
        second,
        configuration,
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        from repro.compilation.basis import decompose_to_cx_and_single_qubit
        from repro.exceptions import ReproError

        if first.num_qubits != second.num_qubits:
            return self._no_information(
                "qubit counts differ; rewrite reduction not applicable"
            )
        try:
            left = decompose_to_cx_and_single_qubit(first.remove_final_measurements())
            right = decompose_to_cx_and_single_qubit(second.remove_final_measurements())
            left_stream, right_stream = gate_lists(left, right)
        except ReproError as error:
            return self._no_information(f"basis translation failed: {error}")
        inverse_stream = [
            inverse_instruction(instruction) for instruction in reversed(right_stream)
        ]

        tolerance = exact_comparison_tolerance(configuration.tolerance)
        stack = _PeepholeStack(tolerance)
        input_gates = len(left_stream) + len(inverse_stream)
        for position, instruction in enumerate(left_stream + inverse_stream):
            if position % _INTERRUPT_STRIDE == 0:
                self.check_interrupt(interrupt)
            gate = instruction.operation
            if isinstance(gate, GlobalPhaseGate):
                stack.phase += gate.phase
                continue
            if gate.num_qubits == 1:
                stack.push_single_qubit(instruction.qubits[0], gate.matrix)
                continue
            if (
                gate.num_qubits == 2
                and isinstance(gate, ControlledGate)
                and gate.base_gate.name == "x"
            ):
                control, target = instruction.qubits
                stack.push_cx(control, target, gate.ctrl_state)
                continue
            return self._no_information(
                f"unsupported residual gate {gate.name!r} after basis translation"
            )

        statistics = {
            "input_gates": input_gates,
            "merged_single_qubit": stack.merged,
            "cancelled_cx": stack.cancelled,
            "remaining": stack.live,
            "proved": stack.live == 0,
        }
        if stack.live:
            return CheckerOutcome(
                criterion=EquivalenceCriterion.NO_INFORMATION,
                details={
                    "reason": (
                        f"peephole reduction left {stack.live} gate(s); "
                        "rewrite cannot decide"
                    ),
                    "rewrite_statistics": statistics,
                },
            )
        if abs(cmath.exp(1j * stack.phase) - 1.0) <= configuration.tolerance:
            criterion = EquivalenceCriterion.EQUIVALENT
        else:
            criterion = EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
        return CheckerOutcome(
            criterion=criterion,
            details={"rewrite_statistics": statistics, "residual_phase": stack.phase},
        )

    @staticmethod
    def _no_information(reason: str) -> CheckerOutcome:
        return CheckerOutcome(
            criterion=EquivalenceCriterion.NO_INFORMATION,
            details={
                "reason": reason,
                "rewrite_statistics": {"proved": False},
            },
        )


register(RewriteChecker)
