"""The simulative (random-stimuli) equivalence checker.

The portfolio's *falsifier*: a single mismatching stimulus proves
non-equivalence, usually long before a functional check would finish, but a
pass only yields ``PROBABLY_EQUIVALENT``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, ClassVar

from repro.core.checkers.base import Checker, CheckerOutcome, register
from repro.core.results import EquivalenceCriterion
from repro.core.simulative import run_simulative_check

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = ["SimulationChecker"]


class SimulationChecker(Checker):
    """Refute equivalence fast by comparing the circuits on random stimuli."""

    name: ClassVar[str] = "simulation"
    role: ClassVar[str] = "falsifier"

    def check(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
        *,
        interrupt: Callable[[], bool] | None = None,
    ) -> CheckerOutcome:
        config = configuration
        passed, details = run_simulative_check(
            first,
            second,
            backend=config.backend,
            num_simulations=config.num_simulations,
            stimuli_type=config.stimuli_type,
            tolerance=config.tolerance,
            seed=config.seed,
            gate_cache=config.gate_cache,
            gate_cache_size=config.gate_cache_size,
            gate_cache_ttl=config.gate_cache_ttl,
            dense_cutoff=config.dense_cutoff,
            interrupt=interrupt,
        )
        criterion = (
            EquivalenceCriterion.PROBABLY_EQUIVALENT
            if passed
            else EquivalenceCriterion.NOT_EQUIVALENT
        )
        return CheckerOutcome(criterion, details)


register(SimulationChecker)
