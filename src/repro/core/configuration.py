"""Configuration of the equivalence-checking flows."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultPlan

__all__ = ["Configuration"]

_STRATEGIES = ("naive", "one_to_one", "proportional", "lookahead")
_BACKENDS = ("dd", "dense")
_STIMULI = ("basis", "product")
_EXECUTORS = ("thread", "process")


def _registered_checkers() -> tuple[str, ...]:
    """Checker names known to the registry (the single source of truth).

    Imported lazily: the checker modules consume configuration values at run
    time, so importing them at this module's top level would be circular.
    """
    from repro.core.checkers import available_checkers

    return available_checkers()


def _registered_schedulers() -> tuple[str, ...]:
    from repro.core.scheduler import available_schedulers

    return available_schedulers()


@dataclass(frozen=True)
class Configuration:
    """All knobs of the equivalence checker.

    Attributes
    ----------
    method:
        Name of a registered checker (see :mod:`repro.core.checkers`):
        ``alternating`` (the QCEC-style scheme that keeps ``U * U'^dagger``
        close to the identity), ``construction`` (build both system matrices,
        then compare), ``simulation`` (random-stimuli check), ``distribution``
        (Scheme-2 measurement-outcome comparison), or any third-party checker
        added through the registry.
    strategy:
        Application strategy of the alternating scheme: ``naive``,
        ``one_to_one``, ``proportional`` (the paper's default) or
        ``lookahead``.
    backend:
        ``dd`` (decision diagrams) or ``dense`` (numpy, exponential memory —
        only sensible for small circuits and as ground truth in tests).
    transform_dynamic:
        Whether dynamic circuits are transformed to unitary circuits first
        (Section 4 of the paper).  When false, encountering a dynamic circuit
        raises.
    tolerance:
        Numerical tolerance of the identity / fidelity decisions.
    num_simulations:
        Number of random stimuli for the ``simulation`` method.
    stimuli_type:
        ``basis`` (random computational basis states) or ``product`` (random
        single-qubit product states).
    seed:
        Seed for the random stimuli.
    gate_cache:
        Whether the decision-diagram backend memoizes per-gate DDs (see
        :meth:`repro.dd.package.DDPackage.gate_cache_lookup`).  On by default;
        switching it off is mainly useful for benchmarking the cache itself.
    gate_cache_size:
        Upper bound on the number of memoized gate DDs (and operator chains)
        per :class:`~repro.dd.package.DDPackage`, evicted least-recently-used
        first.  ``None`` (the default) keeps the caches unbounded, which is
        fine for one-shot checks; long-lived worker processes should set a
        bound so their packages do not grow without limit.
    gate_cache_ttl:
        Time-based expiry (seconds) for the memoized gate DDs and operator
        chains: an entry older than the TTL is dropped lazily on lookup
        (expiry counters in ``DDPackage.statistics()``).  ``None`` (the
        default) never expires entries.  Meant for long-lived service
        workers whose traffic mix drifts over time — stale gate DDs age out
        instead of pinning memory forever.
    dense_cutoff:
        Hybrid dense-subtree cutoff of the DD kernels: sub-diagrams rooted
        strictly below this level are evaluated as dense numpy blocks
        (memoized per node) and re-imported through the normal normalizing
        node construction.  ``0`` disables the hybrid path; small positive
        values (4-8) trade an exponential-in-cutoff amount of per-subtree
        memory for far fewer Python-level recursion steps on the lowest
        levels.  Verdicts are unchanged either way — the dense path computes
        the same sums/products and lands in the same unique table.
    portfolio:
        Checker names run by the
        :class:`~repro.core.manager.EquivalenceCheckingManager`; every name
        is validated eagerly against the checker registry at construction
        time.  ``None`` selects the default portfolio (simulation as a fast
        falsifier, then the alternating scheme).
    scheduler:
        How the manager turns the portfolio into a per-pair checker lineup:
        ``static`` (configured order, uniform budgets — the historical
        behaviour) or ``adaptive`` (feature-driven reordering and budget
        splits; see :mod:`repro.core.scheduler`).  Third-party schedulers
        register under their own names.
    timeout:
        Overall wall-clock budget (seconds) of one portfolio run; ``None``
        disables the limit.
    checker_timeout:
        Wall-clock budget (seconds) of each individual checker within a
        portfolio run; ``None`` disables the limit.
    max_workers:
        Number of concurrent workers used by
        :meth:`~repro.core.manager.EquivalenceCheckingManager.verify_batch`
        (threads or processes, depending on ``executor``).
    executor:
        Execution backend of ``verify_batch``: ``thread`` (shared-memory
        thread pool; GIL-bound for the CPU-heavy DD checkers) or ``process``
        (a process pool fed with pickled circuit pairs; each worker process
        rebuilds its own manager and DD packages, which never cross process
        boundaries).
    batch_chunk_size:
        Number of circuit pairs per picklable work unit when
        ``executor == "process"``.  Larger chunks amortize pickling and
        process-dispatch overhead at the cost of coarser load balancing.
        Ignored by the thread executor.
    verdict_cache:
        Whether the :class:`~repro.core.manager.EquivalenceCheckingManager`
        consults a :class:`~repro.service.cache.VerdictCache` before
        scheduling any checker, keyed by the pair's canonical fingerprint
        plus the verdict-relevant configuration fields (see
        :mod:`repro.service.fingerprint`).  Also enables deduplication of
        identical pairs *within* a batch: each distinct pair runs once and
        the verdict fans out to its duplicates in input order.
    cache_path:
        Path of the verdict cache's persistent JSON-lines tier.  Setting it
        implies ``verdict_cache``; verdicts then survive process restarts.
    cache_size:
        LRU bound of the verdict cache's in-memory tier (``None`` keeps it
        unbounded).
    canonicalize:
        Whether cache lookups additionally consult a *canonicalized*
        fingerprint (circuits library-translated to the CX + single-qubit
        basis with merged single-qubit runs; see
        :mod:`repro.compilation.canonical`) so verdicts are shared across
        translation levels of the same logical pair.  Verdict-preserving:
        it only changes which cache entries a pair can hit, never what a
        fresh run decides — so it is deliberately *not* part of the
        fingerprinted configuration fields.  Automatically bypassed when
        the tolerance out-resolves the canonical angle grid.
    breaker_threshold:
        Consecutive-failure threshold of the per-checker circuit breakers
        (see :mod:`repro.resilience.breaker`): a checker that crashes or
        times out this many times in a row is quarantined until the
        cooldown expires, and the portfolio degrades to the remaining
        checkers.  ``None`` disables the breakers.  Deliberately *not* part
        of the fingerprinted configuration fields — quarantine changes which
        checkers run, never what a completed checker decides.
    breaker_cooldown:
        Seconds a tripped breaker stays open before admitting a single
        half-open probe run.
    batch_retries:
        Retry budget for process-pool work units in ``verify_batch``: a
        work unit lost to a dying worker (``BrokenProcessPool``) is
        re-dispatched up to this many times — with the pool rebuilt and the
        unit bisected so one poisoned pair cannot take healthy neighbours
        down with it — before its pairs are reported as errors.  ``0``
        restores fail-fast behaviour.  Ignored by the thread executor.
    fault_plan:
        Deterministic fault-injection plan
        (:class:`~repro.resilience.faults.FaultPlan`) for the chaos test
        suite; ``None`` — the only supported production value — makes every
        injection point a no-op.  Not fingerprinted: injected faults must
        never leak into cache keys.
    telemetry_path:
        Path of the run-telemetry journal
        (:class:`~repro.obs.telemetry.TelemetryJournal`): every settled run
        appends one crash-safe record (features, schedule, per-checker
        timings and outcomes, verdict, cache provenance) — the training
        substrate for a learned scheduler.  ``None`` (the default) disables
        telemetry.  Deliberately *not* part of the fingerprinted
        configuration fields — observing a run never changes its verdict —
        and forced off inside process-pool workers, whose records the
        parent writes after reassembly.
    """

    method: str = "alternating"
    strategy: str = "proportional"
    backend: str = "dd"
    transform_dynamic: bool = True
    tolerance: float = 1e-7
    num_simulations: int = 16
    stimuli_type: str = "product"
    seed: int | None = None
    gate_cache: bool = True
    gate_cache_size: int | None = None
    gate_cache_ttl: float | None = None
    dense_cutoff: int = 0
    portfolio: tuple[str, ...] | None = None
    scheduler: str = "static"
    timeout: float | None = None
    checker_timeout: float | None = None
    max_workers: int = 4
    executor: str = "thread"
    batch_chunk_size: int = 1
    verdict_cache: bool = False
    cache_path: str | None = None
    cache_size: int | None = 1024
    canonicalize: bool = True
    breaker_threshold: int | None = 5
    breaker_cooldown: float = 30.0
    batch_retries: int = 2
    fault_plan: FaultPlan | None = None
    telemetry_path: str | None = None

    def __post_init__(self) -> None:
        known_checkers = _registered_checkers()
        if self.method not in known_checkers:
            raise ConfigurationError(
                f"unknown method {self.method!r}; registered checkers: {known_checkers}"
            )
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; choose from {_STRATEGIES}"
            )
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {_BACKENDS}"
            )
        if self.stimuli_type not in _STIMULI:
            raise ConfigurationError(
                f"unknown stimuli type {self.stimuli_type!r}; choose from {_STIMULI}"
            )
        if self.tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        if self.num_simulations < 1:
            raise ConfigurationError("num_simulations must be at least 1")
        if self.portfolio is not None:
            portfolio = tuple(self.portfolio)
            if not portfolio:
                raise ConfigurationError("portfolio must name at least one checker")
            for method in portfolio:
                if method not in known_checkers:
                    raise ConfigurationError(
                        f"unknown portfolio checker {method!r}; "
                        f"registered checkers: {known_checkers}"
                    )
            if len(set(portfolio)) != len(portfolio):
                raise ConfigurationError(f"duplicate checkers in portfolio {portfolio}")
            object.__setattr__(self, "portfolio", portfolio)
        known_schedulers = _registered_schedulers()
        if self.scheduler not in known_schedulers:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; "
                f"registered schedulers: {known_schedulers}"
            )
        for name in ("timeout", "checker_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive (or None)")
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if self.executor not in _EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; choose from {_EXECUTORS}"
            )
        if self.batch_chunk_size < 1:
            raise ConfigurationError("batch_chunk_size must be at least 1")
        if self.gate_cache_size is not None and self.gate_cache_size < 1:
            raise ConfigurationError("gate_cache_size must be at least 1 (or None)")
        if self.gate_cache_ttl is not None and self.gate_cache_ttl <= 0:
            raise ConfigurationError("gate_cache_ttl must be positive (or None)")
        if self.dense_cutoff < 0:
            raise ConfigurationError("dense_cutoff must be non-negative (0 disables)")
        if self.cache_size is not None and self.cache_size < 1:
            raise ConfigurationError("cache_size must be at least 1 (or None)")
        if not isinstance(self.canonicalize, bool):
            raise ConfigurationError(
                f"canonicalize must be a bool, got {self.canonicalize!r}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigurationError(
                "breaker_threshold must be at least 1 (or None to disable)"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigurationError("breaker_cooldown must be positive")
        if self.batch_retries < 0:
            raise ConfigurationError("batch_retries must be non-negative")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan (or None), got {self.fault_plan!r}"
            )
        if self.telemetry_path is not None and not str(self.telemetry_path).strip():
            raise ConfigurationError("telemetry_path must be a non-empty path (or None)")

    @property
    def cache_enabled(self) -> bool:
        """Whether the manager consults a verdict cache (flag or persistent path)."""
        return self.verdict_cache or self.cache_path is not None

    def updated(self, **overrides) -> "Configuration":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
