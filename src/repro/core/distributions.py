"""Comparison of measurement-outcome distributions.

Used by the behavioural equivalence check (Scheme 2): two circuits are
considered behaviourally equivalent for a fixed input when the total-variation
distance between their outcome distributions is below a tolerance (equivalently
when the classical fidelity is close to one).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

__all__ = [
    "classical_fidelity",
    "distributions_equivalent",
    "hellinger_distance",
    "jensen_shannon_divergence",
    "kullback_leibler_divergence",
    "normalize_distribution",
    "total_variation_distance",
]


def normalize_distribution(distribution: Mapping[str, float]) -> dict[str, float]:
    """Return the distribution scaled to sum to one (dropping negatives)."""
    cleaned = {key: max(0.0, float(value)) for key, value in distribution.items()}
    total = sum(cleaned.values())
    if total <= 0.0:
        raise ValueError("distribution has no probability mass")
    return {key: value / total for key, value in cleaned.items() if value > 0.0}


def total_variation_distance(
    first: Mapping[str, float], second: Mapping[str, float]
) -> float:
    """Total-variation distance ``0.5 * sum |p_i - q_i|`` (in [0, 1])."""
    keys = set(first) | set(second)
    return 0.5 * sum(abs(first.get(key, 0.0) - second.get(key, 0.0)) for key in keys)


def classical_fidelity(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Bhattacharyya/classical fidelity ``(sum sqrt(p_i q_i))**2`` (1 iff equal)."""
    keys = set(first) | set(second)
    overlap = sum(
        math.sqrt(max(0.0, first.get(key, 0.0)) * max(0.0, second.get(key, 0.0)))
        for key in keys
    )
    return overlap**2


def hellinger_distance(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Hellinger distance ``sqrt(1 - sqrt(F))`` (in [0, 1])."""
    fidelity = classical_fidelity(first, second)
    return math.sqrt(max(0.0, 1.0 - math.sqrt(fidelity)))


def kullback_leibler_divergence(
    first: Mapping[str, float], second: Mapping[str, float], epsilon: float = 1e-12
) -> float:
    """KL divergence ``D(first || second)`` with epsilon-smoothing of ``second``."""
    divergence = 0.0
    for key, probability in first.items():
        if probability <= 0.0:
            continue
        divergence += probability * math.log(probability / max(second.get(key, 0.0), epsilon))
    return divergence


def jensen_shannon_divergence(
    first: Mapping[str, float], second: Mapping[str, float]
) -> float:
    """Symmetrized, bounded KL divergence (in [0, ln 2])."""
    keys = set(first) | set(second)
    mixture = {key: 0.5 * (first.get(key, 0.0) + second.get(key, 0.0)) for key in keys}
    return 0.5 * kullback_leibler_divergence(first, mixture) + 0.5 * kullback_leibler_divergence(
        second, mixture
    )


def distributions_equivalent(
    first: Mapping[str, float],
    second: Mapping[str, float],
    tolerance: float = 1e-7,
) -> bool:
    """Whether two outcome distributions agree within ``tolerance`` (TVD)."""
    return total_variation_distance(first, second) <= tolerance
