"""Equivalence checking of quantum circuits.

The functional flow mirrors QCEC: it decides whether two circuits realize the
same unitary ``U =? U'`` by building ``E = U * U'^dagger`` — either in one go
(``construction``) or gate by gate from both sides (``alternating``), keeping
``E`` close to the identity for equivalent circuits — or by comparing the
circuits on random stimuli (``simulation``).

Dynamic circuits (containing resets, mid-circuit measurements or
classically-controlled operations) are handled exactly as the paper proposes:

* :func:`check_equivalence` first applies Scheme 1
  (:func:`~repro.core.transformation.to_unitary_circuit`) so that the
  functional flow can be used unchanged, and
* :func:`check_behavioural_equivalence` applies Scheme 2
  (:func:`~repro.core.extraction.extract_distribution`) and compares the
  measurement-outcome distributions for a fixed input state.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.circuit.operations import Instruction
from repro.core.configuration import Configuration
from repro.core.distributions import classical_fidelity, total_variation_distance
from repro.core.extraction import extract_distribution
from repro.core.results import EquivalenceCheckResult, EquivalenceCriterion
from repro.core.simulative import run_simulative_check
from repro.core.strategies import LEFT, alternating_schedule
from repro.core.transformation import permute_qubits, to_unitary_circuit
from repro.dd.circuits import instruction_to_dd
from repro.dd.package import DDPackage
from repro.exceptions import EquivalenceCheckingError
from repro.simulators.unitary import circuit_unitary, embed_gate_matrix, process_fidelity

__all__ = [
    "EquivalenceChecker",
    "check_behavioural_equivalence",
    "check_equivalence",
    "verify",
]


def _inverse_instruction(instruction: Instruction) -> Instruction:
    gate = instruction.operation
    assert isinstance(gate, Gate)
    return Instruction(gate.inverse(), instruction.qubits)


class EquivalenceChecker:
    """Configurable equivalence checker for static and dynamic circuits."""

    def __init__(self, configuration: Configuration | None = None, **overrides):
        configuration = configuration or Configuration()
        if overrides:
            configuration = configuration.updated(**overrides)
        self.configuration = configuration

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None = None,
    ) -> EquivalenceCheckResult:
        """Check whether ``first`` and ``second`` realize the same unitary.

        ``qubit_permutation`` optionally relabels the qubits of ``second``
        before the comparison (``{old: new}``) — useful when a reconstructed
        dynamic circuit enumerates its fresh qubits in a different order than
        the static reference.
        """
        config = self.configuration
        time_transformation = 0.0

        first_unitary = first
        second_unitary = second
        if first.is_dynamic or second.is_dynamic:
            if not config.transform_dynamic:
                raise EquivalenceCheckingError(
                    "the circuits contain non-unitary operations and transform_dynamic "
                    "is disabled; enable it or use check_behavioural_equivalence"
                )
            if first.is_dynamic:
                transformation = to_unitary_circuit(first)
                first_unitary = transformation.circuit
                time_transformation += transformation.time_taken
            if second.is_dynamic:
                transformation = to_unitary_circuit(second)
                second_unitary = transformation.circuit
                time_transformation += transformation.time_taken

        if qubit_permutation is not None:
            second_unitary = permute_qubits(second_unitary, qubit_permutation)

        if first_unitary.num_qubits != second_unitary.num_qubits:
            raise EquivalenceCheckingError(
                "after unitary reconstruction the circuits act on different numbers of "
                f"qubits ({first_unitary.num_qubits} vs {second_unitary.num_qubits}); "
                "they do not have the same primary inputs/outputs"
            )

        start = time.perf_counter()
        if config.method == "alternating":
            criterion, details = self._alternating(first_unitary, second_unitary)
        elif config.method == "construction":
            criterion, details = self._construction(first_unitary, second_unitary)
        else:
            criterion, details = self._simulation(first_unitary, second_unitary)
        time_check = time.perf_counter() - start

        return EquivalenceCheckResult(
            criterion=criterion,
            method=config.method,
            backend=config.backend,
            strategy=config.strategy if config.method == "alternating" else None,
            time_transformation=time_transformation,
            time_check=time_check,
            details=details,
        )

    # ------------------------------------------------------------------
    # functional checks
    # ------------------------------------------------------------------

    def _gate_lists(
        self, first: QuantumCircuit, second: QuantumCircuit
    ) -> tuple[list[Instruction], list[Instruction]]:
        left = list(first.remove_final_measurements().gate_instructions())
        right = list(second.remove_final_measurements().gate_instructions())
        return left, right

    def _alternating(self, first: QuantumCircuit, second: QuantumCircuit):
        if self.configuration.backend == "dd":
            return self._alternating_dd(first, second)
        return self._alternating_dense(first, second)

    def _alternating_dd(self, first: QuantumCircuit, second: QuantumCircuit):
        config = self.configuration
        num_qubits = first.num_qubits
        package = DDPackage(
            num_qubits,
            gate_cache=config.gate_cache,
            gate_cache_size=config.gate_cache_size,
            dense_cutoff=config.dense_cutoff,
        )
        left, right = self._gate_lists(first, second)
        product = package.identity()
        max_nodes = package.count_nodes(product)
        left_index = 0
        right_index = 0

        def apply_left(current):
            nonlocal left_index
            gate_dd = instruction_to_dd(package, left[left_index])
            left_index += 1
            return package.multiply_matrices(gate_dd, current)

        def apply_right(current):
            nonlocal right_index
            gate_dd = instruction_to_dd(package, _inverse_instruction(right[right_index]))
            right_index += 1
            return package.multiply_matrices(current, gate_dd)

        if config.strategy == "lookahead":
            while left_index < len(left) or right_index < len(right):
                if left_index >= len(left):
                    product = apply_right(product)
                elif right_index >= len(right):
                    product = apply_left(product)
                else:
                    saved_left, saved_right = left_index, right_index
                    candidate_left = apply_left(product)
                    left_after = left_index
                    left_index = saved_left
                    candidate_right = apply_right(product)
                    right_after = right_index
                    if package.count_nodes(candidate_left) <= package.count_nodes(candidate_right):
                        product = candidate_left
                        left_index, right_index = left_after, saved_right
                    else:
                        product = candidate_right
                        left_index, right_index = saved_left, right_after
                max_nodes = max(max_nodes, package.count_nodes(product))
        else:
            for token in alternating_schedule(len(left), len(right), config.strategy):
                product = apply_left(product) if token == LEFT else apply_right(product)
                max_nodes = max(max_nodes, package.count_nodes(product))

        scalar = package.identity_scalar(product, config.tolerance)
        details = {
            "max_nodes": max_nodes,
            "final_nodes": package.count_nodes(product),
            "num_gates_first": len(left),
            "num_gates_second": len(right),
            "dd_statistics": package.statistics(),
        }
        return self._criterion_from_scalar(scalar, config.tolerance), details

    def _alternating_dense(self, first: QuantumCircuit, second: QuantumCircuit):
        config = self.configuration
        num_qubits = first.num_qubits
        dim = 1 << num_qubits
        left, right = self._gate_lists(first, second)
        product = np.eye(dim, dtype=complex)

        left_matrices = (self._dense_gate(inst, num_qubits) for inst in left)
        right_matrices = (
            self._dense_gate(_inverse_instruction(inst), num_qubits) for inst in right
        )
        for token in alternating_schedule(len(left), len(right), self._dense_strategy()):
            if token == LEFT:
                product = next(left_matrices) @ product
            else:
                product = product @ next(right_matrices)

        details = {"num_gates_first": len(left), "num_gates_second": len(right)}
        return self._criterion_from_matrix(product, config.tolerance), details

    def _dense_strategy(self) -> str:
        # Lookahead is a DD-size heuristic; on the dense backend it degenerates
        # to the proportional schedule.
        if self.configuration.strategy == "lookahead":
            return "proportional"
        return self.configuration.strategy

    def _construction(self, first: QuantumCircuit, second: QuantumCircuit):
        config = self.configuration
        if config.backend == "dd":
            package = DDPackage(
                first.num_qubits,
                gate_cache=config.gate_cache,
                gate_cache_size=config.gate_cache_size,
                dense_cutoff=config.dense_cutoff,
            )
            from repro.dd.circuits import circuit_to_unitary_dd

            unitary_first = circuit_to_unitary_dd(package, first)
            unitary_second_inverse = circuit_to_unitary_dd(
                package, second.remove_final_measurements().inverse()
            )
            product = package.multiply_matrices(unitary_first, unitary_second_inverse)
            scalar = package.identity_scalar(product, config.tolerance)
            details = {
                "nodes_first": package.count_nodes(unitary_first),
                "nodes_second": package.count_nodes(unitary_second_inverse),
                "final_nodes": package.count_nodes(product),
                "dd_statistics": package.statistics(),
            }
            return self._criterion_from_scalar(scalar, config.tolerance), details

        unitary_first = circuit_unitary(first)
        unitary_second = circuit_unitary(second)
        fidelity = process_fidelity(unitary_first, unitary_second)
        details = {"process_fidelity": fidelity}
        if fidelity > 1.0 - config.tolerance:
            phase_free = np.allclose(unitary_first, unitary_second, atol=math_sqrt_tol(config.tolerance))
            criterion = (
                EquivalenceCriterion.EQUIVALENT
                if phase_free
                else EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
            )
            return criterion, details
        return EquivalenceCriterion.NOT_EQUIVALENT, details

    def _simulation(self, first: QuantumCircuit, second: QuantumCircuit):
        config = self.configuration
        passed, details = run_simulative_check(
            first,
            second,
            backend=config.backend,
            num_simulations=config.num_simulations,
            stimuli_type=config.stimuli_type,
            tolerance=config.tolerance,
            seed=config.seed,
            gate_cache=config.gate_cache,
            gate_cache_size=config.gate_cache_size,
            dense_cutoff=config.dense_cutoff,
        )
        criterion = (
            EquivalenceCriterion.PROBABLY_EQUIVALENT
            if passed
            else EquivalenceCriterion.NOT_EQUIVALENT
        )
        return criterion, details

    # ------------------------------------------------------------------
    # verdict helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _dense_gate(instruction: Instruction, num_qubits: int) -> np.ndarray:
        gate = instruction.operation
        assert isinstance(gate, Gate)
        if gate.num_qubits == 0:
            return complex(gate.matrix[0, 0]) * np.eye(1 << num_qubits, dtype=complex)
        return embed_gate_matrix(gate.matrix, instruction.qubits, num_qubits)

    @staticmethod
    def _criterion_from_scalar(scalar: complex | None, tolerance: float) -> EquivalenceCriterion:
        if scalar is None:
            return EquivalenceCriterion.NOT_EQUIVALENT
        if abs(scalar - 1.0) <= tolerance:
            return EquivalenceCriterion.EQUIVALENT
        if abs(abs(scalar) - 1.0) <= tolerance:
            return EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
        return EquivalenceCriterion.NOT_EQUIVALENT

    @staticmethod
    def _criterion_from_matrix(matrix: np.ndarray, tolerance: float) -> EquivalenceCriterion:
        dim = matrix.shape[0]
        identity = np.eye(dim, dtype=complex)
        if np.allclose(matrix, identity, atol=tolerance):
            return EquivalenceCriterion.EQUIVALENT
        scalar = np.trace(matrix) / dim
        if abs(abs(scalar) - 1.0) <= tolerance and np.allclose(
            matrix, scalar * identity, atol=tolerance * 10
        ):
            return EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
        return EquivalenceCriterion.NOT_EQUIVALENT


def math_sqrt_tol(tolerance: float) -> float:
    """Absolute tolerance used for exact (phase-sensitive) matrix comparisons."""
    return max(tolerance, 1e-9)


def check_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    configuration: Configuration | None = None,
    *,
    qubit_permutation: dict[int, int] | None = None,
    **overrides,
) -> EquivalenceCheckResult:
    """Check whether two circuits are functionally equivalent.

    Dynamic circuits are transformed to unitary circuits first (Scheme 1 of
    the paper).  Keyword overrides are forwarded to
    :class:`~repro.core.configuration.Configuration`.

    Examples
    --------
    >>> from repro.circuit import QuantumCircuit
    >>> bell = QuantumCircuit(2); _ = bell.h(0); _ = bell.cx(0, 1)
    >>> same = QuantumCircuit(2); _ = same.h(0); _ = same.cx(0, 1)
    >>> check_equivalence(bell, same).equivalent
    True
    """
    checker = EquivalenceChecker(configuration, **overrides)
    return checker.run(first, second, qubit_permutation=qubit_permutation)


#: Short alias mirroring the naming of the QCEC command-line tool.
verify = check_equivalence


def check_behavioural_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    initial_state: "str | int | None" = None,
    *,
    backend: str = "statevector",
    tolerance: float = 1e-7,
    prune_threshold: float = 1e-12,
) -> EquivalenceCheckResult:
    """Check whether two circuits produce the same outcome distribution.

    This is Scheme 2 of the paper: for the fixed ``initial_state`` the
    complete measurement-outcome distribution of each circuit is extracted via
    branching classical simulation and the two distributions are compared by
    total-variation distance.  Both circuits may freely contain dynamic
    primitives; they must measure the same number of classical bits.
    """
    if first.num_clbits != second.num_clbits:
        raise EquivalenceCheckingError(
            "the circuits measure different numbers of classical bits "
            f"({first.num_clbits} vs {second.num_clbits})"
        )
    start = time.perf_counter()
    first_result = extract_distribution(
        first, initial_state, backend=backend, prune_threshold=prune_threshold
    )
    second_result = extract_distribution(
        second, initial_state, backend=backend, prune_threshold=prune_threshold
    )
    distance = total_variation_distance(first_result.distribution, second_result.distribution)
    fidelity = classical_fidelity(first_result.distribution, second_result.distribution)
    time_check = time.perf_counter() - start

    criterion = (
        EquivalenceCriterion.PROBABLY_EQUIVALENT
        if distance <= tolerance
        else EquivalenceCriterion.NOT_EQUIVALENT
    )
    details = {
        "total_variation_distance": distance,
        "classical_fidelity": fidelity,
        "distribution_first": first_result.distribution,
        "distribution_second": second_result.distribution,
        "num_paths_first": first_result.num_paths,
        "num_paths_second": second_result.num_paths,
        "time_extract_first": first_result.time_taken,
        "time_extract_second": second_result.time_taken,
    }
    return EquivalenceCheckResult(
        criterion=criterion,
        method="distribution",
        backend=backend,
        time_transformation=0.0,
        time_check=time_check,
        details=details,
    )
