"""Equivalence checking of quantum circuits.

The functional flow mirrors QCEC: it decides whether two circuits realize the
same unitary ``U =? U'`` by building ``E = U * U'^dagger`` — either in one go
(``construction``) or gate by gate from both sides (``alternating``), keeping
``E`` close to the identity for equivalent circuits — or by comparing the
circuits on random stimuli (``simulation``) or on their measurement-outcome
distributions (``distribution``).

The strategies themselves live as pluggable :class:`~repro.core.checkers.base.Checker`
classes in :mod:`repro.core.checkers` and are resolved by name through the
checker registry — this module only orchestrates one run: Scheme-1
transformation of dynamic circuits (skipped for Scheme-2 checkers, which
handle dynamic primitives natively), qubit permutation, dispatch, timing and
result wrapping.

Dynamic circuits (containing resets, mid-circuit measurements or
classically-controlled operations) are handled exactly as the paper proposes:

* :func:`check_equivalence` first applies Scheme 1
  (:func:`~repro.core.transformation.to_unitary_circuit`) so that the
  functional flow can be used unchanged, and
* :func:`check_behavioural_equivalence` applies Scheme 2
  (:func:`~repro.core.extraction.extract_distribution`) and compares the
  measurement-outcome distributions for a fixed input state.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.circuit.circuit import QuantumCircuit
from repro.core import checkers as checker_registry
from repro.core.configuration import Configuration
from repro.core.distributions import classical_fidelity, total_variation_distance
from repro.core.extraction import extract_distribution
from repro.core.results import EquivalenceCheckResult, EquivalenceCriterion
from repro.core.transformation import permute_qubits, to_unitary_circuit
from repro.exceptions import EquivalenceCheckingError

__all__ = [
    "EquivalenceChecker",
    "check_behavioural_equivalence",
    "check_equivalence",
    "verify",
]


class EquivalenceChecker:
    """Configurable equivalence checker for static and dynamic circuits.

    Resolves the configured ``method`` through the checker registry
    (:mod:`repro.core.checkers`), so registered third-party checkers work
    here exactly like the built-in ones.
    """

    def __init__(self, configuration: Configuration | None = None, **overrides):
        configuration = configuration or Configuration()
        if overrides:
            configuration = configuration.updated(**overrides)
        self.configuration = configuration

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None = None,
        interrupt: Callable[[], bool] | None = None,
    ) -> EquivalenceCheckResult:
        """Check whether ``first`` and ``second`` realize the same unitary.

        ``qubit_permutation`` optionally relabels the qubits of ``second``
        before the comparison (``{old: new}``) — useful when a reconstructed
        dynamic circuit enumerates its fresh qubits in a different order than
        the static reference.  ``interrupt`` is a cancellation probe polled
        by the checker between expensive steps (see
        :class:`~repro.core.checkers.base.Checker`).
        """
        config = self.configuration
        checker_cls = checker_registry.resolve(config.method)
        time_transformation = 0.0

        first_prepared = first
        second_prepared = second
        if not checker_cls.scheme_two and (first.is_dynamic or second.is_dynamic):
            if not config.transform_dynamic:
                raise EquivalenceCheckingError(
                    "the circuits contain non-unitary operations and transform_dynamic "
                    "is disabled; enable it or use check_behavioural_equivalence"
                )
            if first.is_dynamic:
                transformation = to_unitary_circuit(first)
                first_prepared = transformation.circuit
                time_transformation += transformation.time_taken
            if second.is_dynamic:
                transformation = to_unitary_circuit(second)
                second_prepared = transformation.circuit
                time_transformation += transformation.time_taken

        if qubit_permutation is not None:
            second_prepared = permute_qubits(second_prepared, qubit_permutation)

        if not checker_cls.scheme_two and (
            first_prepared.num_qubits != second_prepared.num_qubits
        ):
            raise EquivalenceCheckingError(
                "after unitary reconstruction the circuits act on different numbers of "
                f"qubits ({first_prepared.num_qubits} vs {second_prepared.num_qubits}); "
                "they do not have the same primary inputs/outputs"
            )

        start = time.perf_counter()
        outcome = checker_cls().check(
            first_prepared, second_prepared, config, interrupt=interrupt
        )
        time_check = time.perf_counter() - start

        return EquivalenceCheckResult(
            criterion=outcome.criterion,
            method=config.method,
            backend=config.backend,
            strategy=config.strategy if checker_cls.uses_strategy else None,
            time_transformation=time_transformation,
            time_check=time_check,
            details=outcome.details,
        )


def check_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    configuration: Configuration | None = None,
    *,
    qubit_permutation: dict[int, int] | None = None,
    **overrides,
) -> EquivalenceCheckResult:
    """Check whether two circuits are functionally equivalent.

    Dynamic circuits are transformed to unitary circuits first (Scheme 1 of
    the paper).  Keyword overrides are forwarded to
    :class:`~repro.core.configuration.Configuration`.

    Examples
    --------
    >>> from repro.circuit import QuantumCircuit
    >>> bell = QuantumCircuit(2); _ = bell.h(0); _ = bell.cx(0, 1)
    >>> same = QuantumCircuit(2); _ = same.h(0); _ = same.cx(0, 1)
    >>> check_equivalence(bell, same).equivalent
    True
    """
    checker = EquivalenceChecker(configuration, **overrides)
    return checker.run(first, second, qubit_permutation=qubit_permutation)


#: Short alias mirroring the naming of the QCEC command-line tool.
verify = check_equivalence


def check_behavioural_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    initial_state: "str | int | None" = None,
    *,
    backend: str = "statevector",
    tolerance: float = 1e-7,
    prune_threshold: float = 1e-12,
) -> EquivalenceCheckResult:
    """Check whether two circuits produce the same outcome distribution.

    This is Scheme 2 of the paper: for the fixed ``initial_state`` the
    complete measurement-outcome distribution of each circuit is extracted via
    branching classical simulation and the two distributions are compared by
    total-variation distance.  Both circuits may freely contain dynamic
    primitives; they must measure the same number of classical bits.

    The portfolio counterpart is the registered ``distribution`` checker
    (:class:`~repro.core.checkers.distribution.DistributionChecker`); this
    function additionally exposes the initial state, extraction backend and
    pruning knobs.
    """
    if first.num_clbits != second.num_clbits:
        raise EquivalenceCheckingError(
            "the circuits measure different numbers of classical bits "
            f"({first.num_clbits} vs {second.num_clbits})"
        )
    start = time.perf_counter()
    first_result = extract_distribution(
        first, initial_state, backend=backend, prune_threshold=prune_threshold
    )
    second_result = extract_distribution(
        second, initial_state, backend=backend, prune_threshold=prune_threshold
    )
    distance = total_variation_distance(first_result.distribution, second_result.distribution)
    fidelity = classical_fidelity(first_result.distribution, second_result.distribution)
    time_check = time.perf_counter() - start

    criterion = (
        EquivalenceCriterion.PROBABLY_EQUIVALENT
        if distance <= tolerance
        else EquivalenceCriterion.NOT_EQUIVALENT
    )
    details = {
        "total_variation_distance": distance,
        "classical_fidelity": fidelity,
        "distribution_first": first_result.distribution,
        "distribution_second": second_result.distribution,
        "num_paths_first": first_result.num_paths,
        "num_paths_second": second_result.num_paths,
        "time_extract_first": first_result.time_taken,
        "time_extract_second": second_result.time_taken,
    }
    return EquivalenceCheckResult(
        criterion=criterion,
        method="distribution",
        backend=backend,
        time_transformation=0.0,
        time_check=time_check,
        details=details,
    )
