"""Scheme 2: extracting the measurement-outcome distribution by simulation
(Section 5).

A dynamic circuit cannot be simulated deterministically in one go — each
measurement or reset is a non-unitary branching point.  The extraction scheme
simulates the circuit *once per branch*: at every mid-circuit measurement the
probabilities of the measured qubit are check-pointed and the simulation
splits into a |0>-successor and a |1>-successor; resets and
classically-controlled operations after the split become deterministic.  The
probability of a classical outcome is the product of the check-pointed
probabilities along its path (Fig. 4 of the paper).

Two properties keep this tractable in practice:

* branches whose check-pointed probability is (numerically) zero are pruned
  immediately, and
* the simulation prefix up to the k-th checkpoint is shared by all of its
  descendants — each instruction is applied once per *live* branch, never once
  per leaf.

Both the dense statevector backend and the decision-diagram backend can drive
the scheme; the DD backend is what makes the large sparse benchmark instances
(Bernstein-Vazirani, QPE) feasible.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import ExtractionError
from repro.simulators.dd_simulator import DDState
from repro.simulators.statevector import Statevector
from repro.utils.bits import format_bitstring

__all__ = ["ExtractionResult", "extract_distribution"]

_BACKENDS = ("statevector", "dd")


@dataclass
class ExtractionResult:
    """Outcome of :func:`extract_distribution`.

    Attributes
    ----------
    distribution:
        Maps most-significant-first classical bitstrings to probabilities.
    num_paths:
        Number of simulation paths that reached the end of the circuit (the
        ``2**m`` worst case of the paper, usually far fewer thanks to pruning).
    num_pruned:
        Number of branches discarded because their probability fell below the
        pruning threshold.
    num_branch_points:
        Number of measurement/reset branching points encountered.
    backend:
        ``statevector`` or ``dd``.
    time_taken:
        Wall-clock seconds (``t_extract`` in Table 1).
    """

    distribution: dict[str, float] = field(default_factory=dict)
    num_paths: int = 0
    num_pruned: int = 0
    num_branch_points: int = 0
    backend: str = "statevector"
    time_taken: float = 0.0

    def probability(self, bitstring: str) -> float:
        """Probability of one outcome (0.0 when absent)."""
        return self.distribution.get(bitstring, 0.0)

    def total_probability(self) -> float:
        """Sum of all extracted probabilities (should be ~1)."""
        return sum(self.distribution.values())


@dataclass
class _Branch:
    """One live simulation branch."""

    state: "Statevector | DDState"
    classical: list[int]
    probability: float


def _initial_state(
    backend: str, num_qubits: int, initial_state: "str | int | None"
) -> "Statevector | DDState":
    if backend == "statevector":
        if initial_state is None:
            return Statevector.zero_state(num_qubits)
        if isinstance(initial_state, str):
            return Statevector.from_bitstring(initial_state)
        return Statevector.basis_state(num_qubits, int(initial_state))
    if initial_state is None:
        return DDState.zero_state(num_qubits)
    if isinstance(initial_state, str):
        return DDState.from_bitstring(initial_state)
    return DDState.basis_state(num_qubits, int(initial_state))


def extract_distribution(
    circuit: QuantumCircuit,
    initial_state: "str | int | None" = None,
    *,
    backend: str = "statevector",
    prune_threshold: float = 1e-12,
    max_paths: int | None = None,
    interrupt: "Callable[[], bool] | None" = None,
) -> ExtractionResult:
    """Extract the complete measurement-outcome distribution of ``circuit``.

    Parameters
    ----------
    circuit:
        A static or dynamic circuit; its classical bits define the outcome
        bitstrings.
    initial_state:
        Fixed input state — ``None`` for |0...0>, an integer basis state, or a
        most-significant-first bitstring (e.g. ``"0001"`` for the IQPE running
        example whose eigenstate qubit is prepared in |1> by the circuit
        itself, so usually ``None`` suffices).
    backend:
        ``statevector`` (dense numpy) or ``dd`` (decision diagrams).
    prune_threshold:
        Branches whose accumulated probability drops below this value are
        discarded (the paper's "probability of zero" pruning, made robust
        against floating-point noise).
    max_paths:
        Optional safety limit on the number of live branches; exceeded limits
        raise :class:`~repro.exceptions.ExtractionError`.
    interrupt:
        Optional cancellation probe polled between instructions (see
        :class:`repro.core.checkers.base.Checker`); when it fires the
        extraction raises ``CheckerInterrupted`` instead of finishing on an
        abandoned thread.

    Returns
    -------
    ExtractionResult
        The exact outcome distribution plus bookkeeping about the extraction.
    """
    if backend not in _BACKENDS:
        raise ExtractionError(f"unknown backend {backend!r}; choose from {_BACKENDS}")
    if circuit.num_clbits == 0:
        raise ExtractionError(
            "the circuit has no classical bits; there is no measurement-outcome "
            "distribution to extract"
        )

    start = time.perf_counter()
    branches = [
        _Branch(
            state=_initial_state(backend, circuit.num_qubits, initial_state),
            classical=[0] * circuit.num_clbits,
            probability=1.0,
        )
    ]
    num_pruned = 0
    num_branch_points = 0

    for instruction in circuit:
        if interrupt is not None and interrupt():
            from repro.core.checkers.base import CheckerInterrupted

            raise CheckerInterrupted
        if instruction.is_barrier:
            continue

        if instruction.is_measurement:
            num_branch_points += 1
            qubit = instruction.qubits[0]
            clbit = instruction.clbits[0]
            new_branches: list[_Branch] = []
            for branch in branches:
                probability_one = branch.state.probability_of_one(qubit)
                for outcome, outcome_probability in ((0, 1.0 - probability_one), (1, probability_one)):
                    path_probability = branch.probability * outcome_probability
                    if path_probability <= prune_threshold:
                        num_pruned += 1
                        continue
                    collapsed = branch.state.collapse(qubit, outcome, outcome_probability)
                    classical = list(branch.classical)
                    classical[clbit] = outcome
                    new_branches.append(_Branch(collapsed, classical, path_probability))
            branches = new_branches
        elif instruction.is_reset:
            num_branch_points += 1
            qubit = instruction.qubits[0]
            new_branches = []
            for branch in branches:
                # Each branch carries concrete classical values, so a
                # classically-conditioned reset simply applies per branch.
                if instruction.condition is not None and not instruction.condition.is_satisfied(
                    branch.classical
                ):
                    new_branches.append(branch)
                    continue
                for outcome_probability, reset_state in branch.state.reset_qubit_outcomes(qubit):
                    path_probability = branch.probability * outcome_probability
                    if path_probability <= prune_threshold:
                        num_pruned += 1
                        continue
                    new_branches.append(
                        _Branch(reset_state, list(branch.classical), path_probability)
                    )
            branches = new_branches
        else:
            for branch in branches:
                if instruction.condition is not None and not instruction.condition.is_satisfied(
                    branch.classical
                ):
                    continue
                if instruction.condition is not None:
                    unconditioned = instruction.replace(drop_condition=True)
                    branch.state = branch.state.apply_instruction(unconditioned)
                else:
                    branch.state = branch.state.apply_instruction(instruction)

        if max_paths is not None and len(branches) > max_paths:
            raise ExtractionError(
                f"extraction exceeded the configured limit of {max_paths} simulation paths"
            )
        if not branches:
            raise ExtractionError(
                "all simulation branches were pruned; the pruning threshold is too aggressive"
            )

    distribution: dict[str, float] = {}
    for branch in branches:
        key = format_bitstring(branch.classical)
        distribution[key] = distribution.get(key, 0.0) + branch.probability

    return ExtractionResult(
        distribution=distribution,
        num_paths=len(branches),
        num_pruned=num_pruned,
        num_branch_points=num_branch_points,
        backend=backend,
        time_taken=time.perf_counter() - start,
    )
