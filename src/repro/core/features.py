"""Circuit feature extraction for portfolio scheduling.

The adaptive scheduler (:mod:`repro.core.scheduler`) decides checker order
and budgets from cheap structural features of the circuit pair — never from
simulating them.  :func:`extract_features` collects the counts, gate-type
diversity, dynamic-primitive flags and the per-instruction signature stream
in a single pass over the instructions (depth is delegated to
:meth:`~repro.circuit.circuit.QuantumCircuit.depth` so the two never drift);
:func:`extract_pair_features` adds pair-level features such as the
positional structural similarity of the two gate streams.

All feature types are plain frozen dataclasses: picklable (they travel inside
scheduling decisions to process-pool workers) and JSON-friendly via
``to_dict`` (they are recorded in
:class:`~repro.core.results.PortfolioResult`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit

__all__ = [
    "CircuitFeatures",
    "PairFeatures",
    "circuit_features",
    "extract_features",
    "extract_pair_features",
]


@dataclass(frozen=True)
class CircuitFeatures:
    """Structural features of one circuit, collected in a single pass.

    ``num_gates`` counts unitary gate instructions (conditioned or not);
    barriers are ignored throughout.  ``gate_types`` is the sorted tuple of
    distinct gate names, the basis of the diversity features.
    """

    num_qubits: int
    num_clbits: int
    num_gates: int
    num_two_qubit_gates: int
    num_measurements: int
    num_resets: int
    num_classically_controlled: int
    num_conditioned_resets: int
    depth: int
    gate_types: tuple[str, ...]
    has_mid_circuit_measurement: bool

    @property
    def num_gate_types(self) -> int:
        return len(self.gate_types)

    @property
    def gate_diversity(self) -> float:
        """Distinct gate types per gate — 0 for an empty circuit, up to 1."""
        return self.num_gate_types / self.num_gates if self.num_gates else 0.0

    @property
    def two_qubit_ratio(self) -> float:
        """Fraction of gates acting on two or more qubits."""
        return self.num_two_qubit_gates / self.num_gates if self.num_gates else 0.0

    @property
    def is_dynamic(self) -> bool:
        """Mirrors :attr:`QuantumCircuit.is_dynamic` (from the same pass)."""
        return bool(
            self.num_resets
            or self.num_classically_controlled
            or self.has_mid_circuit_measurement
        )

    @property
    def needs_scheme_two(self) -> bool:
        """Whether Scheme-1 unitary reconstruction is impossible.

        Classically-conditioned resets cannot be rewired onto fresh qubits
        (:func:`~repro.core.transformation.substitute_resets` raises), so the
        pair can only be compared behaviourally.
        """
        return self.num_conditioned_resets > 0

    def to_dict(self) -> dict:
        """JSON-friendly view, including the derived ratios."""
        return {
            "num_qubits": self.num_qubits,
            "num_clbits": self.num_clbits,
            "num_gates": self.num_gates,
            "num_two_qubit_gates": self.num_two_qubit_gates,
            "num_measurements": self.num_measurements,
            "num_resets": self.num_resets,
            "num_classically_controlled": self.num_classically_controlled,
            "num_conditioned_resets": self.num_conditioned_resets,
            "depth": self.depth,
            "num_gate_types": self.num_gate_types,
            "gate_diversity": self.gate_diversity,
            "two_qubit_ratio": self.two_qubit_ratio,
            "is_dynamic": self.is_dynamic,
            "needs_scheme_two": self.needs_scheme_two,
        }


def _signature(instruction) -> tuple:
    """Positional fingerprint of one instruction for similarity comparison."""
    operation = instruction.operation
    params = tuple(
        round(p, 9) if isinstance(p, (int, float)) else str(p)
        for p in getattr(operation, "params", ())
    )
    condition = instruction.condition
    condition_key = (
        (condition.clbits, condition.bit_values) if condition is not None else None
    )
    return (operation.name, params, instruction.qubits, instruction.clbits, condition_key)


def extract_features(
    circuit: QuantumCircuit,
) -> tuple[CircuitFeatures, list[tuple]]:
    """Extract :class:`CircuitFeatures` plus the signature stream, one pass.

    The signature stream (one fingerprint per non-barrier instruction, in
    order) is returned alongside so pair-level similarity never needs a
    second scan; use :func:`circuit_features` when only the features matter.
    """
    num_gates = 0
    num_two_qubit = 0
    num_measurements = 0
    num_resets = 0
    num_conditioned = 0
    num_conditioned_resets = 0
    gate_types: set[str] = set()
    signatures: list[tuple] = []
    measured: set[int] = set()
    mid_circuit_measurement = False

    for instruction in circuit:
        if instruction.is_barrier:
            continue
        signatures.append(_signature(instruction))

        if instruction.condition is not None:
            num_conditioned += 1
            if instruction.is_reset:
                num_conditioned_resets += 1
        if instruction.is_gate:
            num_gates += 1
            gate_types.add(instruction.operation.name)
            if len(instruction.qubits) >= 2:
                num_two_qubit += 1
        elif instruction.is_measurement:
            num_measurements += 1
            measured.add(instruction.qubits[0])
        elif instruction.is_reset:
            num_resets += 1
        # Mirrors the measured-qubit rule of QuantumCircuit.is_dynamic: any
        # non-measurement touching an already-measured qubit is mid-circuit.
        if not instruction.is_measurement and measured.intersection(instruction.qubits):
            mid_circuit_measurement = True

    features = CircuitFeatures(
        num_qubits=circuit.num_qubits,
        num_clbits=circuit.num_clbits,
        num_gates=num_gates,
        num_two_qubit_gates=num_two_qubit,
        num_measurements=num_measurements,
        num_resets=num_resets,
        num_classically_controlled=num_conditioned,
        num_conditioned_resets=num_conditioned_resets,
        depth=circuit.depth(),
        gate_types=tuple(sorted(gate_types)),
        has_mid_circuit_measurement=mid_circuit_measurement,
    )
    return features, signatures


def circuit_features(circuit: QuantumCircuit) -> CircuitFeatures:
    """The :class:`CircuitFeatures` of one circuit (signature stream dropped)."""
    features, _ = extract_features(circuit)
    return features


@dataclass(frozen=True)
class PairFeatures:
    """Features of a circuit *pair*, the scheduler's actual input."""

    first: CircuitFeatures
    second: CircuitFeatures
    structural_similarity: float
    qubit_counts_match: bool
    clbit_counts_match: bool

    @property
    def gate_count_ratio(self) -> float:
        """min/max gate-count ratio — 1.0 for equally long circuits."""
        low = min(self.first.num_gates, self.second.num_gates)
        high = max(self.first.num_gates, self.second.num_gates)
        return low / high if high else 1.0

    @property
    def any_dynamic(self) -> bool:
        return self.first.is_dynamic or self.second.is_dynamic

    @property
    def needs_scheme_two(self) -> bool:
        return self.first.needs_scheme_two or self.second.needs_scheme_two

    @property
    def comparable_distributions(self) -> bool:
        """Whether the Scheme-2 distribution checker can run on this pair."""
        return (
            self.clbit_counts_match
            and self.first.num_clbits > 0
            and self.first.num_measurements > 0
            and self.second.num_measurements > 0
        )

    @property
    def gate_diversity(self) -> float:
        return max(self.first.gate_diversity, self.second.gate_diversity)

    @property
    def gate_sets_match(self) -> bool:
        """Whether both circuits use the same set of gate names.

        False is the signature of a *translated* pair (same logic, different
        basis) — exactly the workload the library-driven ``rewrite`` checker
        reduces to identity cheaply, so the adaptive scheduler front-loads it
        when this is False.
        """
        return self.first.gate_types == self.second.gate_types

    def to_dict(self) -> dict:
        return {
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "structural_similarity": self.structural_similarity,
            "gate_count_ratio": self.gate_count_ratio,
            "qubit_counts_match": self.qubit_counts_match,
            "clbit_counts_match": self.clbit_counts_match,
            "any_dynamic": self.any_dynamic,
            "needs_scheme_two": self.needs_scheme_two,
            "gate_sets_match": self.gate_sets_match,
        }


def extract_pair_features(
    first: QuantumCircuit, second: QuantumCircuit
) -> PairFeatures:
    """Extract the pair-level feature vector the scheduler consumes.

    ``structural_similarity`` is the fraction of positions at which the two
    instruction streams carry an identical fingerprint (gate name, rounded
    parameters, operand wires), over the longer stream: 1.0 for identical
    builds, near 0 for structurally unrelated circuits.
    """
    features_first, signatures_first = extract_features(first)
    features_second, signatures_second = extract_features(second)
    longest = max(len(signatures_first), len(signatures_second))
    if longest == 0:
        similarity = 1.0
    else:
        matches = sum(
            1 for a, b in zip(signatures_first, signatures_second) if a == b
        )
        similarity = matches / longest
    return PairFeatures(
        first=features_first,
        second=features_second,
        structural_similarity=similarity,
        qubit_counts_match=first.num_qubits == second.num_qubits,
        clbit_counts_match=first.num_clbits == second.num_clbits,
    )
