"""Portfolio equivalence-checking manager.

Single-method runs (:func:`~repro.core.equivalence.check_equivalence`) make
the caller commit to one checker up front.  Real equivalence-checking tools
such as QCEC instead run a *portfolio* of complementary checkers and stop as
soon as any of them is definitive:

* ``simulation`` (and ``distribution``) are fast *falsifiers* — a single
  mismatching stimulus or outcome distribution proves non-equivalence,
  usually long before a functional check would finish, but a pass only
  yields ``PROBABLY_EQUIVALENT``;
* ``alternating`` (and ``construction``) are *provers* — they decide
  equivalence definitively, at higher cost.

Which checkers run, in which order and with which budgets is decided per
pair by a :class:`~repro.core.scheduler.PortfolioScheduler`
(``Configuration.scheduler``): ``static`` replays the configured portfolio
verbatim, ``adaptive`` reorders it from circuit features (and routes
conditioned-reset pairs to the Scheme-2 ``distribution`` checker, which the
Scheme-1 checkers cannot decide).  :class:`EquivalenceCheckingManager` runs
the scheduled lineup with per-checker and overall wall-clock budgets,
terminates early on the first definitive verdict, and records the schedule,
the feature vector and which checker decided in a
:class:`~repro.core.results.PortfolioResult`.  For scale,
:meth:`EquivalenceCheckingManager.verify_batch` verifies many circuit pairs
concurrently — on a thread pool (``executor="thread"``) or, since the DD
checkers are pure-Python CPU work and therefore GIL-bound, on a process pool
(``executor="process"``) fed with pickled work units from
:mod:`repro.core.workers` — isolating per-pair failures and aggregating
statistics in a :class:`~repro.core.results.BatchResult` either way.

Example
-------
>>> from repro.circuit import QuantumCircuit
>>> from repro.core.manager import EquivalenceCheckingManager
>>> a = QuantumCircuit(2); _ = a.h(0); _ = a.cx(0, 1)
>>> b = QuantumCircuit(2); _ = b.h(0); _ = b.cx(0, 1)
>>> manager = EquivalenceCheckingManager(seed=1)
>>> manager.run(a, b).equivalent
True
"""

from __future__ import annotations

import concurrent.futures
import contextvars
import random
import threading
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import replace

from repro.circuit.circuit import QuantumCircuit
from repro.core import checkers as checker_registry
from repro.core.checkers.base import CheckerInterrupted
from repro.core.configuration import Configuration
from repro.core.equivalence import EquivalenceChecker
from repro.core.results import (
    BatchEntry,
    BatchResult,
    CheckerAttempt,
    EquivalenceCriterion,
    PortfolioResult,
)
from repro.core.scheduler import Schedule, deprioritize, resolve_scheduler
from repro.core.transformation import to_unitary_circuit
from repro.core.workers import BatchWorkUnit, chunk_pairs, verify_work_unit
from repro.obs import trace
from repro.obs.logs import fields, get_logger
from repro.resilience.breaker import BreakerBoard
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy

_log = get_logger("core.manager")

__all__ = [
    "DEFAULT_PORTFOLIO",
    "EquivalenceCheckingManager",
    "verify_batch",
    "verify_portfolio",
]

#: Default checker line-up: falsify fast, then prove.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("simulation", "alternating")

#: Criteria that terminate the portfolio regardless of which checker produced
#: them.  ``PROBABLY_EQUIVALENT`` (a passing simulation) is *not* definitive —
#: a later functional checker may still prove or refute equivalence.
_DEFINITIVE = (
    EquivalenceCriterion.EQUIVALENT,
    EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    EquivalenceCriterion.NOT_EQUIVALENT,
)

#: Ranking of non-definitive criteria: when no checker is definitive the
#: portfolio falls back to the *best* indicative verdict seen, in this order
#: (higher is better).  A ``NO_INFORMATION`` from an early checker must never
#: shadow a later ``PROBABLY_EQUIVALENT``.
_INDICATIVE_RANK = {
    EquivalenceCriterion.NO_INFORMATION: 0,
    EquivalenceCriterion.PROBABLY_EQUIVALENT: 1,
}


class EquivalenceCheckingManager:
    """Run a scheduled portfolio of equivalence checkers with early termination.

    Configuration knobs (see :class:`~repro.core.configuration.Configuration`):
    ``portfolio`` selects the checkers (default :data:`DEFAULT_PORTFOLIO`),
    ``scheduler`` decides their per-pair order and budget splits,
    ``checker_timeout`` bounds each checker, ``timeout`` bounds the whole
    run, and ``max_workers`` sizes the worker pool of :meth:`verify_batch`.
    """

    def __init__(
        self,
        configuration: Configuration | None = None,
        *,
        cache=None,
        **overrides,
    ):
        configuration = configuration or Configuration()
        if overrides:
            configuration = configuration.updated(**overrides)
        self.configuration = configuration
        self._scheduler = resolve_scheduler(configuration.scheduler)()
        # Fault injection (repro.resilience.faults): a no-op unless the
        # configuration carries an explicit plan (chaos tests only).  Built
        # before the cache so journal-site faults can hook its writes.
        self.fault_injector = FaultInjector(configuration.fault_plan)
        # The verdict cache is shared mutable state: callers that manage
        # several managers (the job-queue server, tests) can inject one
        # instance via ``cache=``; otherwise the manager builds its own from
        # the configuration.  Imported lazily — repro.service sits on top of
        # this module.
        if cache is not None:
            self.verdict_cache = cache
        elif configuration.cache_enabled:
            from repro.service.cache import VerdictCache

            self.verdict_cache = VerdictCache(
                max_entries=configuration.cache_size,
                path=configuration.cache_path,
                write_hook=(
                    self.fault_injector.hook("journal", "verdict_cache")
                    if self.fault_injector.active
                    else None
                ),
            )
        else:
            self.verdict_cache = None
        # Optional MetricsRegistry (repro.service.metrics): when set, the
        # manager observes per-checker latency histograms and run-outcome
        # counters into it.  The verification service wires its registry in;
        # plain in-process managers run unmetered.
        self.metrics = None
        # Per-checker circuit breakers (repro.resilience.breaker): a checker
        # that keeps crashing or timing out is quarantined and the portfolio
        # degrades to the remaining checkers.  Shared across the thread batch
        # pool (the board is thread-safe); process workers rebuild their own
        # managers and hence keep per-process boards.
        self.breakers = (
            BreakerBoard(
                configuration.breaker_threshold, configuration.breaker_cooldown
            )
            if configuration.breaker_threshold is not None
            else None
        )
        # Run-telemetry journal (repro.obs.telemetry): one crash-safe record
        # per settled run — features, schedule, per-checker timings, verdict,
        # cache provenance — the training substrate for a learned scheduler.
        if configuration.telemetry_path is not None:
            from repro.obs.telemetry import TelemetryJournal

            self.telemetry = TelemetryJournal(
                configuration.telemetry_path,
                write_hook=(
                    self.fault_injector.hook("journal", "telemetry")
                    if self.fault_injector.active
                    else None
                ),
            )
        else:
            self.telemetry = None
        self._batch_stats_lock = threading.Lock()
        self._batch_stats = {
            "pool_rebuilds": 0,
            "unit_retries": 0,
            "unit_bisections": 0,
            "abandoned_units": 0,
        }
        # Per-checker decision-diagram cache statistics accumulated across
        # runs — fed from in-process attempts and from process-pool work-unit
        # results (whose worker-side state dies with the pool).
        self._dd_stats_lock = threading.Lock()
        self._dd_stats: dict[str, dict] = {}

    @property
    def portfolio(self) -> tuple[str, ...]:
        """The configured checker pool (the scheduler orders it per pair)."""
        return self.configuration.portfolio or DEFAULT_PORTFOLIO

    # ------------------------------------------------------------------
    # single pair
    # ------------------------------------------------------------------

    def schedule_for(
        self, first: QuantumCircuit, second: QuantumCircuit
    ) -> Schedule:
        """The scheduler's lineup for one pair (without running anything)."""
        return self._scheduler.build(first, second, self.configuration)

    def run(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None = None,
        schedule: Schedule | None = None,
        fingerprint: str | None = None,
    ) -> PortfolioResult:
        """Check one circuit pair with the scheduled checker lineup.

        Checkers run in schedule order; the first definitive verdict
        (``EQUIVALENT``, ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` or
        ``NOT_EQUIVALENT``) terminates the run and the remaining checkers are
        skipped.  A checker that raises or exceeds its time budget is recorded
        and the next checker gets its turn.  When no checker is definitive the
        final criterion falls back to the best indicative one
        (``PROBABLY_EQUIVALENT`` from a passing behavioural check) or
        ``NO_INFORMATION``.

        ``schedule`` injects a precomputed scheduling decision (the
        process-pool batch path ships pickled schedules so workers and parent
        agree); by default the configured scheduler decides here.

        With the verdict cache enabled (``Configuration.verdict_cache`` /
        ``cache_path``), the pair's fingerprint is consulted *before* any
        scheduling: a hit returns the stored verdict (``result.cached`` is
        True) without running a single checker, and a conclusive fresh run is
        stored for next time.  Permuted runs and runs with an injected
        ``schedule`` bypass the cache entirely — the fingerprint commits to
        neither, so serving or storing them could cross verdicts between
        different checks.  ``fingerprint`` injects a key the caller already
        computed with :func:`~repro.service.fingerprint.pair_fingerprint`
        for this pair under this configuration (the job-queue server
        fingerprints every submission for dedup; recomputing here would
        double the dominant cost of a cache hit).
        """
        with trace.span(
            "manager.run",
            first=getattr(first, "name", None),
            second=getattr(second, "name", None),
        ) as run_span:
            result, fingerprint = self._run_cached(
                first,
                second,
                qubit_permutation=qubit_permutation,
                schedule=schedule,
                fingerprint=fingerprint,
            )
            run_span.set_attr("criterion", result.criterion.value)
            if result.cached:
                run_span.set_attr("cached_via", result.cached_via)
            self._record_telemetry(result, fingerprint)
            return result

    def _run_cached(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None,
        schedule: Schedule | None,
        fingerprint: str | None,
    ) -> tuple[PortfolioResult, str | None]:
        """Cache consult + portfolio run; returns the usable fingerprint too."""
        if qubit_permutation is not None or schedule is not None:
            fingerprint = None
        elif fingerprint is not None and not self._fingerprints_sound():
            # A caller-supplied key cannot be trusted either when the
            # tolerance out-resolves the canonical form.
            fingerprint = None
        elif self.verdict_cache is not None and fingerprint is None:
            fingerprint = self._pair_fingerprint(first, second)
        canonical_fingerprint: str | None = None
        if self.verdict_cache is not None and fingerprint is not None:
            with trace.span("cache.lookup", tier="fingerprint") as lookup_span:
                cached = self.verdict_cache.get(fingerprint)
                lookup_span.set_attr("hit", cached is not None)
            if cached is not None:
                self._count_run("cache_hit")
                return replace(cached, cached_via="fingerprint"), fingerprint
            # Second tier: the translation-level-invariant canonical key.  A
            # hit means this pair was verified before at *another* translation
            # level; the verdict fans out to the raw key so future lookups of
            # this exact representation hit directly.
            canonical_fingerprint = self._canonical_pair_fingerprint(first, second)
            if canonical_fingerprint is not None:
                with trace.span("cache.lookup", tier="canonical") as lookup_span:
                    cached = self.verdict_cache.get(canonical_fingerprint)
                    lookup_span.set_attr("hit", cached is not None)
                if cached is not None:
                    self._count_run("canonical_cache_hit")
                    result = replace(cached, cached_via="canonical_fingerprint")
                    self.verdict_cache.put(fingerprint, result)
                    return result, fingerprint
        self._count_run("executed")
        result = self._run_uncached(
            first, second, qubit_permutation=qubit_permutation, schedule=schedule
        )
        if (
            self.verdict_cache is not None
            and fingerprint is not None
            and self._cacheable(result)
        ):
            self.verdict_cache.put(fingerprint, result)
            if canonical_fingerprint is not None:
                self.verdict_cache.put(canonical_fingerprint, result)
        return result, fingerprint

    def _cacheable(self, result: PortfolioResult) -> bool:
        """Whether a fresh result may be stored without risking verdict drift.

        ``PROBABLY_EQUIVALENT`` under ``seed=None`` is a pass of *freshly
        drawn* random stimuli: re-running could legitimately find a
        counterexample, so freezing one lucky pass in the cache would let a
        hit change a verdict.  With a fixed seed the stimuli are part of the
        fingerprint and the verdict is reproducible.  (``NO_INFORMATION`` is
        additionally refused by :meth:`VerdictCache.put` itself.)
        """
        return not (
            result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
            and self.configuration.seed is None
        )

    def _fingerprints_sound(self) -> bool:
        from repro.service.fingerprint import fingerprints_sound_for

        return fingerprints_sound_for(self.configuration)

    def _pair_fingerprint(self, first: QuantumCircuit, second: QuantumCircuit) -> str | None:
        """The pair's cache key, or None when fingerprinting is unavailable.

        Returns None — bypassing the cache rather than failing the
        verification — when a circuit cannot be canonicalized (e.g. an
        exotic third-party operation) or when ``Configuration.tolerance`` is
        at or below the canonical form's angle resolution, where two
        circuits sharing a fingerprint could in principle be told apart.
        """
        from repro.service.fingerprint import pair_fingerprint

        if not self._fingerprints_sound():
            return None
        try:
            return pair_fingerprint(first, second, self.configuration)
        except Exception:  # noqa: BLE001 - cache bypass, never a failure
            return None

    def _canonical_pair_fingerprint(
        self, first: QuantumCircuit, second: QuantumCircuit
    ) -> str | None:
        """The pair's translation-level-invariant cache key, or None.

        Gated by ``Configuration.canonicalize`` and by the soundness check of
        :func:`~repro.service.fingerprint.canonical_pair_fingerprint` (which
        itself returns None for tolerances that out-resolve the canonical
        angle grid or for circuits that cannot be canonicalized).
        """
        if not self.configuration.canonicalize:
            return None
        from repro.service.fingerprint import canonical_pair_fingerprint

        with trace.span("fingerprint.canonical") as canonical_span:
            key = canonical_pair_fingerprint(first, second, self.configuration)
            canonical_span.set_attr(
                "status", "computed" if key is not None else "unavailable"
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_canonical_fingerprints_total",
                "Canonical (translation-level-invariant) fingerprint computations.",
                labelnames=("status",),
            ).inc(status="computed" if key is not None else "unavailable")
        return key

    def _run_uncached(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None = None,
        schedule: Schedule | None = None,
    ) -> PortfolioResult:
        config = self.configuration
        start = time.perf_counter()
        if schedule is None:
            with trace.span("scheduler.decide") as decide_span:
                schedule = self.schedule_for(first, second)
                decide_span.set_attr("scheduler", schedule.scheduler)
                decide_span.set_attr("lineup", ",".join(schedule.checker_names))
                decide_span.set_attr("rationale", schedule.rationale)
        if self.breakers is not None:
            quarantined = self.breakers.quarantined()
            if quarantined:
                # Healthy checkers first; quarantined ones stay in the lineup
                # as a last resort (their breakers may admit a probe, and the
                # overall deadline should be spent on checkers that work).
                schedule = deprioritize(schedule, quarantined)
                trace.add_event("breaker.deprioritize", checkers=list(quarantined))
                _log.info(
                    "quarantined checkers deprioritized",
                    **fields(checkers=list(quarantined)),
                )
        deadline = None if config.timeout is None else start + config.timeout
        attempts: list[CheckerAttempt] = []
        indicative: EquivalenceCriterion | None = None
        indicative_method: str | None = None
        schedule_names = list(schedule.checker_names)
        features_payload = (
            schedule.features.to_dict() if schedule.features is not None else None
        )

        # Transform dynamic circuits to unitary ones once (Scheme 1) and share
        # the result across all Scheme-1 checkers instead of re-transforming
        # per method; Scheme-2 checkers receive the originals.  On failure
        # fall back to the originals so the error surfaces per checker
        # attempt, as it would without the shared transformation.
        original_first, original_second = first, second
        unitary_first, unitary_second = first, second
        if config.transform_dynamic:
            try:
                if first.is_dynamic:
                    unitary_first = to_unitary_circuit(first).circuit
                if second.is_dynamic:
                    unitary_second = to_unitary_circuit(second).circuit
            except Exception:  # noqa: BLE001 - checkers report it per attempt
                pass

        for position, slot in enumerate(schedule.checkers):
            if self.breakers is not None and not self.breakers.allow(slot.name):
                # Breaker open: refuse the call instead of paying for another
                # crash/timeout.  The attempt is recorded so batch statistics
                # and the result's schedule stay honest about what was skipped.
                trace.add_event("checker.quarantined", checker=slot.name)
                attempts.append(
                    self._observe_attempt(
                        CheckerAttempt(
                            method=slot.name,
                            status="quarantined",
                            error="circuit breaker open: checker quarantined",
                        )
                    )
                )
                continue
            budget = slot.budget(config)
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    attempts.extend(
                        CheckerAttempt(method=name, status="skipped")
                        for name in schedule_names[position:]
                    )
                    return PortfolioResult(
                        criterion=indicative or EquivalenceCriterion.NO_INFORMATION,
                        decided_by=None,
                        reason=f"overall timeout of {config.timeout}s exhausted",
                        attempts=attempts,
                        total_time=time.perf_counter() - start,
                        schedule=schedule_names,
                        scheduler=schedule.scheduler,
                        features=features_payload,
                    )
                budget = remaining if budget is None else min(budget, remaining)

            if checker_registry.resolve(slot.name).scheme_two:
                pair = (original_first, original_second)
            else:
                pair = (unitary_first, unitary_second)
            attempt = self._run_checker(slot.name, *pair, qubit_permutation, budget)
            attempts.append(attempt)
            if self.breakers is not None:
                # Crashes and blown budgets both count against the breaker;
                # any completed run (whatever it concluded) heals it.
                self.breakers.record(slot.name, attempt.status == "completed")

            if attempt.result is not None:
                criterion = attempt.result.criterion
                if criterion in _DEFINITIVE:
                    attempts.extend(
                        CheckerAttempt(method=name, status="skipped")
                        for name in schedule_names[position + 1 :]
                    )
                    return PortfolioResult(
                        criterion=criterion,
                        decided_by=slot.name,
                        reason=(
                            f"{slot.name} returned {criterion.value} "
                            f"after {attempt.time_taken:.6f}s"
                        ),
                        attempts=attempts,
                        total_time=time.perf_counter() - start,
                        schedule=schedule_names,
                        scheduler=schedule.scheduler,
                        features=features_payload,
                    )
                rank = _INDICATIVE_RANK.get(criterion, 0)
                if indicative is None or rank > _INDICATIVE_RANK.get(indicative, 0):
                    indicative = criterion
                    indicative_method = slot.name

        if indicative is not None:
            reason = (
                f"no checker was definitive; best indicative verdict "
                f"{indicative.value} from {indicative_method}"
            )
        else:
            reason = "no checker produced a verdict"
        return PortfolioResult(
            criterion=indicative or EquivalenceCriterion.NO_INFORMATION,
            decided_by=None,
            reason=reason,
            attempts=attempts,
            total_time=time.perf_counter() - start,
            schedule=schedule_names,
            scheduler=schedule.scheduler,
            features=features_payload,
        )

    def _run_checker(
        self,
        method: str,
        first: QuantumCircuit,
        second: QuantumCircuit,
        qubit_permutation: dict[int, int] | None,
        budget: float | None,
    ) -> CheckerAttempt:
        """Run one checker attempt inside its trace span."""
        with trace.span("checker.run", checker=method) as checker_span:
            if budget is not None:
                checker_span.set_attr("budget", round(budget, 6))
            attempt = self._run_checker_attempt(
                method, first, second, qubit_permutation, budget
            )
            checker_span.set_attr("status", attempt.status)
            if attempt.result is not None:
                checker_span.set_attr("criterion", attempt.result.criterion.value)
            if attempt.error is not None:
                checker_span.set_attr("error", attempt.error)
            return attempt

    def _run_checker_attempt(
        self,
        method: str,
        first: QuantumCircuit,
        second: QuantumCircuit,
        qubit_permutation: dict[int, int] | None,
        budget: float | None,
    ) -> CheckerAttempt:
        """Run one checker, bounded by ``budget`` seconds (None = unbounded)."""
        checker = EquivalenceChecker(self.configuration.updated(method=method))
        started = time.perf_counter()

        try:
            if budget is None:
                self.fault_injector.fire("checker", method)
                result = checker.run(first, second, qubit_permutation=qubit_permutation)
            else:
                # Python threads cannot be killed; on timeout the worker is
                # abandoned and the portfolio moves on.  The stop flag makes
                # the abandoned checker observe its cancellation between steps
                # and bail out via CheckerInterrupted instead of running to
                # completion — without it, batch runs with tight budgets
                # accumulate daemon threads burning CPU on dead work.
                stop = threading.Event()
                outcome: dict = {}

                def worker():
                    try:
                        # Injected inside the budgeted thread so a "sleep"
                        # fault models a slow checker that blows its budget.
                        self.fault_injector.fire("checker", method)
                        outcome["result"] = checker.run(
                            first,
                            second,
                            qubit_permutation=qubit_permutation,
                            interrupt=stop.is_set,
                        )
                    except CheckerInterrupted:
                        pass  # cancelled after timeout; exit quietly
                    except Exception as error:  # noqa: BLE001 - re-raised below
                        outcome["error"] = error

                thread = threading.Thread(
                    target=worker, name=f"checker-{method}", daemon=True
                )
                thread.start()
                thread.join(timeout=budget)
                if thread.is_alive():
                    stop.set()
                    return self._observe_attempt(
                        CheckerAttempt(
                            method=method,
                            status="timeout",
                            error=f"checker exceeded its budget of {budget:.6f}s",
                            time_taken=time.perf_counter() - started,
                        )
                    )
                if "error" in outcome:
                    raise outcome["error"]
                result = outcome["result"]
            return self._observe_attempt(
                CheckerAttempt(
                    method=method,
                    status="completed",
                    result=result,
                    time_taken=time.perf_counter() - started,
                )
            )
        except Exception as error:  # noqa: BLE001 - isolate checker failures
            return self._observe_attempt(
                CheckerAttempt(
                    method=method,
                    status="error",
                    error=f"{type(error).__name__}: {error}",
                    time_taken=time.perf_counter() - started,
                )
            )

    def _count_run(self, outcome: str) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_manager_runs_total",
            "Pair checks by outcome (cache hit vs. executed portfolio run).",
            labelnames=("outcome",),
        ).inc(outcome=outcome)

    def _observe_attempt(self, attempt: CheckerAttempt) -> CheckerAttempt:
        """Record one checker attempt: DD accumulator, then metrics if any."""
        details = getattr(attempt.result, "details", None)
        if isinstance(details, dict) and "dd_statistics" in details:
            self._accumulate_dd_statistics(attempt.method, details["dd_statistics"])
        if self.metrics is None:
            return attempt
        self.metrics.histogram(
            "repro_checker_latency_seconds",
            "Wall-clock latency of individual checker attempts.",
            labelnames=("checker", "status"),
        ).observe(attempt.time_taken, checker=attempt.method, status=attempt.status)
        if isinstance(details, dict) and "dd_statistics" in details:
            from repro.service.metrics import publish_dd_statistics

            publish_dd_statistics(
                self.metrics, details["dd_statistics"], checker=attempt.method
            )
        if isinstance(details, dict) and "rewrite_statistics" in details:
            from repro.service.metrics import publish_rewrite_statistics

            publish_rewrite_statistics(
                self.metrics, details["rewrite_statistics"], checker=attempt.method
            )
        return attempt

    def _accumulate_dd_statistics(self, checker: str, statistics: dict) -> None:
        from repro.service.metrics import merge_dd_statistics

        with self._dd_stats_lock:
            merge_dd_statistics(self._dd_stats.setdefault(checker, {}), statistics)

    def dd_statistics(self) -> dict[str, dict]:
        """Per-checker decision-diagram cache counters accumulated so far.

        Covers in-process attempts *and* process-pool batches: work-unit
        results carry the workers' accumulated counters back (see
        :class:`~repro.core.workers.WorkUnitResult`), so the gate-cache
        hit/miss/eviction totals no longer vanish with the pool.
        """
        with self._dd_stats_lock:
            return {checker: dict(stats) for checker, stats in self._dd_stats.items()}

    def _absorb_worker_dd_statistics(self, per_checker: dict[str, dict]) -> None:
        """Fold a work unit's DD counters into the parent's view and metrics."""
        if not per_checker:
            return
        from repro.service.metrics import publish_dd_statistics

        for checker, statistics in per_checker.items():
            self._accumulate_dd_statistics(checker, statistics)
            if self.metrics is not None:
                publish_dd_statistics(self.metrics, statistics, checker=checker)

    def _record_telemetry(
        self, result: PortfolioResult | None, fingerprint: str | None = None
    ) -> None:
        """Append one run-telemetry record (no-op without a journal)."""
        if self.telemetry is None or result is None:
            return
        from repro.obs.telemetry import run_record

        breakers = None
        if self.breakers is not None:
            snapshot = self.breakers.snapshot()
            if snapshot:
                breakers = {name: entry["state"] for name, entry in snapshot.items()}
        self.telemetry.record_run(
            run_record(result, fingerprint=fingerprint, breakers=breakers)
        )

    # ------------------------------------------------------------------
    # batch verification
    # ------------------------------------------------------------------

    def verify_batch(
        self,
        pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]],
    ) -> BatchResult:
        """Verify many circuit pairs concurrently.

        Each pair gets a full scheduled portfolio run on
        ``configuration.max_workers`` concurrent workers — threads
        (``executor="thread"``, the default) or worker processes
        (``executor="process"``, sharded into picklable work units of
        ``batch_chunk_size`` pairs; see :mod:`repro.core.workers`).  Entries
        come back in input order either way, and a pair that raises is
        recorded as failed without affecting the other pairs.

        With the verdict cache enabled, identical pairs *within* the batch
        are deduplicated by fingerprint: each distinct pair runs once (on
        whichever executor is configured) and its verdict fans out to the
        duplicates through the cache, preserving input order and per-pair
        error isolation (a failing pair only ever "fails" its own
        duplicates, which are the same input).
        """
        start = time.perf_counter()
        pairs = list(pairs)
        config = self.configuration
        with trace.span(
            "manager.verify_batch",
            pairs=len(pairs),
            executor=config.executor,
            max_workers=config.max_workers,
        ):
            if self.verdict_cache is not None:
                entries = self._batch_entries_deduplicated(pairs)
            elif config.executor == "process":
                entries = self._batch_entries_processes(pairs)
            else:
                entries = self._batch_entries_threads(pairs)
        return BatchResult(
            entries=entries,
            total_time=time.perf_counter() - start,
            max_workers=config.max_workers,
            executor=config.executor,
        )

    def _batch_schedules(
        self, pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]]
    ) -> dict[int, Schedule]:
        """Scheduling decisions for a batch, made once here in the parent.

        Shared by both executors so a batch traces identically on threads
        and processes: one ``scheduler.decide`` span per pair under the
        batch span, and the per-pair runs replay the decision instead of
        re-deriving it (which is how the process path always worked).
        """
        schedules: dict[int, Schedule] = {}
        for index, (first, second) in enumerate(pairs):
            with trace.span("scheduler.decide", pair=index) as decide_span:
                schedule = self.schedule_for(first, second)
                decide_span.set_attr("scheduler", schedule.scheduler)
                decide_span.set_attr("lineup", ",".join(schedule.checker_names))
            schedules[index] = schedule
        return schedules

    def _batch_entries_deduplicated(
        self, pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]]
    ) -> list[BatchEntry]:
        """Run each distinct fingerprint once, fan verdicts out to duplicates.

        Distinct representatives are first looked up in the verdict cache
        here in the parent — on both executors, so a warm persistent cache
        short-circuits process batches too (workers run cache-less).  The
        remaining misses run through the normal thread/process batch path
        (entries remapped to their original indices, verdicts stored by the
        parent); every duplicate is then served from the cache — a real
        lookup, so the cache statistics account for the saved work.  A pair
        whose fingerprinting fails is treated as unique and runs normally.
        """
        fingerprints = [self._pair_fingerprint(first, second) for first, second in pairs]
        representative: dict[str, int] = {}
        run_indices: list[int] = []
        for index, fingerprint in enumerate(fingerprints):
            if fingerprint is None or fingerprint not in representative:
                if fingerprint is not None:
                    representative[fingerprint] = index
                run_indices.append(index)

        entries: list[BatchEntry | None] = [None] * len(pairs)
        dispatch_indices: list[int] = []
        canonical_fingerprints: dict[int, str | None] = {}
        for index in run_indices:
            fingerprint = fingerprints[index]
            first, second = pairs[index]
            cached = None
            if fingerprint is not None:
                cached = self.verdict_cache.get(fingerprint)
                if cached is not None:
                    cached = replace(cached, cached_via="fingerprint")
                else:
                    canonical = self._canonical_pair_fingerprint(first, second)
                    canonical_fingerprints[index] = canonical
                    if canonical is not None:
                        cached = self.verdict_cache.get(canonical)
                        if cached is not None:
                            cached = replace(cached, cached_via="canonical_fingerprint")
                            # Fan the cross-level verdict out to the raw key.
                            self.verdict_cache.put(fingerprint, cached)
            if cached is None:
                dispatch_indices.append(index)
                continue
            # Telemetry for parent-side cache hits (duplicate fan-outs below
            # are copies of the same observation and are not re-recorded).
            self._record_telemetry(cached, fingerprint)
            entries[index] = BatchEntry(
                index=index,
                name_first=getattr(first, "name", None) or f"first[{index}]",
                name_second=getattr(second, "name", None) or f"second[{index}]",
                result=cached,
            )

        dispatch_pairs = [pairs[index] for index in dispatch_indices]
        if self.configuration.executor == "process":
            unique_entries = self._batch_entries_processes(dispatch_pairs)
        else:
            # The parent already consulted the cache for every dispatched
            # pair, so the per-run consult would only re-count the misses.
            unique_entries = self._batch_entries_threads(
                dispatch_pairs, consult_cache=False
            )
        for position, entry in zip(dispatch_indices, unique_entries):
            entry.index = position
            entries[position] = entry
            # Verdicts are stored by the parent on both executors (process
            # workers are cache-less by design) so duplicates, later batches
            # and the persistent journal all see them.
            fingerprint = fingerprints[position]
            if (
                fingerprint is not None
                and entry.result is not None
                and self._cacheable(entry.result)
            ):
                self.verdict_cache.put(fingerprint, entry.result)
                canonical = canonical_fingerprints.get(position)
                if canonical is not None:
                    self.verdict_cache.put(canonical, entry.result)

        for index, fingerprint in enumerate(fingerprints):
            if entries[index] is not None:
                continue
            started = time.perf_counter()
            first, second = pairs[index]
            entry = BatchEntry(
                index=index,
                name_first=getattr(first, "name", None) or f"first[{index}]",
                name_second=getattr(second, "name", None) or f"second[{index}]",
            )
            source = entries[representative[fingerprint]]
            cached = self.verdict_cache.get(fingerprint) if source.result else None
            if cached is not None:
                entry.result = cached
            elif source.result is not None:
                # Uncacheable representative (NO_INFORMATION, or an unseeded
                # PROBABLY_EQUIVALENT that must not persist): replicate its
                # verdict so duplicates still agree entry-for-entry.
                entry.result = replace(source.result)
            else:
                entry.error = source.error
            entry.time_taken = time.perf_counter() - started
            entries[index] = entry
        return entries

    def _batch_entries_threads(
        self,
        pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]],
        consult_cache: bool = True,
    ) -> list[BatchEntry]:
        schedules = self._batch_schedules(pairs)
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.configuration.max_workers, thread_name_prefix="verify-batch"
        ) as executor:
            # Each submission ships a copy of the caller's context so the
            # ambient trace scope (a contextvar, not thread-inherited)
            # reaches the pool threads and per-pair spans parent correctly.
            futures = [
                executor.submit(
                    contextvars.copy_context().run,
                    self._batch_entry,
                    index,
                    first,
                    second,
                    schedules[index],
                    consult_cache=consult_cache,
                )
                for index, (first, second) in enumerate(pairs)
            ]
            return [future.result() for future in futures]

    def _batch_entries_processes(
        self, pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]]
    ) -> list[BatchEntry]:
        """Fan work units out to a process pool, reassembling input order.

        Scheduling decisions are made *once*, here in the parent, and shipped
        inside the (picklable) work units — workers replay them instead of
        re-deriving, so parent-side bookkeeping and worker-side execution can
        never disagree on a pair's lineup.

        Failure handling (``configuration.batch_retries``): a unit whose
        future fails as a whole — a worker process dying mid-unit, a broken
        pool, an unpicklable payload — is *not* immediately mapped onto
        per-pair error entries.  A broken pool is rebuilt (with jittered
        backoff) and only the lost units are re-dispatched; a failed unit
        with more than one pair is bisected so a single poisoned pair cannot
        take its healthy neighbours down with it; a single-pair unit is
        retried until its retry budget is exhausted and only then reported
        as a per-pair error.  Input order and one-entry-per-pair are
        preserved throughout.  ``batch_retries=0`` restores fail-fast
        behaviour (no redispatch, the whole unit errors at once).
        """
        config = self.configuration
        entries: list[BatchEntry | None] = [None] * len(pairs)
        schedules = self._batch_schedules(pairs)
        # The parent's trace position rides inside every unit; workers build
        # a process-local tracer from it and return their finished spans in
        # the results, which the parent adopts below.  None when untraced.
        traceparent = trace.current_traceparent()
        tracer = trace.current_tracer()
        # Backoff between pool rebuilds: tiny but jittered, so concurrent
        # batches hammering a struggling machine spread their respawns out.
        # Seeded for reproducible chaos tests.
        policy = RetryPolicy(
            attempts=config.batch_retries,
            base=0.02,
            cap=0.5,
            rng=random.Random(config.seed if config.seed is not None else 0),
        )
        # Work queue of (unit, attempt, retries_left).  ``attempt`` rides
        # into the worker inside the BatchWorkUnit so injected worker deaths
        # are deterministic across freshly spawned processes.
        pending: deque[tuple[list, int, int]] = deque(
            (unit, 0, config.batch_retries)
            for unit in chunk_pairs(pairs, config.batch_chunk_size)
        )
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=config.max_workers
        )
        barren_rounds = 0  # consecutive rounds in which nothing could run
        # A dying worker breaks the whole pool: every in-flight future fails
        # with BrokenProcessPool, including units whose only sin was sharing
        # the round with the culprit.  Such collateral failures must not
        # consume retry budgets, or one poisoned pair would bleed every
        # healthy neighbour dry.  After a pool break the loop switches to
        # *isolation* dispatch — one unit per round — where a failure is
        # attributable to the dispatched unit alone and bisect/retry/abandon
        # decisions are safe; a clean isolation round switches back to wide
        # dispatch.  The wide/isolation alternation guarantees progress:
        # every isolation round either fills entries or shrinks a unit or
        # consumes attributable budget.
        isolate = False
        try:
            while pending:
                futures: dict = {}
                while pending:
                    unit, attempt, retries_left = pending.popleft()
                    work = BatchWorkUnit(
                        configuration=config,
                        pairs=unit,
                        schedules={index: schedules[index] for index, _, _ in unit},
                        attempt=attempt,
                        traceparent=traceparent,
                    )
                    try:
                        future = executor.submit(verify_work_unit, work)
                    except Exception:  # noqa: BLE001 - pool broke during submit
                        pending.appendleft((unit, attempt, retries_left))
                        break
                    futures[future] = (unit, attempt, retries_left)
                    if isolate:
                        break
                pool_broken = False
                round_failed = False
                for future, (unit, attempt, retries_left) in futures.items():
                    try:
                        outcome = future.result()
                        for entry in outcome.entries:
                            entries[entry.index] = entry
                            self._observe_remote_entry(entry)
                        if tracer is not None and outcome.spans:
                            tracer.adopt(outcome.spans)
                        self._absorb_worker_dd_statistics(outcome.dd_statistics)
                    except Exception as error:  # noqa: BLE001 - isolate unit failures
                        round_failed = True
                        collateral = isinstance(
                            error, concurrent.futures.process.BrokenProcessPool
                        )
                        pool_broken = pool_broken or collateral
                        if collateral and not isolate:
                            # Cannot tell culprit from bystander in a wide
                            # round: re-dispatch intact (budget untouched) and
                            # let the isolation rounds assign blame.
                            pending.append((unit, attempt + 1, retries_left))
                        else:
                            self._settle_failed_unit(
                                unit, attempt, retries_left, error, entries, pending
                            )
                if pool_broken:
                    isolate = True
                elif isolate and futures and not round_failed:
                    isolate = False
                if not futures:
                    # Submit itself failed before anything ran.  A handful of
                    # consecutive barren rounds means the pool cannot even be
                    # respawned — give up on whatever is still queued rather
                    # than rebuilding forever.
                    barren_rounds += 1
                    if barren_rounds > config.batch_retries + 1:
                        while pending:
                            unit, attempt, _ = pending.popleft()
                            self._settle_failed_unit(
                                unit,
                                attempt,
                                0,
                                RuntimeError("process pool could not be restarted"),
                                entries,
                                pending,
                            )
                        break
                else:
                    barren_rounds = 0
                if pool_broken or not futures:
                    # The pool lost a process (every in-flight future fails
                    # together) or submit itself failed: rebuild before the
                    # next round, backing off so respawn storms can't spin.
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=config.max_workers
                    )
                    with self._batch_stats_lock:
                        self._batch_stats["pool_rebuilds"] += 1
                    trace.add_event("batch.pool_rebuild", pending=len(pending))
                    _log.warning(
                        "process pool rebuilt after failure",
                        **fields(pending_units=len(pending)),
                    )
                    if pending:
                        policy.backoff()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        for index, (first, second) in enumerate(pairs):
            if entries[index] is None:  # defensive: a worker under-delivered
                entries[index] = BatchEntry(
                    index=index,
                    name_first=getattr(first, "name", None) or f"first[{index}]",
                    name_second=getattr(second, "name", None) or f"second[{index}]",
                    error="worker returned no entry for this pair",
                )
        return entries

    def _settle_failed_unit(
        self,
        unit: list,
        attempt: int,
        retries_left: int,
        error: Exception,
        entries: list,
        pending: deque,
    ) -> None:
        """Bisect / retry / abandon one failed work unit (process path).

        Multi-pair units are bisected (halves keep the retry budget — the
        shrinking size bounds the recursion); single-pair units consume one
        retry per redispatch; an exhausted single-pair unit is mapped onto
        its per-pair error entry.  With ``batch_retries=0`` every failed
        unit is abandoned at once, matching the historical fail-fast path.
        """
        if retries_left > 0 and len(unit) > 1:
            mid = len(unit) // 2
            with self._batch_stats_lock:
                self._batch_stats["unit_bisections"] += 1
            _log.info(
                "failed work unit bisected",
                **fields(pairs=len(unit), error=f"{type(error).__name__}: {error}"),
            )
            pending.append((unit[:mid], attempt + 1, retries_left))
            pending.append((unit[mid:], attempt + 1, retries_left))
            return
        if retries_left > 0:
            with self._batch_stats_lock:
                self._batch_stats["unit_retries"] += 1
            _log.info(
                "failed work unit re-dispatched",
                **fields(
                    attempt=attempt + 1,
                    retries_left=retries_left - 1,
                    error=f"{type(error).__name__}: {error}",
                ),
            )
            pending.append((unit, attempt + 1, retries_left - 1))
            return
        with self._batch_stats_lock:
            self._batch_stats["abandoned_units"] += 1
        _log.warning(
            "work unit abandoned; pairs reported as errors",
            **fields(pairs=len(unit), error=f"{type(error).__name__}: {error}"),
        )
        for index, first, second in unit:
            entries[index] = BatchEntry(
                index=index,
                name_first=getattr(first, "name", None) or f"first[{index}]",
                name_second=getattr(second, "name", None) or f"second[{index}]",
                error=f"{type(error).__name__}: {error}",
            )

    def batch_statistics(self) -> dict:
        """Process-pool resilience counters (rebuilds/retries/bisections)."""
        with self._batch_stats_lock:
            return dict(self._batch_stats)

    def _observe_remote_entry(self, entry: BatchEntry) -> None:
        """Metrics + telemetry for an entry verified in a worker process.

        The worker's manager had neither a metrics registry nor a telemetry
        journal, so the parent records the reassembled entry: per-attempt
        latency observations (previously parent-process-only) and the
        run-telemetry record.
        """
        result = entry.result
        if result is None:
            return
        if self.metrics is not None:
            histogram = self.metrics.histogram(
                "repro_checker_latency_seconds",
                "Wall-clock latency of individual checker attempts.",
                labelnames=("checker", "status"),
            )
            for attempt in result.attempts:
                histogram.observe(
                    attempt.time_taken, checker=attempt.method, status=attempt.status
                )
        self._record_telemetry(result)

    def _batch_entry(
        self,
        index: int,
        first: QuantumCircuit,
        second: QuantumCircuit,
        schedule: Schedule | None = None,
        *,
        consult_cache: bool = True,
    ) -> BatchEntry:
        started = time.perf_counter()
        entry = BatchEntry(
            index=index,
            name_first=getattr(first, "name", None) or f"first[{index}]",
            name_second=getattr(second, "name", None) or f"second[{index}]",
        )
        try:
            if consult_cache:
                entry.result = self.run(first, second, schedule=schedule)
            else:
                # The deduplicated batch path consulted the cache in the
                # parent already, so this runs (and records) uncached — with
                # its own span, since self.run() is bypassed.
                with trace.span(
                    "manager.run",
                    first=entry.name_first,
                    second=entry.name_second,
                ) as run_span:
                    entry.result = self._run_uncached(first, second, schedule=schedule)
                    run_span.set_attr("criterion", entry.result.criterion.value)
                    self._record_telemetry(entry.result)
        except Exception as error:  # noqa: BLE001 - isolate per-pair failures
            entry.error = f"{type(error).__name__}: {error}"
        entry.time_taken = time.perf_counter() - started
        return entry


def verify_portfolio(
    first: QuantumCircuit,
    second: QuantumCircuit,
    configuration: Configuration | None = None,
    **overrides,
) -> PortfolioResult:
    """Check one pair with a checker portfolio (convenience wrapper)."""
    return EquivalenceCheckingManager(configuration, **overrides).run(first, second)


def verify_batch(
    pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]],
    configuration: Configuration | None = None,
    **overrides,
) -> BatchResult:
    """Verify many circuit pairs concurrently (convenience wrapper)."""
    return EquivalenceCheckingManager(configuration, **overrides).verify_batch(pairs)
