"""Portfolio equivalence-checking manager.

Single-method runs (:func:`~repro.core.equivalence.check_equivalence`) make
the caller commit to one checker up front.  Real equivalence-checking tools
such as QCEC instead run a *portfolio* of complementary checkers and stop as
soon as any of them is definitive:

* ``simulation`` is a fast *falsifier* — a single mismatching stimulus proves
  non-equivalence, usually long before a functional check would finish, but a
  pass only yields ``PROBABLY_EQUIVALENT``;
* ``alternating`` (and ``construction``) are *provers* — they decide
  equivalence definitively, at higher cost.

:class:`EquivalenceCheckingManager` runs the configured portfolio in order
with per-checker and overall wall-clock budgets, terminates early on the
first definitive verdict, and records which checker decided and why in a
:class:`~repro.core.results.PortfolioResult`.  For scale,
:meth:`EquivalenceCheckingManager.verify_batch` verifies many circuit pairs
concurrently on a thread pool, isolating per-pair failures and aggregating
statistics in a :class:`~repro.core.results.BatchResult`.

Example
-------
>>> from repro.circuit import QuantumCircuit
>>> from repro.core.manager import EquivalenceCheckingManager
>>> a = QuantumCircuit(2); _ = a.h(0); _ = a.cx(0, 1)
>>> b = QuantumCircuit(2); _ = b.h(0); _ = b.cx(0, 1)
>>> manager = EquivalenceCheckingManager(seed=1)
>>> manager.run(a, b).equivalent
True
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections.abc import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.core.configuration import Configuration
from repro.core.equivalence import EquivalenceChecker
from repro.core.results import (
    BatchEntry,
    BatchResult,
    CheckerAttempt,
    EquivalenceCriterion,
    PortfolioResult,
)
from repro.core.transformation import to_unitary_circuit

__all__ = [
    "DEFAULT_PORTFOLIO",
    "EquivalenceCheckingManager",
    "verify_batch",
    "verify_portfolio",
]

#: Default checker line-up: falsify fast, then prove.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("simulation", "alternating")

#: Criteria that terminate the portfolio regardless of which checker produced
#: them.  ``PROBABLY_EQUIVALENT`` (a passing simulation) is *not* definitive —
#: a later functional checker may still prove or refute equivalence.
_DEFINITIVE = (
    EquivalenceCriterion.EQUIVALENT,
    EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    EquivalenceCriterion.NOT_EQUIVALENT,
)


class EquivalenceCheckingManager:
    """Run a portfolio of equivalence checkers with early termination.

    Configuration knobs (see :class:`~repro.core.configuration.Configuration`):
    ``portfolio`` selects and orders the checkers (default
    :data:`DEFAULT_PORTFOLIO`), ``checker_timeout`` bounds each checker,
    ``timeout`` bounds the whole run, and ``max_workers`` sizes the thread
    pool of :meth:`verify_batch`.
    """

    def __init__(self, configuration: Configuration | None = None, **overrides):
        configuration = configuration or Configuration()
        if overrides:
            configuration = configuration.updated(**overrides)
        self.configuration = configuration

    @property
    def portfolio(self) -> tuple[str, ...]:
        """The checkers this manager runs, in order."""
        return self.configuration.portfolio or DEFAULT_PORTFOLIO

    # ------------------------------------------------------------------
    # single pair
    # ------------------------------------------------------------------

    def run(
        self,
        first: QuantumCircuit,
        second: QuantumCircuit,
        *,
        qubit_permutation: dict[int, int] | None = None,
    ) -> PortfolioResult:
        """Check one circuit pair with the configured portfolio.

        Checkers run in portfolio order; the first definitive verdict
        (``EQUIVALENT``, ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` or
        ``NOT_EQUIVALENT``) terminates the run and the remaining checkers are
        skipped.  A checker that raises or exceeds its time budget is recorded
        and the next checker gets its turn.  When no checker is definitive the
        final criterion falls back to the best indicative one
        (``PROBABLY_EQUIVALENT`` from a passing simulation) or
        ``NO_INFORMATION``.
        """
        config = self.configuration
        start = time.perf_counter()
        deadline = None if config.timeout is None else start + config.timeout
        attempts: list[CheckerAttempt] = []
        indicative: EquivalenceCriterion | None = None
        indicative_method: str | None = None

        # Transform dynamic circuits to unitary ones once (Scheme 1) and share
        # the result across all checkers instead of re-transforming per method.
        # On failure fall back to the originals so the error surfaces per
        # checker attempt, as it would without the shared transformation.
        if config.transform_dynamic:
            try:
                if first.is_dynamic:
                    first = to_unitary_circuit(first).circuit
                if second.is_dynamic:
                    second = to_unitary_circuit(second).circuit
            except Exception:  # noqa: BLE001 - checkers report it per attempt
                pass

        portfolio = list(self.portfolio)
        for position, method in enumerate(portfolio):
            budget = config.checker_timeout
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    attempts.extend(
                        CheckerAttempt(method=m, status="skipped")
                        for m in portfolio[position:]
                    )
                    return PortfolioResult(
                        criterion=indicative or EquivalenceCriterion.NO_INFORMATION,
                        decided_by=None,
                        reason=f"overall timeout of {config.timeout}s exhausted",
                        attempts=attempts,
                        total_time=time.perf_counter() - start,
                    )
                budget = remaining if budget is None else min(budget, remaining)

            attempt = self._run_checker(method, first, second, qubit_permutation, budget)
            attempts.append(attempt)

            if attempt.result is not None:
                criterion = attempt.result.criterion
                if criterion in _DEFINITIVE:
                    attempts.extend(
                        CheckerAttempt(method=m, status="skipped")
                        for m in portfolio[position + 1 :]
                    )
                    return PortfolioResult(
                        criterion=criterion,
                        decided_by=method,
                        reason=(
                            f"{method} returned {criterion.value} "
                            f"after {attempt.time_taken:.6f}s"
                        ),
                        attempts=attempts,
                        total_time=time.perf_counter() - start,
                    )
                if indicative is None:
                    indicative = criterion
                    indicative_method = method

        if indicative is not None:
            reason = (
                f"no checker was definitive; best indicative verdict "
                f"{indicative.value} from {indicative_method}"
            )
        else:
            reason = "no checker produced a verdict"
        return PortfolioResult(
            criterion=indicative or EquivalenceCriterion.NO_INFORMATION,
            decided_by=None,
            reason=reason,
            attempts=attempts,
            total_time=time.perf_counter() - start,
        )

    def _run_checker(
        self,
        method: str,
        first: QuantumCircuit,
        second: QuantumCircuit,
        qubit_permutation: dict[int, int] | None,
        budget: float | None,
    ) -> CheckerAttempt:
        """Run one checker, bounded by ``budget`` seconds (None = unbounded)."""
        checker = EquivalenceChecker(self.configuration.updated(method=method))
        started = time.perf_counter()

        def task():
            return checker.run(first, second, qubit_permutation=qubit_permutation)

        try:
            if budget is None:
                result = task()
            else:
                # Python threads cannot be killed; on timeout the worker is
                # abandoned (it finishes in the background) and the portfolio
                # moves on.  A daemon thread is used rather than an executor so
                # that an abandoned checker never blocks interpreter exit.
                outcome: dict = {}

                def worker():
                    try:
                        outcome["result"] = task()
                    except Exception as error:  # noqa: BLE001 - re-raised below
                        outcome["error"] = error

                thread = threading.Thread(
                    target=worker, name=f"checker-{method}", daemon=True
                )
                thread.start()
                thread.join(timeout=budget)
                if thread.is_alive():
                    return CheckerAttempt(
                        method=method,
                        status="timeout",
                        error=f"checker exceeded its budget of {budget:.6f}s",
                        time_taken=time.perf_counter() - started,
                    )
                if "error" in outcome:
                    raise outcome["error"]
                result = outcome["result"]
            return CheckerAttempt(
                method=method,
                status="completed",
                result=result,
                time_taken=time.perf_counter() - started,
            )
        except Exception as error:  # noqa: BLE001 - isolate checker failures
            return CheckerAttempt(
                method=method,
                status="error",
                error=f"{type(error).__name__}: {error}",
                time_taken=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    # batch verification
    # ------------------------------------------------------------------

    def verify_batch(
        self,
        pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]],
    ) -> BatchResult:
        """Verify many circuit pairs concurrently.

        Each pair gets a full portfolio run on a thread pool of
        ``configuration.max_workers`` workers.  Entries come back in input
        order; a pair that raises is recorded as failed without affecting the
        other pairs.
        """
        start = time.perf_counter()
        entries: list[BatchEntry] = []
        max_workers = self.configuration.max_workers
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="verify-batch"
        ) as executor:
            futures = [
                executor.submit(self._batch_entry, index, first, second)
                for index, (first, second) in enumerate(pairs)
            ]
            entries = [future.result() for future in futures]
        return BatchResult(
            entries=entries,
            total_time=time.perf_counter() - start,
            max_workers=max_workers,
        )

    def _batch_entry(
        self, index: int, first: QuantumCircuit, second: QuantumCircuit
    ) -> BatchEntry:
        started = time.perf_counter()
        entry = BatchEntry(
            index=index,
            name_first=getattr(first, "name", None) or f"first[{index}]",
            name_second=getattr(second, "name", None) or f"second[{index}]",
        )
        try:
            entry.result = self.run(first, second)
        except Exception as error:  # noqa: BLE001 - isolate per-pair failures
            entry.error = f"{type(error).__name__}: {error}"
        entry.time_taken = time.perf_counter() - started
        return entry


def verify_portfolio(
    first: QuantumCircuit,
    second: QuantumCircuit,
    configuration: Configuration | None = None,
    **overrides,
) -> PortfolioResult:
    """Check one pair with a checker portfolio (convenience wrapper)."""
    return EquivalenceCheckingManager(configuration, **overrides).run(first, second)


def verify_batch(
    pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]],
    configuration: Configuration | None = None,
    **overrides,
) -> BatchResult:
    """Verify many circuit pairs concurrently (convenience wrapper)."""
    return EquivalenceCheckingManager(configuration, **overrides).verify_batch(pairs)
