"""Result types of the equivalence-checking flows.

Besides the single-check :class:`EquivalenceCheckResult`, this module defines
the bookkeeping of the portfolio manager
(:class:`~repro.core.manager.EquivalenceCheckingManager`):

* :class:`CheckerAttempt` — one checker's run within a portfolio (completed,
  timed out, errored, or skipped after early termination),
* :class:`PortfolioResult` — the combined verdict, recording which checker
  decided and why,
* :class:`BatchEntry` / :class:`BatchResult` — per-pair outcomes and aggregate
  statistics of a concurrent ``verify_batch`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "BatchEntry",
    "BatchResult",
    "CheckerAttempt",
    "EquivalenceCheckResult",
    "EquivalenceCriterion",
    "PortfolioResult",
]


class EquivalenceCriterion(Enum):
    """Outcome of an equivalence check.

    ``EQUIVALENT`` and ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` are definitive
    positive answers from a functional check; ``PROBABLY_EQUIVALENT`` is the
    verdict of the simulative/behavioural checks (no counterexample found);
    ``NOT_EQUIVALENT`` is a definitive negative answer; ``NO_INFORMATION``
    means the configured flow could not decide.
    """

    EQUIVALENT = "equivalent"
    EQUIVALENT_UP_TO_GLOBAL_PHASE = "equivalent_up_to_global_phase"
    PROBABLY_EQUIVALENT = "probably_equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    NO_INFORMATION = "no_information"

    @property
    def considered_equivalent(self) -> bool:
        """Whether this outcome counts as a successful verification."""
        return self in (
            EquivalenceCriterion.EQUIVALENT,
            EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE,
            EquivalenceCriterion.PROBABLY_EQUIVALENT,
        )


@dataclass
class EquivalenceCheckResult:
    """Outcome and bookkeeping of one equivalence check.

    Attributes
    ----------
    criterion:
        The verdict.
    method:
        Which check produced the verdict (``alternating``, ``construction``,
        ``simulation`` or ``distribution``).
    backend:
        ``dd`` or ``dense``.
    strategy:
        Application strategy used by the alternating scheme (if any).
    time_transformation:
        Seconds spent transforming dynamic circuits into unitary ones
        (``t_trans`` in Table 1 of the paper); zero when no transformation was
        necessary.
    time_check:
        Seconds spent on the actual check (``t_ver`` in Table 1).
    details:
        Free-form diagnostic values (DD sizes, fidelities, distributions, ...).
    """

    criterion: EquivalenceCriterion
    method: str
    backend: str = "dd"
    strategy: str | None = None
    time_transformation: float = 0.0
    time_check: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """Whether the circuits were found equivalent (possibly up to phase)."""
        return self.criterion.considered_equivalent

    @property
    def total_time(self) -> float:
        """Transformation plus check time."""
        return self.time_transformation + self.time_check

    def __str__(self) -> str:
        pieces = [
            f"{self.criterion.value}",
            f"method={self.method}",
            f"backend={self.backend}",
        ]
        if self.strategy:
            pieces.append(f"strategy={self.strategy}")
        pieces.append(f"t_trans={self.time_transformation:.6f}s")
        pieces.append(f"t_check={self.time_check:.6f}s")
        return "EquivalenceCheckResult(" + ", ".join(pieces) + ")"


@dataclass
class CheckerAttempt:
    """One checker's run within a portfolio.

    Attributes
    ----------
    method:
        Registry name of the checker that ran (``simulation``,
        ``alternating``, ``construction``, ``distribution``, or a
        third-party checker).
    status:
        ``completed``, ``timeout``, ``error`` or ``skipped`` (a later checker
        that never ran because an earlier one terminated the portfolio).
    result:
        The checker's :class:`EquivalenceCheckResult` when it completed.
    error:
        Error message for ``status == "error"``.
    time_taken:
        Wall-clock seconds this attempt consumed (0 for skipped checkers).
    """

    method: str
    status: str = "completed"
    result: EquivalenceCheckResult | None = None
    error: str | None = None
    time_taken: float = 0.0

    def to_json(self) -> dict:
        """Per-checker detail (status, verdict, wall-time) as a JSON-friendly dict."""
        return {
            "method": self.method,
            "status": self.status,
            "criterion": self.result.criterion.value if self.result else None,
            "time": self.time_taken,
            "error": self.error,
        }


@dataclass
class PortfolioResult:
    """Combined verdict of a portfolio run.

    Attributes
    ----------
    criterion:
        The final verdict (the decider's criterion; ``NO_INFORMATION`` when no
        checker produced one).
    decided_by:
        Method of the checker whose verdict terminated the portfolio, or
        ``None`` if no checker was definitive.
    reason:
        Human-readable explanation of how the verdict came about.
    attempts:
        Per-checker bookkeeping in schedule order (each attempt records its
        own wall-time).
    total_time:
        Wall-clock seconds of the whole portfolio run.
    schedule:
        Checker names in the order the scheduler lined them up (may differ
        from the configured portfolio order under the adaptive scheduler, and
        may include checkers the scheduler added, e.g. ``distribution`` for
        conditioned-reset pairs).
    scheduler:
        Name of the scheduler that produced the lineup.
    features:
        JSON-friendly circuit-pair feature vector the scheduling decision was
        based on (``None`` for schedulers that do not extract features, such
        as ``static``).
    cached:
        Whether this result was served from the verdict cache
        (:class:`~repro.service.cache.VerdictCache`) instead of running any
        checker.  Cached results carry the stored essentials only — attempt
        ``details`` payloads are not retained across the cache.
    cached_via:
        Provenance of a cache hit: ``"fingerprint"`` for a raw structural
        match, ``"canonical_fingerprint"`` when the hit was found under the
        translation-level-invariant canonical key (see
        :func:`~repro.service.fingerprint.canonical_pair_fingerprint`).
        ``None`` for uncached results.
    """

    criterion: EquivalenceCriterion
    decided_by: str | None
    reason: str
    attempts: list[CheckerAttempt] = field(default_factory=list)
    total_time: float = 0.0
    schedule: list[str] = field(default_factory=list)
    scheduler: str = "static"
    features: dict | None = None
    cached: bool = False
    cached_via: str | None = None

    @property
    def equivalent(self) -> bool:
        """Whether the circuits were found equivalent (possibly up to phase)."""
        return self.criterion.considered_equivalent

    @property
    def result(self) -> EquivalenceCheckResult | None:
        """The deciding checker's detailed result (if any checker decided)."""
        for attempt in self.attempts:
            if attempt.method == self.decided_by and attempt.result is not None:
                return attempt.result
        return None

    def to_json(self) -> dict:
        """JSON-friendly payload (shared by the CLI and the service layer)."""
        return {
            "criterion": self.criterion.value,
            "equivalent": self.equivalent,
            "decided_by": self.decided_by,
            "reason": self.reason,
            "scheduler": self.scheduler,
            "schedule": list(self.schedule),
            "cached": self.cached,
            "cached_via": self.cached_via,
            "attempts": [attempt.to_json() for attempt in self.attempts],
            "total_time": self.total_time,
        }

    def __str__(self) -> str:
        return (
            f"PortfolioResult({self.criterion.value}, decided_by={self.decided_by}, "
            f"t={self.total_time:.6f}s)"
        )


@dataclass
class BatchEntry:
    """Outcome of one circuit pair within a batch verification run.

    ``result`` is ``None`` when the pair failed outright (see ``error``); a
    failure of one pair never affects the other pairs of the batch.
    """

    index: int
    name_first: str
    name_second: str
    result: PortfolioResult | None = None
    error: str | None = None
    time_taken: float = 0.0

    @property
    def equivalent(self) -> bool:
        """Whether this pair was verified equivalent (False for failed pairs)."""
        return self.result is not None and self.result.equivalent


@dataclass
class BatchResult:
    """Aggregate outcome of :meth:`EquivalenceCheckingManager.verify_batch`.

    Entries are in the same order as the input pairs.
    """

    entries: list[BatchEntry] = field(default_factory=list)
    total_time: float = 0.0
    max_workers: int = 1
    executor: str = "thread"

    @property
    def num_pairs(self) -> int:
        return len(self.entries)

    @property
    def num_equivalent(self) -> int:
        return sum(1 for entry in self.entries if entry.equivalent)

    @property
    def num_not_equivalent(self) -> int:
        """Pairs definitively refuted (undecided pairs count as failed instead)."""
        return sum(
            1
            for entry in self.entries
            if entry.result is not None
            and entry.result.criterion is EquivalenceCriterion.NOT_EQUIVALENT
        )

    @property
    def num_failed(self) -> int:
        """Pairs that raised, or finished without any verdict (timeout/errors)."""
        return sum(
            1
            for entry in self.entries
            if entry.result is None
            or entry.result.criterion is EquivalenceCriterion.NO_INFORMATION
        )

    @property
    def all_equivalent(self) -> bool:
        return self.num_equivalent == self.num_pairs

    @property
    def any_verdict(self) -> bool:
        """Whether at least one pair produced an actual verdict.

        False when every pair either raised or finished undecided — a batch
        that *could not be checked*, as opposed to one that found
        non-equivalences.
        """
        return self.num_failed < self.num_pairs

    def summary(self) -> dict:
        """Aggregate statistics (JSON-friendly)."""
        times = [entry.time_taken for entry in self.entries]
        return {
            "num_pairs": self.num_pairs,
            "num_equivalent": self.num_equivalent,
            "num_not_equivalent": self.num_not_equivalent,
            "num_failed": self.num_failed,
            "total_time": self.total_time,
            "max_workers": self.max_workers,
            "executor": self.executor,
            "max_pair_time": max(times, default=0.0),
            "mean_pair_time": (sum(times) / len(times)) if times else 0.0,
        }

    def __str__(self) -> str:
        return (
            f"BatchResult({self.num_equivalent}/{self.num_pairs} equivalent, "
            f"{self.num_failed} failed, t={self.total_time:.6f}s, "
            f"workers={self.max_workers}, executor={self.executor})"
        )
