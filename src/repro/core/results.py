"""Result types of the equivalence-checking flows."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["EquivalenceCheckResult", "EquivalenceCriterion"]


class EquivalenceCriterion(Enum):
    """Outcome of an equivalence check.

    ``EQUIVALENT`` and ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` are definitive
    positive answers from a functional check; ``PROBABLY_EQUIVALENT`` is the
    verdict of the simulative/behavioural checks (no counterexample found);
    ``NOT_EQUIVALENT`` is a definitive negative answer; ``NO_INFORMATION``
    means the configured flow could not decide.
    """

    EQUIVALENT = "equivalent"
    EQUIVALENT_UP_TO_GLOBAL_PHASE = "equivalent_up_to_global_phase"
    PROBABLY_EQUIVALENT = "probably_equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    NO_INFORMATION = "no_information"

    @property
    def considered_equivalent(self) -> bool:
        """Whether this outcome counts as a successful verification."""
        return self in (
            EquivalenceCriterion.EQUIVALENT,
            EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE,
            EquivalenceCriterion.PROBABLY_EQUIVALENT,
        )


@dataclass
class EquivalenceCheckResult:
    """Outcome and bookkeeping of one equivalence check.

    Attributes
    ----------
    criterion:
        The verdict.
    method:
        Which check produced the verdict (``alternating``, ``construction``,
        ``simulation`` or ``distribution``).
    backend:
        ``dd`` or ``dense``.
    strategy:
        Application strategy used by the alternating scheme (if any).
    time_transformation:
        Seconds spent transforming dynamic circuits into unitary ones
        (``t_trans`` in Table 1 of the paper); zero when no transformation was
        necessary.
    time_check:
        Seconds spent on the actual check (``t_ver`` in Table 1).
    details:
        Free-form diagnostic values (DD sizes, fidelities, distributions, ...).
    """

    criterion: EquivalenceCriterion
    method: str
    backend: str = "dd"
    strategy: str | None = None
    time_transformation: float = 0.0
    time_check: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """Whether the circuits were found equivalent (possibly up to phase)."""
        return self.criterion.considered_equivalent

    @property
    def total_time(self) -> float:
        """Transformation plus check time."""
        return self.time_transformation + self.time_check

    def __str__(self) -> str:
        pieces = [
            f"{self.criterion.value}",
            f"method={self.method}",
            f"backend={self.backend}",
        ]
        if self.strategy:
            pieces.append(f"strategy={self.strategy}")
        pieces.append(f"t_trans={self.time_transformation:.6f}s")
        pieces.append(f"t_check={self.time_check:.6f}s")
        return "EquivalenceCheckResult(" + ", ".join(pieces) + ")"
