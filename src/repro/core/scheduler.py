"""Portfolio scheduling: map circuit-pair features to a checker lineup.

The paper's core insight is that no single strategy wins everywhere —
simulation falsifies fast, the alternating scheme proves equivalence, and
dynamic primitives force scheme-specific handling.  A
:class:`PortfolioScheduler` turns that insight into a per-pair decision: it
inspects the pair (via :mod:`repro.core.features`) and produces a
:class:`Schedule` — an ordered lineup of registered checkers with optional
per-checker budget splits — that the
:class:`~repro.core.manager.EquivalenceCheckingManager` then executes with
early termination.

Two schedulers ship by default, selected by ``Configuration.scheduler``:

* ``static`` — the configured portfolio, in configured order, uniform
  budgets.  Exactly the pre-scheduler behaviour.
* ``adaptive`` — feature-driven: routes conditioned-reset pairs (which
  Scheme 1 cannot reconstruct) to the Scheme-2 ``distribution`` checker,
  front-loads the provers on near-identical builds (the falsifier cannot
  refute a clone, and early termination then skips it entirely), and
  front-loads the falsifier with a bounded budget share on dissimilar pairs.

The adaptive scheduler only *reorders* the configured lineup (and appends a
Scheme-2 checker only when every Scheme-1 path is provably doomed), so on any
pair the static scheduler can decide at all, both schedulers reach the same
criterion — adaptive changes *when*, never *what*.  One caveat: per-checker
budget splits only exist under an overall ``Configuration.timeout``, and any
wall-clock budget (static or adaptive) makes outcomes time-dependent — a
falsifier capped at its budget share may miss a counterexample it would have
found with the whole deadline.  The verdict-identity guarantee is therefore
stated (and agreement-tested) for runs without an overall timeout.

Schedules and their feature payloads are plain frozen dataclasses, picklable
by design: the process-pool batch path computes scheduling decisions once in
the parent and ships them inside the work units.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, ClassVar

from repro.core.checkers import base as checker_registry
from repro.core.features import PairFeatures, extract_pair_features
from repro.exceptions import EquivalenceCheckingError

if TYPE_CHECKING:  # pragma: no cover - type-only (configuration validates
    # scheduler names against this registry, so no runtime import back)
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = [
    "AdaptiveScheduler",
    "PortfolioScheduler",
    "Schedule",
    "ScheduledChecker",
    "StaticScheduler",
    "available_schedulers",
    "deprioritize",
    "register_scheduler",
    "resolve_scheduler",
]

#: Structural similarity above which a pair counts as near-identical builds.
CLONE_SIMILARITY = 0.98

#: Structural similarity below which a pair counts as dissimilar enough to
#: front-load the falsifier.
DISSIMILARITY = 0.5

#: Budget share handed to a front-loaded falsifier when an overall timeout is
#: set: falsification is cheap, so the provers keep the lion's share.
FALSIFIER_BUDGET_FRACTION = 0.25


@dataclass(frozen=True)
class ScheduledChecker:
    """One slot of a schedule: a registered checker name plus budget hints.

    ``budget_fraction`` is the share of ``Configuration.timeout`` this
    checker may consume (``None`` leaves only ``checker_timeout`` and the
    overall deadline in force, the static behaviour).
    """

    name: str
    budget_fraction: float | None = None

    def budget(self, configuration: "Configuration") -> float | None:
        """Per-checker wall-clock budget in seconds (``None`` = unbounded)."""
        budget = configuration.checker_timeout
        if self.budget_fraction is not None and configuration.timeout is not None:
            share = self.budget_fraction * configuration.timeout
            budget = share if budget is None else min(budget, share)
        return budget


@dataclass(frozen=True)
class Schedule:
    """An ordered checker lineup for one circuit pair.

    Plain picklable data: the process-pool batch path computes schedules in
    the parent and ships them to the workers inside the work units.
    """

    checkers: tuple[ScheduledChecker, ...]
    scheduler: str
    rationale: str
    features: PairFeatures | None = None

    @property
    def checker_names(self) -> tuple[str, ...]:
        return tuple(slot.name for slot in self.checkers)

    def to_json(self) -> dict:
        """JSON-ready view of the decision (trace attrs, telemetry records)."""
        return {
            "scheduler": self.scheduler,
            "rationale": self.rationale,
            "checkers": [
                {"name": slot.name, "budget_fraction": slot.budget_fraction}
                for slot in self.checkers
            ],
            "features": self.features.to_dict() if self.features is not None else None,
        }


class PortfolioScheduler(ABC):
    """Strategy object deciding checker order and budgets per circuit pair."""

    name: ClassVar[str]

    @abstractmethod
    def build(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
    ) -> Schedule:
        """Produce the schedule for one pair under ``configuration``."""

    def _portfolio(self, configuration: "Configuration") -> tuple[str, ...]:
        if configuration.portfolio is not None:
            return configuration.portfolio
        from repro.core.manager import DEFAULT_PORTFOLIO

        return DEFAULT_PORTFOLIO


class StaticScheduler(PortfolioScheduler):
    """The configured portfolio, in configured order, uniform budgets."""

    name: ClassVar[str] = "static"

    def build(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
    ) -> Schedule:
        return Schedule(
            checkers=tuple(
                ScheduledChecker(name) for name in self._portfolio(configuration)
            ),
            scheduler=self.name,
            rationale="configured portfolio order",
        )


class AdaptiveScheduler(PortfolioScheduler):
    """Feature-driven lineup: reorder the portfolio, budget the falsifier.

    Decision rules, in priority order:

    1. *Conditioned resets* (Scheme-1 reconstruction impossible): put the
       Scheme-2-capable checkers first; when the portfolio has none and the
       pair's distributions are comparable (matching, non-zero classical
       bits on both sides), append ``distribution``.  A conditioned-reset
       pair whose distributions are *not* comparable has no decidable path
       at all and keeps the configured lineup (failing exactly as static
       would).
    2. *Translated pairs* (gate-set signatures differ, qubit counts match,
       ``rewrite`` in the portfolio): the library-driven peephole prover
       front-loaded — a basis-translated pair reduces to identity in
       O(gates) 2x2 arithmetic, long before any DD is built.
    3. *Near-identical builds* (structural similarity >= 0.98, matching
       sizes): provers first — simulation cannot falsify a clone, and early
       termination skips it once a prover decides.
    4. *Dissimilar pairs* (similarity < 0.5 or high gate diversity):
       falsifier first with a bounded share of the overall budget.
    5. Otherwise: configured order.
    """

    name: ClassVar[str] = "adaptive"

    def build(
        self,
        first: "QuantumCircuit",
        second: "QuantumCircuit",
        configuration: "Configuration",
    ) -> Schedule:
        portfolio = self._portfolio(configuration)
        features = extract_pair_features(first, second)

        def role_of(name: str) -> str:
            return checker_registry.resolve(name).role

        def scheme_two(name: str) -> bool:
            return checker_registry.resolve(name).scheme_two

        if features.needs_scheme_two:
            scheme_two_names = [name for name in portfolio if scheme_two(name)]
            scheme_one_names = [name for name in portfolio if not scheme_two(name)]
            if not scheme_two_names and features.comparable_distributions:
                scheme_two_names = ["distribution"]
            checkers = tuple(
                ScheduledChecker(name) for name in scheme_two_names + scheme_one_names
            )
            return Schedule(
                checkers=checkers,
                scheduler=self.name,
                rationale=(
                    "conditioned resets defeat Scheme-1 reconstruction; "
                    "scheme-2 checkers routed first"
                ),
                features=features,
            )

        if (
            "rewrite" in portfolio
            and not features.gate_sets_match
            and features.qubit_counts_match
        ):
            rest = [name for name in portfolio if name != "rewrite"]
            return Schedule(
                checkers=tuple(
                    ScheduledChecker(name) for name in ["rewrite", *rest]
                ),
                scheduler=self.name,
                rationale=(
                    "gate sets differ (translated pair): library-driven "
                    "rewrite prover front-loaded"
                ),
                features=features,
            )

        provers = [name for name in portfolio if role_of(name) == "prover"]
        falsifiers = [name for name in portfolio if role_of(name) != "prover"]

        if (
            features.structural_similarity >= CLONE_SIMILARITY
            and features.qubit_counts_match
            and features.gate_count_ratio == 1.0
            and provers
        ):
            checkers = tuple(
                ScheduledChecker(name) for name in provers + falsifiers
            )
            return Schedule(
                checkers=checkers,
                scheduler=self.name,
                rationale=(
                    "near-identical builds: provers first, falsifier reached "
                    "only if proving fails"
                ),
                features=features,
            )

        if falsifiers and provers and (
            features.structural_similarity < DISSIMILARITY
            or features.gate_count_ratio < DISSIMILARITY
        ):
            checkers = tuple(
                [
                    ScheduledChecker(name, budget_fraction=FALSIFIER_BUDGET_FRACTION)
                    for name in falsifiers
                ]
                + [ScheduledChecker(name) for name in provers]
            )
            return Schedule(
                checkers=checkers,
                scheduler=self.name,
                rationale=(
                    "dissimilar pair: falsifier front-loaded with a bounded "
                    "budget share"
                ),
                features=features,
            )

        return Schedule(
            checkers=tuple(ScheduledChecker(name) for name in portfolio),
            scheduler=self.name,
            rationale="no feature rule fired; configured portfolio order",
            features=features,
        )


def deprioritize(schedule: Schedule, names: Iterable[str]) -> Schedule:
    """Stably move the named checkers to the end of a schedule's lineup.

    Used by the manager's circuit breakers
    (:mod:`repro.resilience.breaker`): quarantined checkers are *moved*, not
    dropped, so a breaker that transitions to half-open by the time the
    lineup reaches them can still admit a probe run — and when every healthy
    checker fails to decide, the quarantined ones remain the lineup's last
    resort rather than silently vanishing from the recorded schedule.
    """
    blocked = set(names)
    if not blocked.intersection(schedule.checker_names):
        return schedule
    healthy = tuple(slot for slot in schedule.checkers if slot.name not in blocked)
    quarantined = tuple(slot for slot in schedule.checkers if slot.name in blocked)
    moved = ", ".join(slot.name for slot in quarantined)
    return dataclass_replace(
        schedule,
        checkers=healthy + quarantined,
        rationale=f"{schedule.rationale}; quarantined checkers moved last: {moved}",
    )


# ----------------------------------------------------------------------
# scheduler registry (mirrors the checker registry)
# ----------------------------------------------------------------------

_SCHEDULERS: dict[str, type[PortfolioScheduler]] = {}


def register_scheduler(
    cls: type[PortfolioScheduler], *, replace: bool = False
) -> type[PortfolioScheduler]:
    """Register a :class:`PortfolioScheduler` subclass under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise EquivalenceCheckingError(
            f"scheduler class {cls.__name__} must define a non-empty string 'name'"
        )
    if not (isinstance(cls, type) and issubclass(cls, PortfolioScheduler)):
        raise EquivalenceCheckingError(
            f"{cls!r} is not a PortfolioScheduler subclass and cannot be registered"
        )
    if name in _SCHEDULERS and not replace:
        raise EquivalenceCheckingError(
            f"a scheduler named {name!r} is already registered; "
            "pass replace=True to override"
        )
    _SCHEDULERS[name] = cls
    return cls


def resolve_scheduler(name: str) -> type[PortfolioScheduler]:
    """Look up a registered scheduler class by name."""
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise EquivalenceCheckingError(
            f"unknown scheduler {name!r}; registered schedulers: {available_schedulers()}"
        ) from None


def available_schedulers() -> tuple[str, ...]:
    """Names of all registered schedulers, in registration order."""
    return tuple(_SCHEDULERS)


register_scheduler(StaticScheduler)
register_scheduler(AdaptiveScheduler)
