"""Simulative (random-stimuli) equivalence checking.

Instead of comparing the full system matrices, both circuits are simulated on
a number of randomly chosen input states and the fidelity of the resulting
states is compared.  A single mismatch proves non-equivalence; agreeing on all
stimuli yields the verdict ``PROBABLY_EQUIVALENT``.  This mirrors the
simulation-based checks of QCEC and complements the functional schemes for
circuits whose ``U * U'^dagger`` diagram would grow too large.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.dd.package import DDPackage
from repro.exceptions import EquivalenceCheckingError
from repro.simulators.dd_simulator import DDSimulator, DDState
from repro.simulators.statevector import Statevector, StatevectorSimulator

__all__ = ["run_simulative_check"]


def _random_basis_stimulus(num_qubits: int, rng: random.Random) -> str:
    return "".join(rng.choice("01") for _ in range(num_qubits))


def _random_product_circuit(num_qubits: int, rng: random.Random) -> QuantumCircuit:
    """A layer of random single-qubit rotations preparing a product state."""
    preparation = QuantumCircuit(num_qubits, name="stimulus")
    for qubit in range(num_qubits):
        preparation.ry(rng.uniform(0.0, math.pi), qubit)
        preparation.rz(rng.uniform(0.0, 2.0 * math.pi), qubit)
    return preparation


def run_simulative_check(
    first: QuantumCircuit,
    second: QuantumCircuit,
    *,
    backend: str = "dd",
    num_simulations: int = 16,
    stimuli_type: str = "product",
    tolerance: float = 1e-7,
    seed: int | None = None,
    gate_cache: bool = True,
    gate_cache_size: int | None = None,
    gate_cache_ttl: float | None = None,
    dense_cutoff: int = 0,
    interrupt: "Callable[[], bool] | None" = None,
) -> tuple[bool, dict]:
    """Compare two unitary circuits on random stimuli.

    Returns ``(no_counterexample_found, details)``; ``details`` records the
    minimum fidelity observed and, for a failing run, the offending stimulus.
    ``interrupt`` is an optional cancellation probe polled before every
    stimulus — a cancelled check raises
    :class:`~repro.core.checkers.base.CheckerInterrupted` instead of burning
    through the remaining stimuli on an abandoned thread.
    """
    if first.num_qubits != second.num_qubits:
        raise EquivalenceCheckingError(
            f"circuits act on different numbers of qubits "
            f"({first.num_qubits} vs {second.num_qubits})"
        )
    if first.is_dynamic or second.is_dynamic:
        raise EquivalenceCheckingError(
            "the simulative check requires unitary circuits; transform dynamic circuits first"
        )
    rng = random.Random(seed)
    num_qubits = first.num_qubits
    min_fidelity = 1.0
    details: dict = {"num_simulations": num_simulations, "stimuli_type": stimuli_type}
    # One shared package across all stimuli: the circuits' gate DDs are built
    # once and then served from the gate cache on every subsequent run.
    package = (
        DDPackage(
            num_qubits,
            gate_cache=gate_cache,
            gate_cache_size=gate_cache_size,
            gate_cache_ttl=gate_cache_ttl,
            dense_cutoff=dense_cutoff,
        )
        if backend == "dd"
        else None
    )

    for run in range(num_simulations):
        if interrupt is not None and interrupt():
            from repro.core.checkers.base import CheckerInterrupted

            raise CheckerInterrupted
        if stimuli_type == "basis":
            stimulus = _random_basis_stimulus(num_qubits, rng)
            circuit_one = first
            circuit_two = second
            initial = stimulus
        elif stimuli_type == "product":
            preparation = _random_product_circuit(num_qubits, rng)
            circuit_one = preparation.compose(first.remove_final_measurements())
            circuit_two = preparation.compose(second.remove_final_measurements())
            initial = None
        else:
            raise EquivalenceCheckingError(f"unknown stimuli type {stimuli_type!r}")

        if backend == "dd":
            state_one = DDSimulator().run(circuit_one, initial, package=package)
            # Share the package so that fidelities can be computed directly.
            state_two = DDSimulator().run(circuit_two, _rebuild_in_package(state_one, initial, num_qubits), package=state_one.package)
            fidelity = state_one.fidelity(state_two)
        elif backend == "dense":
            state_one = StatevectorSimulator().run(circuit_one, initial)
            state_two = StatevectorSimulator().run(circuit_two, initial)
            fidelity = state_one.fidelity(state_two)
        else:
            raise EquivalenceCheckingError(f"unknown backend {backend!r}")

        min_fidelity = min(min_fidelity, fidelity)
        if fidelity < 1.0 - tolerance:
            details["min_fidelity"] = min_fidelity
            details["failed_run"] = run
            if stimuli_type == "basis":
                details["counterexample"] = stimulus
            return False, details

    details["min_fidelity"] = min_fidelity
    return True, details


def _rebuild_in_package(reference: DDState, initial, num_qubits: int):
    """Build the same initial state inside the package of ``reference``."""
    if initial is None:
        return DDState.zero_state(num_qubits, reference.package)
    if isinstance(initial, str):
        return DDState.from_bitstring(initial, reference.package)
    return DDState.basis_state(num_qubits, int(initial), reference.package)


def random_stimulus_fidelity(
    first: QuantumCircuit,
    second: QuantumCircuit,
    stimulus: str,
) -> float:
    """Fidelity of the two circuits' outputs for one basis-state stimulus.

    Convenience helper used in tests and examples; dense backend.
    """
    state_one = StatevectorSimulator().run(first, stimulus)
    state_two = StatevectorSimulator().run(second, stimulus)
    return state_one.fidelity(state_two)


def statevectors_close(first: np.ndarray, second: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether two dense state vectors coincide up to a global phase."""
    overlap = abs(np.vdot(first, second))
    return overlap**2 > 1.0 - tolerance
