"""Application strategies for the alternating equivalence-checking scheme.

The alternating scheme builds ``E = U * U'^dagger`` by multiplying gates of
the first circuit onto ``E`` from the left and inverted gates of the second
circuit from the right.  Left- and right-multiplications commute as
operations, so *any* interleaving produces the same product — but the
interleaving determines how large the intermediate decision diagram gets.  If
the two circuits are (close to) equivalent, applying gates from both sides at
a rate proportional to the circuit sizes keeps the intermediate product close
to the identity, which is exactly why the ``proportional`` strategy is the
default of QCEC and of this reproduction.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import EquivalenceCheckingError

__all__ = ["LEFT", "RIGHT", "alternating_schedule"]

LEFT = "L"
RIGHT = "R"


def alternating_schedule(num_left: int, num_right: int, strategy: str) -> Iterator[str]:
    """Yield ``LEFT``/``RIGHT`` tokens describing the gate application order.

    ``num_left`` and ``num_right`` are the gate counts of the two circuits.
    The ``lookahead`` strategy is data-dependent (it inspects DD sizes) and is
    therefore scheduled by the checker itself, not by this function.
    """
    if num_left < 0 or num_right < 0:
        raise EquivalenceCheckingError("gate counts must be non-negative")

    if strategy == "naive":
        yield from _naive(num_left, num_right)
    elif strategy == "one_to_one":
        yield from _one_to_one(num_left, num_right)
    elif strategy == "proportional":
        yield from _proportional(num_left, num_right)
    else:
        raise EquivalenceCheckingError(
            f"strategy {strategy!r} cannot be turned into a static schedule"
        )


def _naive(num_left: int, num_right: int) -> Iterator[str]:
    for _ in range(num_left):
        yield LEFT
    for _ in range(num_right):
        yield RIGHT


def _one_to_one(num_left: int, num_right: int) -> Iterator[str]:
    left_done = 0
    right_done = 0
    while left_done < num_left or right_done < num_right:
        if left_done < num_left:
            yield LEFT
            left_done += 1
        if right_done < num_right:
            yield RIGHT
            right_done += 1


def _proportional(num_left: int, num_right: int) -> Iterator[str]:
    """Interleave at a rate proportional to the two gate counts.

    Uses an error-accumulation (Bresenham-style) scheme so that after ``k``
    steps roughly ``k * num_left / (num_left + num_right)`` gates of the left
    circuit have been applied.
    """
    if num_left == 0 or num_right == 0:
        yield from _naive(num_left, num_right)
        return
    left_done = 0
    right_done = 0
    error = 0
    while left_done < num_left or right_done < num_right:
        if left_done >= num_left:
            yield RIGHT
            right_done += 1
            continue
        if right_done >= num_right:
            yield LEFT
            left_done += 1
            continue
        if error >= 0:
            yield LEFT
            left_done += 1
            error -= num_right
        else:
            yield RIGHT
            right_done += 1
            error += num_left
