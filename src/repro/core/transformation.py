"""Scheme 1: unitary reconstruction through circuit transformation (Section 4).

Dynamic circuits contain three non-unitary primitives: resets, mid-circuit
measurements and classically-controlled operations.  This module removes them
in two steps:

1. :func:`substitute_resets` replaces every reset by a *fresh* qubit — all
   subsequent operations on the reset qubit are rewired to the new qubit, so
   an ``n``-qubit circuit with ``r`` resets becomes an ``(n + r)``-qubit
   circuit without resets (qubit re-use is eliminated).
2. :func:`defer_measurements` applies the deferred measurement principle:
   every mid-circuit measurement is delayed to the very end of the circuit and
   every operation classically controlled on its outcome is replaced by the
   same operation *quantum-controlled* on the measured qubit.

The composition of the two steps, :func:`to_unitary_circuit`, turns any
dynamic circuit into a circuit containing only unitary gates followed by a
final measurement layer, so that *any* existing equivalence-checking flow can
be applied (``U =? U'``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, SwapGate
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.circuit.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import TransformationError

__all__ = [
    "TransformationResult",
    "defer_measurements",
    "permute_qubits",
    "substitute_resets",
    "to_unitary_circuit",
]


@dataclass
class TransformationResult:
    """Outcome of :func:`to_unitary_circuit`.

    Attributes
    ----------
    circuit:
        The reconstructed, purely unitary circuit (with a trailing measurement
        layer so that the classical outputs remain observable).
    num_original_qubits / num_added_qubits:
        Qubit bookkeeping: ``num_added_qubits`` equals the number of resets of
        the original circuit.
    measurement_sources:
        Maps each classical bit to the qubit that is measured into it at the
        end of the reconstructed circuit (classical bits that are never
        written are absent).
    time_taken:
        Wall-clock seconds spent on the transformation (``t_trans``).
    """

    circuit: QuantumCircuit
    num_original_qubits: int
    num_added_qubits: int
    measurement_sources: dict[int, int] = field(default_factory=dict)
    time_taken: float = 0.0


def _fresh_register_name(circuit: QuantumCircuit, base: str) -> str:
    existing = {reg.name for reg in circuit.qregs} | {reg.name for reg in circuit.cregs}
    if base not in existing:
        return base
    suffix = 0
    while f"{base}{suffix}" in existing:
        suffix += 1
    return f"{base}{suffix}"


def substitute_resets(circuit: QuantumCircuit) -> QuantumCircuit:
    """Eliminate qubit re-use by giving every reset a fresh qubit.

    The fresh qubits are appended after the original ones, in the order in
    which the resets appear in the circuit.  Resetting a qubit that is still
    in its initial |0> state (i.e. was never operated on) is a no-op and does
    not consume a fresh qubit.

    A *classically-conditioned* reset cannot be rewired statically (whether
    the role moves to the fresh qubit depends on a run-time value).  It is
    instead replaced by a conditioned SWAP with a fresh |0> ancilla — the
    role qubit conditionally trades its state for |0>, which is exactly a
    reset with the discarded state parked on the ancilla.
    :func:`defer_measurements` then converts the conditioned SWAP into a
    quantum-controlled SWAP on the measurement-source qubit, completing the
    faithful unitary reconstruction.  (A conditioned reset of the very qubit
    that sourced its own condition still has no reconstruction: the deferred
    control and the swap target would coincide, and
    :func:`defer_measurements` reports that.)
    """
    if circuit.num_resets == 0:
        return circuit.copy()

    # First pass: rewrite the instruction stream onto a (possibly) larger
    # qubit index space.  current[q] is the qubit currently playing the role
    # of original qubit q; every *effective* reset (one whose qubit has been
    # touched before) advances it to the next fresh index.
    current = list(range(circuit.num_qubits))
    touched: set[int] = set()
    next_fresh = circuit.num_qubits
    rewritten: list[Instruction] = []

    for instruction in circuit:
        if instruction.is_reset:
            original = instruction.qubits[0]
            if current[original] not in touched:
                # The qubit is still in |0>; the reset has no effect whether
                # or not a classical condition would have fired.
                continue
            if instruction.condition is not None:
                # Whether the role qubit is |0> afterwards depends on a
                # run-time classical value, so plain rewiring would
                # miscompile the conditional reset into an unconditional
                # one.  The faithful reconstruction keeps the role on the
                # current qubit and conditionally swaps its state out into a
                # fresh |0> ancilla: if the condition fires, the role qubit
                # ends in |0> and the ancilla carries the discarded state
                # away; if not, nothing happens.  defer_measurements later
                # turns this into a quantum-controlled SWAP on the
                # measurement-source qubits (Fredkin-style rewiring).
                fresh = next_fresh
                next_fresh += 1
                touched.add(fresh)
                rewritten.append(
                    Instruction(
                        SwapGate(),
                        (current[original], fresh),
                        (),
                        instruction.condition,
                    )
                )
                continue
            current[original] = next_fresh
            next_fresh += 1
            continue
        mapped_qubits = tuple(current[q] for q in instruction.qubits)
        if not instruction.is_barrier:
            touched.update(mapped_qubits)
        rewritten.append(
            Instruction(instruction.operation, mapped_qubits, instruction.clbits, instruction.condition)
        )

    num_fresh = next_fresh - circuit.num_qubits
    result = QuantumCircuit(name=f"{circuit.name}_no_reset")
    for register in circuit.qregs:
        result.add_register(register)
    if num_fresh:
        result.add_register(
            QuantumRegister(num_fresh, _fresh_register_name(circuit, "reset_anc"))
        )
    for register in circuit.cregs:
        result.add_register(register)
    for instruction in rewritten:
        result.append_instruction(instruction)
    return result


def defer_measurements(circuit: QuantumCircuit) -> tuple[QuantumCircuit, dict[int, int]]:
    """Delay all measurements to the end of the circuit.

    Classically-controlled operations are replaced by quantum-controlled
    operations on the qubits that source the respective classical bits.  The
    circuit must not contain resets (run :func:`substitute_resets` first) and
    a measured qubit must not be acted on afterwards — both conditions hold by
    construction for circuits produced by :func:`substitute_resets`.

    Returns the deferred circuit and the mapping ``classical bit -> measured
    qubit`` of the final measurement layer.
    """
    if circuit.num_resets:
        raise TransformationError(
            "defer_measurements requires a reset-free circuit; run substitute_resets first"
        )

    result = circuit.copy_empty(name=f"{circuit.name}_deferred")

    # source[c] = qubit whose (pending) measurement defines classical bit c.
    source: dict[int, int] = {}
    measured_qubits: set[int] = set()

    for instruction in circuit:
        if instruction.is_barrier:
            result.append_instruction(instruction)
            continue
        if instruction.is_measurement:
            qubit = instruction.qubits[0]
            clbit = instruction.clbits[0]
            source[clbit] = qubit
            measured_qubits.add(qubit)
            continue
        overlap = measured_qubits.intersection(instruction.qubits)
        if overlap:
            raise TransformationError(
                f"qubit(s) {sorted(overlap)} are used after being measured; the deferred "
                "measurement principle does not apply (did you forget substitute_resets?)"
            )
        if instruction.condition is None:
            result.append_instruction(instruction)
            continue

        for converted in _classical_to_quantum_control(instruction, source):
            result.append_instruction(converted)

    for clbit, qubit in sorted(source.items()):
        result.measure(qubit, clbit)
    return result, dict(source)


def _classical_to_quantum_control(
    instruction: Instruction, source: dict[int, int]
) -> list[Instruction]:
    """Convert one classically-controlled instruction into quantum-controlled ones.

    Returns an empty list when the condition can never be satisfied (it
    requires a classical bit that has not been written to be 1).  A
    controlled *composite* (multi-qubit base gate, e.g. the conditioned SWAP
    emitted by :func:`substitute_resets`) is factored through the
    :data:`~repro.circuit.equivalence_library.StandardEquivalenceLibrary`
    into controlled single-qubit gates every backend accepts natively.
    """
    condition = instruction.condition
    assert condition is not None
    gate = instruction.operation
    if not isinstance(gate, Gate):
        raise TransformationError(
            f"cannot defer the non-gate conditioned operation {instruction!r}"
        )

    control_qubits: list[int] = []
    control_values: list[int] = []
    for clbit, required in zip(condition.clbits, condition.bit_values):
        if clbit in source:
            control_qubits.append(source[clbit])
            control_values.append(required)
        elif required == 1:
            # The classical bit is still 0 and the condition requires 1: the
            # operation is never executed.
            return []
        # required == 0 on an unwritten bit is trivially satisfied.

    if not control_qubits:
        return [Instruction(gate, instruction.qubits, instruction.clbits)]

    conflict = set(control_qubits).intersection(instruction.qubits)
    if conflict:
        raise TransformationError(
            f"cannot convert condition into controls: qubit(s) {sorted(conflict)} would be "
            "both control and target"
        )
    if len(set(control_qubits)) != len(control_qubits):
        raise TransformationError(
            "condition references the same source qubit twice; cannot convert to controls"
        )

    ctrl_state = 0
    for position, value in enumerate(control_values):
        ctrl_state |= value << position
    controlled = gate.control(len(control_qubits), ctrl_state)
    operands = tuple(control_qubits) + instruction.qubits
    if controlled.base_gate.num_qubits > 1:
        from repro.circuit.equivalence_library import StandardEquivalenceLibrary

        factored = StandardEquivalenceLibrary.controlled_factoring(controlled)
        if factored is not None:
            return [
                Instruction(sub_gate, tuple(operands[index] for index in local))
                for sub_gate, local in factored
            ]
    return [Instruction(controlled, operands)]


def to_unitary_circuit(circuit: QuantumCircuit) -> TransformationResult:
    """Full unitary reconstruction: reset substitution + deferred measurements."""
    start = time.perf_counter()
    without_resets = substitute_resets(circuit)
    deferred, sources = defer_measurements(without_resets)
    elapsed = time.perf_counter() - start
    return TransformationResult(
        circuit=deferred,
        num_original_qubits=circuit.num_qubits,
        num_added_qubits=without_resets.num_qubits - circuit.num_qubits,
        measurement_sources=sources,
        time_taken=elapsed,
    )


def permute_qubits(circuit: QuantumCircuit, permutation: dict[int, int]) -> QuantumCircuit:
    """Relabel the qubits of ``circuit`` according to ``permutation``.

    ``permutation[old] = new`` must be a bijection on ``range(num_qubits)``.
    This is useful when comparing a reconstructed dynamic circuit with a
    static counterpart whose qubits are ordered differently.
    """
    num_qubits = circuit.num_qubits
    if sorted(permutation.keys()) != list(range(num_qubits)) or sorted(
        permutation.values()
    ) != list(range(num_qubits)):
        raise TransformationError(
            f"permutation must be a bijection on range({num_qubits}), got {permutation}"
        )
    result = QuantumCircuit(
        QuantumRegister(num_qubits, "q"),
        *[ClassicalRegister(reg.size, reg.name) for reg in circuit.cregs],
        name=f"{circuit.name}_permuted",
    )
    for instruction in circuit:
        mapped = tuple(permutation[q] for q in instruction.qubits)
        result.append_instruction(
            Instruction(instruction.operation, mapped, instruction.clbits, instruction.condition)
        )
    return result
