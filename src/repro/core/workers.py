"""Process-pool work units for batch verification.

:meth:`~repro.core.manager.EquivalenceCheckingManager.verify_batch` can run on
a ``ProcessPoolExecutor`` (``Configuration.executor == "process"``), which
requires every work unit to round-trip through ``pickle``:

* the *input* of a unit is a :class:`BatchWorkUnit` — the (picklable)
  :class:`~repro.core.configuration.Configuration`, a chunk of indexed
  circuit pairs (:class:`~repro.circuit.circuit.QuantumCircuit` defines
  ``__getstate__``/``__setstate__``, gates and instructions define
  ``__reduce__``), the parent's per-pair scheduling decisions
  (:class:`~repro.core.scheduler.Schedule` objects are plain frozen
  dataclasses, picklable by design) and the parent's trace position as a
  W3C ``traceparent`` string;
* the *worker* is the top-level function :func:`verify_work_unit`, importable
  by name from any start method (fork, spawn, forkserver);
* the *output* is a :class:`WorkUnitResult`: plain
  :class:`~repro.core.results.BatchEntry` objects plus the observability
  payloads that would otherwise die with the worker process — finished
  trace spans (serialized as dicts, already parented under the parent's
  batch span via the shipped ``traceparent``) and the per-checker
  decision-diagram cache statistics the worker's manager accumulated.

Each worker process rebuilds its own
:class:`~repro.core.manager.EquivalenceCheckingManager` from the configuration;
decision-diagram packages and their caches are created inside the checkers and
stay strictly process-local (:class:`~repro.dd.package.DDPackage` refuses to be
pickled).  Per-pair failure isolation is identical to the thread path: the
entries of a failing pair record the error, the rest of the chunk proceeds.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.core.configuration import Configuration
from repro.core.results import BatchEntry
from repro.core.scheduler import Schedule
from repro.obs import trace

__all__ = ["BatchWorkUnit", "WorkUnitResult", "chunk_pairs", "verify_work_unit"]


@dataclass
class BatchWorkUnit:
    """A picklable shard of a batch: configuration, indexed pairs, schedules.

    ``pairs`` holds ``(index, first, second)`` triples; ``index`` is the
    position in the original batch so that results can be reassembled in input
    order regardless of completion order.  ``schedules`` maps pair indices to
    the scheduling decisions the parent process already made — workers replay
    them verbatim instead of re-deriving, so a pair's recorded lineup is the
    same no matter which side of the process boundary ran it.  ``attempt``
    counts re-dispatches of this unit by the parent's retry loop (0 on first
    dispatch); the fault-injection harness keys worker-death rules on it so
    an injected crash is deterministic across freshly spawned processes.
    ``traceparent`` carries the parent's trace position (None when the batch
    is untraced): the worker continues that trace and returns its finished
    spans inside the :class:`WorkUnitResult`.
    """

    configuration: Configuration
    pairs: list[tuple[int, QuantumCircuit, QuantumCircuit]]
    schedules: dict[int, Schedule] = field(default_factory=dict)
    attempt: int = 0
    traceparent: str | None = None


@dataclass
class WorkUnitResult:
    """What one work unit sends back: entries plus observability payloads.

    ``spans`` are finished :class:`~repro.obs.trace.Span` dicts (empty when
    the unit was untraced); ``dd_statistics`` maps checker names to the
    accumulated decision-diagram cache counters of the worker's manager —
    returned explicitly because the worker's metrics/accumulator state dies
    with the process.
    """

    entries: list[BatchEntry]
    spans: list[dict] = field(default_factory=list)
    dd_statistics: dict[str, dict] = field(default_factory=dict)


def chunk_pairs(
    pairs: Sequence[tuple[QuantumCircuit, QuantumCircuit]], chunk_size: int
) -> Iterator[list[tuple[int, QuantumCircuit, QuantumCircuit]]]:
    """Shard ``pairs`` into lists of at most ``chunk_size`` indexed triples."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    chunk: list[tuple[int, QuantumCircuit, QuantumCircuit]] = []
    for index, (first, second) in enumerate(pairs):
        chunk.append((index, first, second))
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def verify_work_unit(unit: BatchWorkUnit) -> WorkUnitResult:
    """Verify one work unit inside a worker process.

    Top-level (hence picklable by reference) entry point for
    ``ProcessPoolExecutor``.  Rebuilds a manager from the unit's configuration
    — forced onto the thread executor so a worker can never recursively spawn
    process pools, with the verdict cache disabled (worker caches would be
    process-local and concurrent appends to a shared ``cache_path`` journal
    from many workers could interleave) and with telemetry disabled (the
    parent records the reassembled entries, so per-run records are written
    exactly once).  The parent's :meth:`~repro.core.manager.
    EquivalenceCheckingManager.verify_batch` dedupes before chunking and
    stores the workers' verdicts into its own cache after reassembly.

    When the unit carries a ``traceparent``, a process-local
    :class:`~repro.obs.trace.Tracer` continues the parent's trace: each
    pair's ``manager.run`` span hangs off the parent's batch span, and the
    finished spans travel back as dicts in the result.
    """
    # Imported here, not at module top, to avoid a circular import with
    # repro.core.manager (which imports this module for chunking).
    from repro.core.manager import EquivalenceCheckingManager
    from repro.resilience.faults import FaultInjector

    manager = EquivalenceCheckingManager(
        unit.configuration.updated(
            executor="thread",
            verdict_cache=False,
            cache_path=None,
            telemetry_path=None,
        )
    )
    # Worker-site fault injection (a no-op without a fault plan): rules are
    # matched against the pair index and keyed on the unit's attempt number,
    # so an "exit" rule kills this process deterministically — including
    # after the parent respawned the pool — until the attempt count outgrows
    # the rule's ``times`` budget.
    injector = FaultInjector(unit.configuration.fault_plan)
    tracer = (
        trace.Tracer.from_traceparent(unit.traceparent)
        if unit.traceparent is not None
        else None
    )
    entries = []
    with trace.activate(tracer):
        for index, first, second in unit.pairs:
            if injector.active:
                injector.fire("worker", str(index), attempt=unit.attempt)
            entries.append(
                manager._batch_entry(index, first, second, unit.schedules.get(index))
            )
    return WorkUnitResult(
        entries=entries,
        spans=tracer.export() if tracer is not None else [],
        dd_statistics=manager.dd_statistics(),
    )
