"""Decision-diagram (QMDD) package: the data-structure substrate of the
equivalence checker and of the DD-based simulator."""

from repro.dd.circuits import (
    apply_instruction_to_vector,
    circuit_to_unitary_dd,
    gate_to_dd,
    instruction_to_dd,
)
from repro.dd.complexvalue import DEFAULT_TOLERANCE
from repro.dd.export import edge_to_dot, summarize_edge
from repro.dd.nodes import MEdge, MNode, VEdge, VNode
from repro.dd.package import DDPackage

__all__ = [
    "DDPackage",
    "DEFAULT_TOLERANCE",
    "MEdge",
    "MNode",
    "VEdge",
    "VNode",
    "apply_instruction_to_vector",
    "circuit_to_unitary_dd",
    "edge_to_dot",
    "gate_to_dd",
    "instruction_to_dd",
    "summarize_edge",
]
