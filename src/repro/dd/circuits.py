"""Bridging circuits and decision diagrams.

These helpers translate :class:`~repro.circuit.gates.Gate` objects and whole
circuits into matrix DDs of a :class:`~repro.dd.package.DDPackage`, and apply
them to vector DDs.  Controlled single-qubit gates (including multi- and
negative controls) are built natively; other multi-qubit gates are translated
through their gate definition.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import ControlledGate, Gate, GlobalPhaseGate
from repro.circuit.operations import Instruction
from repro.dd.nodes import MEdge, VEdge
from repro.dd.package import DDPackage
from repro.exceptions import DDError

__all__ = [
    "apply_instruction_to_vector",
    "circuit_to_unitary_dd",
    "gate_to_dd",
    "instruction_to_dd",
]


def gate_to_dd(package: DDPackage, gate: Gate, qubits: Sequence[int]) -> MEdge:
    """Build the matrix DD of ``gate`` applied to the given circuit qubits."""
    qubits = list(qubits)
    if len(qubits) != gate.num_qubits:
        raise DDError(
            f"gate {gate.name!r} expects {gate.num_qubits} qubit(s), got {len(qubits)}"
        )

    if isinstance(gate, GlobalPhaseGate):
        return package.scale_matrix(package.identity(), complex(gate.matrix[0, 0]))

    if isinstance(gate, ControlledGate) and gate.base_gate.num_qubits == 1:
        controls = {
            qubits[k]: (gate.ctrl_state >> k) & 1 for k in range(gate.num_ctrl_qubits)
        }
        target = qubits[gate.num_ctrl_qubits]
        return package.controlled_gate(gate.base_gate.matrix, target, controls)

    if gate.num_qubits == 1:
        return package.controlled_gate(gate.matrix, qubits[0], {})

    definition = gate.definition()
    if definition is None:
        raise DDError(
            f"gate {gate.name!r} is neither a (controlled) single-qubit gate nor "
            "decomposable; cannot build its decision diagram"
        )
    result: MEdge | None = None
    for sub_gate, local_qubits in definition:
        mapped = [qubits[local] for local in local_qubits]
        sub_dd = gate_to_dd(package, sub_gate, mapped)
        result = sub_dd if result is None else package.multiply_matrices(sub_dd, result)
    if result is None:
        return package.identity()
    return result


def instruction_to_dd(package: DDPackage, instruction: Instruction) -> MEdge:
    """Build the matrix DD of a unitary, unconditioned instruction.

    Results are memoized per package (keyed by the gate — name, parameters,
    control state — and the qubits it acts on), so circuits that repeat gates,
    e.g. the controlled-power ladders of QPE or the CNOT cascades of BV, build
    each distinct gate DD only once.  DD edges are immutable and hash-consed
    within their package, so sharing the cached edge is safe.
    """
    if not instruction.is_gate or instruction.condition is not None:
        raise DDError(
            f"only unitary, unconditioned instructions have a matrix DD, got {instruction!r}"
        )
    gate = instruction.operation
    assert isinstance(gate, Gate)
    key = (gate, instruction.qubits)
    cached = package.gate_cache_lookup(key)
    if cached is not None:
        return cached
    result = gate_to_dd(package, gate, instruction.qubits)
    package.gate_cache_store(key, result)
    # The cached edge is shared verbatim on every later lookup: DD edges are
    # immutable flyweights hash-consed within their package (see the
    # edge-factory invariants in repro.dd.package), so no copy is needed.
    return result


def circuit_to_unitary_dd(
    package: DDPackage,
    circuit: QuantumCircuit,
    *,
    interrupt: "Callable[[], bool] | None" = None,
) -> MEdge:
    """Build the matrix DD of the whole (unitary) circuit.

    Trailing read-out measurements are ignored; dynamic primitives raise.
    ``interrupt`` is an optional cancellation probe polled between gate
    applications (see :class:`repro.core.checkers.base.Checker`); when it
    fires the build raises ``CheckerInterrupted`` instead of finishing on an
    abandoned thread.
    """
    if circuit.num_qubits != package.num_qubits:
        raise DDError(
            f"circuit has {circuit.num_qubits} qubits, package has {package.num_qubits}"
        )
    unitary = package.identity()
    multiply = package.multiply_matrices
    for instruction in circuit.remove_final_measurements().gate_instructions():
        if interrupt is not None and interrupt():
            from repro.core.checkers.base import CheckerInterrupted

            raise CheckerInterrupted
        unitary = multiply(instruction_to_dd(package, instruction), unitary)
    return unitary


def apply_instruction_to_vector(
    package: DDPackage, vector: VEdge, instruction: Instruction
) -> VEdge:
    """Apply a unitary, unconditioned instruction to a vector DD."""
    gate_dd = instruction_to_dd(package, instruction)
    return package.multiply_matrix_vector(gate_dd, vector)
