"""Canonical handling of complex edge weights.

Decision diagrams only stay compact if numerically equal (up to a small
tolerance) edge weights are recognized as *the same* value, so that
structurally identical nodes hash to the same unique-table entry.  Dedicated
DD packages use a bucketized complex table for this; here we use a simpler
grid-rounding scheme: weights are hashed by their value rounded to a fixed
number of decimals.  Values that fall on different sides of a grid boundary
are merely stored twice (slightly larger DD), never confused with each other,
so correctness does not depend on the rounding.
"""

from __future__ import annotations

import cmath

__all__ = ["DEFAULT_TOLERANCE", "HASH_DECIMALS", "ckey", "is_close", "is_one", "is_zero"]

#: Default numerical tolerance used for weight comparisons and hashing.
DEFAULT_TOLERANCE = 1e-10

#: Number of decimals used for hashing edge weights.  The hot kernels in
#: :mod:`repro.dd.package` inline this rounding (``round(w.real, HASH_DECIMALS)
#: or 0.0``) when assembling unique-table signatures, referencing this
#: constant so both key spaces stay identical by construction.
HASH_DECIMALS = 10

# Backwards-compatible private alias.
_HASH_DECIMALS = HASH_DECIMALS


def ckey(value: complex) -> tuple[float, float]:
    """Hashable key identifying ``value`` up to the hashing tolerance.

    The ``or 0.0`` collapses ``-0.0`` onto ``+0.0`` so the sign of a rounded
    zero never splits otherwise identical signatures.
    """
    return (
        round(value.real, HASH_DECIMALS) or 0.0,
        round(value.imag, HASH_DECIMALS) or 0.0,
    )


def is_zero(value: complex, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``value`` is numerically zero."""
    return abs(value.real) <= tolerance and abs(value.imag) <= tolerance


def is_one(value: complex, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``value`` is numerically one."""
    return abs(value - 1.0) <= tolerance


def is_close(a: complex, b: complex, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether two complex values agree within ``tolerance``."""
    return abs(a - b) <= tolerance


def phase_of(value: complex) -> float:
    """Return the argument of ``value`` in radians."""
    return cmath.phase(value)
