"""Memoization tables for decision-diagram operations.

Every recursive DD operation (addition, multiplication, inner product, ...)
keeps its own compute table so that repeated sub-computations — which occur
constantly because sub-diagrams are shared — are answered in O(1).

The :meth:`ComputeTable.get` / :meth:`ComputeTable.put` pair is the generic,
statistics-keeping interface.  The package's hot kernels bypass it and work on
the underlying dict directly (``table._table.get`` aliased to a local): one
attribute load plus a dict probe per lookup instead of a method call.  The
``len``-based sizes reported by :meth:`repro.dd.package.DDPackage.statistics`
stay exact either way.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ComputeTable"]


class ComputeTable:
    """A simple keyed memoization cache with hit statistics."""

    __slots__ = ("name", "_table", "lookups", "hits")

    def __init__(self, name: str) -> None:
        self.name = name
        self._table: dict[Any, Any] = {}
        self.lookups = 0
        self.hits = 0

    def get(self, key):
        """Return the cached value for ``key`` or ``None``."""
        self.lookups += 1
        value = self._table.get(key)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Store ``value`` under ``key``."""
        self._table[key] = value

    def clear(self) -> None:
        """Drop all cached entries."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ComputeTable({self.name}, size={len(self)}, hit_ratio={self.hit_ratio:.2f})"
