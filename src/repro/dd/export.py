"""Export of decision diagrams to Graphviz DOT (and simple text statistics).

Useful for debugging and for documentation: the diagrams produced during
equivalence checking (the near-identity products of the alternating scheme)
and the compact states of the benchmark algorithms can be rendered with any
Graphviz viewer.
"""

from __future__ import annotations

from repro.dd.nodes import MEdge, VEdge

__all__ = ["edge_to_dot", "summarize_edge"]


def _format_weight(weight: complex) -> str:
    real = f"{weight.real:.4g}"
    imag = f"{abs(weight.imag):.4g}"
    sign = "+" if weight.imag >= 0 else "-"
    if abs(weight.imag) < 1e-12:
        return real
    if abs(weight.real) < 1e-12:
        return f"{'-' if weight.imag < 0 else ''}{imag}i"
    return f"{real}{sign}{imag}i"


def edge_to_dot(edge: "VEdge | MEdge", name: str = "dd") -> str:
    """Render the diagram rooted at ``edge`` as a Graphviz DOT string.

    Vector nodes have two outgoing edges (labelled 0/1), matrix nodes four
    (labelled 00, 01, 10, 11 as row/column).  Zero edges are omitted; the
    terminal is drawn as a small box.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  terminal [shape=box, label="1"];']
    seen: dict[int, str] = {}
    counter = 0

    def node_identifier(node) -> str:
        nonlocal counter
        key = id(node)
        if key not in seen:
            seen[key] = f"n{counter}"
            counter += 1
            lines.append(f'  {seen[key]} [shape=circle, label="q{node.index}"];')
        return seen[key]

    def walk(current) -> None:
        node = current.node
        if node is None:
            return
        identifier = node_identifier(node)
        arity = len(node.edges)
        for branch, child in enumerate(node.edges):
            if child.is_zero:
                continue
            if arity == 4:
                label = f"{branch >> 1}{branch & 1}"
            else:
                label = str(branch)
            weight = _format_weight(child.weight)
            target = "terminal" if child.node is None else None
            if target is None:
                already_seen = id(child.node) in seen
                target = node_identifier(child.node)
                if not already_seen:
                    walk(child)
            lines.append(f'  {identifier} -> {target} [label="{label}: {weight}"];')

    if edge.is_zero:
        lines.append('  zero [shape=box, label="0"];')
    else:
        root_weight = _format_weight(edge.weight)
        lines.append(f'  root [shape=point, label=""];')
        target = "terminal" if edge.node is None else node_identifier(edge.node)
        lines.append(f'  root -> {target} [label="{root_weight}"];')
        if edge.node is not None:
            walk(edge)
    lines.append("}")
    return "\n".join(lines)


def summarize_edge(edge: "VEdge | MEdge") -> dict[str, int]:
    """Return simple structural statistics of a diagram (nodes, edges, depth)."""
    nodes: set[int] = set()
    num_edges = 0
    max_depth = 0

    def walk(current, depth: int) -> None:
        nonlocal num_edges, max_depth
        node = current.node
        max_depth = max(max_depth, depth)
        if node is None or id(node) in nodes:
            return
        nodes.add(id(node))
        for child in node.edges:
            if child.is_zero:
                continue
            num_edges += 1
            walk(child, depth + 1)

    walk(edge, 0)
    return {"nodes": len(nodes), "edges": num_edges, "depth": max_depth}
