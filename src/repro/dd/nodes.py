"""Node and edge data structures of the decision-diagram package.

A *vector* DD node has two successor edges (qubit value 0 / 1); a *matrix* DD
node has four successor edges indexed ``2*row + column`` where ``row`` is the
output basis value and ``column`` the input basis value of the node's qubit.
Terminal edges are represented by ``node is None``; the zero vector/matrix is
the terminal edge with weight 0.

Nodes are only ever created through the package's ``make_*`` methods, which
normalize the successor weights and hash-cons structurally identical nodes in
a unique table.  Consequently node identity (``is`` / ``id``) doubles as
structural equality, which the compute tables rely on.
"""

from __future__ import annotations

__all__ = ["MEdge", "MNode", "VEdge", "VNode"]


class VNode:
    """Vector-DD node for one qubit level."""

    __slots__ = ("index", "edges")

    def __init__(self, index: int, edges: tuple["VEdge", "VEdge"]):
        self.index = index
        self.edges = edges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VNode(q{self.index})"


class MNode:
    """Matrix-DD node for one qubit level."""

    __slots__ = ("index", "edges")

    def __init__(self, index: int, edges: tuple["MEdge", "MEdge", "MEdge", "MEdge"]):
        self.index = index
        self.edges = edges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MNode(q{self.index})"


class VEdge:
    """Weighted edge into a vector-DD node (``node is None`` = terminal)."""

    __slots__ = ("node", "weight")

    def __init__(self, node: VNode | None, weight: complex):
        self.node = node
        self.weight = complex(weight)

    @property
    def is_terminal(self) -> bool:
        """Whether the edge points to the terminal node."""
        return self.node is None

    @property
    def is_zero(self) -> bool:
        """Whether the edge represents the zero vector."""
        return self.node is None and self.weight == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "terminal" if self.node is None else f"q{self.node.index}"
        return f"VEdge({target}, {self.weight:.4g})"


class MEdge:
    """Weighted edge into a matrix-DD node (``node is None`` = terminal)."""

    __slots__ = ("node", "weight")

    def __init__(self, node: MNode | None, weight: complex):
        self.node = node
        self.weight = complex(weight)

    @property
    def is_terminal(self) -> bool:
        """Whether the edge points to the terminal node."""
        return self.node is None

    @property
    def is_zero(self) -> bool:
        """Whether the edge represents the zero matrix."""
        return self.node is None and self.weight == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "terminal" if self.node is None else f"q{self.node.index}"
        return f"MEdge({target}, {self.weight:.4g})"
