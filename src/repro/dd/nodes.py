"""Node and edge data structures of the decision-diagram package.

A *vector* DD node has two successor edges (qubit value 0 / 1); a *matrix* DD
node has four successor edges indexed ``2*row + column`` where ``row`` is the
output basis value and ``column`` the input basis value of the node's qubit.
Terminal edges are represented by ``node is None``; the zero vector/matrix is
the terminal edge with weight 0.

Nodes are only ever created through the package's ``make_*`` methods, which
normalize the successor weights and hash-cons structurally identical nodes in
a unique table.  Consequently node identity (``is`` / ``id``) doubles as
structural equality, which the compute tables rely on.

Performance notes
-----------------
Edges are deliberately *dumb* flyweight records: ``__init__`` stores the
weight as-is (no ``complex()`` coercion — callers on the numpy boundary coerce
once per entry instead of once per edge), and the hot kernels never touch the
``is_zero`` / ``is_terminal`` properties but inline the ``edge.node is None``
checks.  The canonical zero and unit terminal edges are module-level
singletons (:data:`V_ZERO`, :data:`M_ZERO`, :data:`V_ONE`, :data:`M_ONE`);
since edges are immutable by convention, sharing them is safe and saves an
allocation per zero branch.  Nodes carry a ``hash`` slot holding the hash of
the unique-table signature they were interned under (recorded once by
:meth:`~repro.dd.unique_table.UniqueTable.get_or_create` at creation, when
the key tuple is at hand anyway); node *identity* remains the equality
contract.
"""

from __future__ import annotations

__all__ = ["MEdge", "MNode", "M_ONE", "M_ZERO", "VEdge", "VNode", "V_ONE", "V_ZERO"]


class VNode:
    """Vector-DD node for one qubit level."""

    __slots__ = ("index", "edges", "hash")

    def __init__(self, index: int, edges: tuple["VEdge", "VEdge"], hash: int = 0):
        self.index = index
        self.edges = edges
        self.hash = hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VNode(q{self.index})"


class MNode:
    """Matrix-DD node for one qubit level."""

    __slots__ = ("index", "edges", "hash")

    def __init__(
        self,
        index: int,
        edges: tuple["MEdge", "MEdge", "MEdge", "MEdge"],
        hash: int = 0,
    ):
        self.index = index
        self.edges = edges
        self.hash = hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MNode(q{self.index})"


class VEdge:
    """Weighted edge into a vector-DD node (``node is None`` = terminal)."""

    __slots__ = ("node", "weight")

    def __init__(self, node: VNode | None, weight: complex):
        self.node = node
        self.weight = weight

    @property
    def is_terminal(self) -> bool:
        """Whether the edge points to the terminal node."""
        return self.node is None

    @property
    def is_zero(self) -> bool:
        """Whether the edge represents the zero vector."""
        return self.node is None and self.weight == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "terminal" if self.node is None else f"q{self.node.index}"
        return f"VEdge({target}, {complex(self.weight):.4g})"


class MEdge:
    """Weighted edge into a matrix-DD node (``node is None`` = terminal)."""

    __slots__ = ("node", "weight")

    def __init__(self, node: MNode | None, weight: complex):
        self.node = node
        self.weight = weight

    @property
    def is_terminal(self) -> bool:
        """Whether the edge points to the terminal node."""
        return self.node is None

    @property
    def is_zero(self) -> bool:
        """Whether the edge represents the zero matrix."""
        return self.node is None and self.weight == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "terminal" if self.node is None else f"q{self.node.index}"
        return f"MEdge({target}, {complex(self.weight):.4g})"


#: Canonical zero-vector edge (shared flyweight; edges are immutable).
V_ZERO = VEdge(None, 0.0)
#: Canonical zero-matrix edge (shared flyweight).
M_ZERO = MEdge(None, 0.0)
#: Canonical unit terminal vector edge (seed of bottom-up constructions).
V_ONE = VEdge(None, 1.0)
#: Canonical unit terminal matrix edge (seed of bottom-up constructions).
M_ONE = MEdge(None, 1.0)
