"""The decision-diagram package: construction and manipulation of QMDDs.

This module provides the data-structure backend that tools like QCEC are built
on: quantum states are represented as *vector* decision diagrams and
operators as *matrix* decision diagrams, both with normalized, hash-consed
nodes and memoized recursive operations.  For the redundancy-rich diagrams
that appear during equivalence checking (products of a circuit with the
inverse of an equivalent circuit stay close to the identity) the
representation is exponentially more compact than dense arrays.

Conventions
-----------
* Qubit 0 is the lowest DD level (closest to the terminal); the top node of a
  diagram over ``n`` qubits has ``index == n - 1``.
* Vector/matrix indices are little-endian: bit ``q`` of an index is qubit ``q``.
* Matrix node successor ``2*row + column`` corresponds to the node qubit having
  output value ``row`` and input value ``column``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from repro.dd.complexvalue import DEFAULT_TOLERANCE, ckey, is_zero
from repro.dd.compute_table import ComputeTable
from repro.dd.nodes import MEdge, MNode, VEdge, VNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DDError

__all__ = ["DDPackage"]

_P0 = np.array([[1, 0], [0, 0]], dtype=complex)
_P1 = np.array([[0, 0], [0, 1]], dtype=complex)
_ID2 = np.eye(2, dtype=complex)
_X2 = np.array([[0, 1], [1, 0]], dtype=complex)


class DDPackage:
    """A self-contained decision-diagram workspace for ``num_qubits`` qubits.

    All nodes created through one package share its unique table and compute
    tables; diagrams from different packages must not be mixed.
    """

    def __init__(
        self,
        num_qubits: int,
        tolerance: float = DEFAULT_TOLERANCE,
        gate_cache: bool = True,
        gate_cache_size: int | None = None,
    ):
        if num_qubits < 1:
            raise DDError("a DD package needs at least one qubit")
        if gate_cache_size is not None and gate_cache_size < 1:
            raise DDError("gate_cache_size must be at least 1 (or None for unbounded)")
        self.num_qubits = num_qubits
        self.tolerance = tolerance
        self._vector_table: UniqueTable[VNode] = UniqueTable()
        self._matrix_table: UniqueTable[MNode] = UniqueTable()
        self._add_v = ComputeTable("vector-add")
        self._add_m = ComputeTable("matrix-add")
        self._mult_mv = ComputeTable("matrix-vector-multiply")
        self._mult_mm = ComputeTable("matrix-matrix-multiply")
        self._inner = ComputeTable("inner-product")
        self._norm = ComputeTable("norm-squared")
        self._max_entry = ComputeTable("max-entry")
        self.gate_cache_enabled = gate_cache
        # Both memoization caches are LRU-ordered: a hit refreshes the entry,
        # a store beyond ``gate_cache_size`` evicts the least recently used
        # entry.  ``None`` keeps them unbounded (fine for one-shot checks;
        # long-lived worker processes should set a bound).
        self.gate_cache_size = gate_cache_size
        self._gate_cache: OrderedDict = OrderedDict()
        self._gate_cache_hits = 0
        self._gate_cache_misses = 0
        self._gate_cache_evictions = 0
        self._chain_cache: OrderedDict = OrderedDict()
        self._chain_cache_evictions = 0

    def __reduce__(self):
        raise TypeError(
            "DDPackage is process-local and must never be pickled; workers "
            "rebuild their own packages from the (picklable) Configuration"
        )

    # ------------------------------------------------------------------
    # terminals and node construction
    # ------------------------------------------------------------------

    @staticmethod
    def zero_vector_edge() -> VEdge:
        """The zero vector."""
        return VEdge(None, 0.0)

    @staticmethod
    def zero_matrix_edge() -> MEdge:
        """The zero matrix."""
        return MEdge(None, 0.0)

    def make_vector_node(self, index: int, edges: Sequence[VEdge]) -> VEdge:
        """Create (or reuse) a normalized vector node and return an edge to it."""
        edges = tuple(edges)
        if len(edges) != 2:
            raise DDError(f"vector nodes have 2 successors, got {len(edges)}")
        return self._normalize_and_store(index, edges, self._vector_table, VNode, VEdge)

    def make_matrix_node(self, index: int, edges: Sequence[MEdge]) -> MEdge:
        """Create (or reuse) a normalized matrix node and return an edge to it."""
        edges = tuple(edges)
        if len(edges) != 4:
            raise DDError(f"matrix nodes have 4 successors, got {len(edges)}")
        return self._normalize_and_store(index, edges, self._matrix_table, MNode, MEdge)

    def _normalize_and_store(self, index, edges, table, node_cls, edge_cls):
        weights = [edge.weight for edge in edges]
        magnitudes = [abs(w) for w in weights]
        largest = max(magnitudes)
        if is_zero(largest, self.tolerance):
            return edge_cls(None, 0.0)
        pivot = magnitudes.index(largest)
        factor = weights[pivot]
        normalized = []
        for edge in edges:
            if is_zero(edge.weight, self.tolerance):
                normalized.append(edge_cls(None, 0.0))
            else:
                normalized.append(edge_cls(edge.node, edge.weight / factor))
        node = table.lookup(index, normalized, lambda idx, succ: node_cls(idx, tuple(succ)))
        return edge_cls(node, factor)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------

    def zero_state(self) -> VEdge:
        """The all-zeros computational basis state |0...0>."""
        return self.basis_state(0)

    def basis_state(self, value: "int | Sequence[int]") -> VEdge:
        """A computational basis state given as an integer or per-qubit bits."""
        if isinstance(value, int):
            if not 0 <= value < (1 << self.num_qubits):
                raise DDError(f"basis state {value} out of range for {self.num_qubits} qubits")
            bits = [(value >> q) & 1 for q in range(self.num_qubits)]
        else:
            bits = list(value)
            if len(bits) != self.num_qubits:
                raise DDError(
                    f"expected {self.num_qubits} bits, got {len(bits)}"
                )
        edge = VEdge(None, 1.0)
        for qubit in range(self.num_qubits):
            if bits[qubit]:
                children = (self.zero_vector_edge(), edge)
            else:
                children = (edge, self.zero_vector_edge())
            edge = self.make_vector_node(qubit, children)
        return edge

    def vector_from_numpy(self, amplitudes: np.ndarray) -> VEdge:
        """Build a vector DD from a dense amplitude array (little-endian)."""
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if amplitudes.size != (1 << self.num_qubits):
            raise DDError(
                f"amplitude vector of length {amplitudes.size} does not match "
                f"{self.num_qubits} qubits"
            )

        def build(offset: int, level: int) -> VEdge:
            if level < 0:
                return VEdge(None, amplitudes[offset])
            half = 1 << level
            low = build(offset, level - 1)
            high = build(offset + half, level - 1)
            return self.make_vector_node(level, (low, high))

        return build(0, self.num_qubits - 1)

    # ------------------------------------------------------------------
    # operator construction
    # ------------------------------------------------------------------

    def identity(self) -> MEdge:
        """The identity operator on all qubits."""
        return self.operator_chain({})

    def operator_chain(self, operators: Mapping[int, np.ndarray]) -> MEdge:
        """Tensor product of single-qubit operators (identity where omitted).

        ``operators`` maps qubit index to a ``2x2`` matrix.  Chains are
        memoized per package (DD edges are immutable, so sharing is safe):
        every controlled gate rebuilds an identity and projector chains, which
        makes this the hottest construction path of gate building.
        """
        key = None
        if self.gate_cache_enabled:
            key = tuple(
                (qubit, matrix.tobytes()) for qubit, matrix in sorted(operators.items())
            )
            cached = self._chain_cache.get(key)
            if cached is not None:
                self._chain_cache.move_to_end(key)
                return cached
        edge = self._build_operator_chain(operators)
        if key is not None:
            self._chain_cache[key] = edge
            self._chain_cache_evictions += self._evict_lru(self._chain_cache)
        return edge

    def _build_operator_chain(self, operators: Mapping[int, np.ndarray]) -> MEdge:
        edge = MEdge(None, 1.0)
        for qubit in range(self.num_qubits):
            matrix = operators.get(qubit, _ID2)
            if matrix.shape != (2, 2):
                raise DDError(f"operator for qubit {qubit} must be 2x2, got {matrix.shape}")
            children = (
                MEdge(edge.node, edge.weight * matrix[0, 0]),
                MEdge(edge.node, edge.weight * matrix[0, 1]),
                MEdge(edge.node, edge.weight * matrix[1, 0]),
                MEdge(edge.node, edge.weight * matrix[1, 1]),
            )
            edge = self.make_matrix_node(qubit, children)
        return edge

    def controlled_gate(
        self,
        matrix: np.ndarray,
        target: int,
        controls: Mapping[int, int] | None = None,
    ) -> MEdge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        ``controls`` maps control qubits to their activation value (1 for a
        regular control, 0 for a negative control).  Without controls this is
        simply the single-qubit operator embedded into the full register.
        """
        if matrix.shape != (2, 2):
            raise DDError(f"controlled_gate expects a 2x2 matrix, got {matrix.shape}")
        if not 0 <= target < self.num_qubits:
            raise DDError(f"target qubit {target} out of range")
        controls = dict(controls or {})
        if target in controls:
            raise DDError(f"qubit {target} cannot be both control and target")
        for qubit, value in controls.items():
            if not 0 <= qubit < self.num_qubits:
                raise DDError(f"control qubit {qubit} out of range")
            if value not in (0, 1):
                raise DDError(f"control activation value must be 0 or 1, got {value}")
        if not controls:
            return self.operator_chain({target: matrix})

        projectors = {qubit: (_P1 if value else _P0) for qubit, value in controls.items()}
        active = self.operator_chain({**projectors, target: matrix})
        blocked = self.operator_chain({**projectors, target: _ID2})
        identity = self.identity()
        inactive = self.add_matrices(identity, self.scale_matrix(blocked, -1.0))
        return self.add_matrices(active, inactive)

    @staticmethod
    def scale_matrix(edge: MEdge, factor: complex) -> MEdge:
        """Multiply a matrix DD by a scalar."""
        if edge.is_zero or factor == 0:
            return MEdge(None, 0.0)
        return MEdge(edge.node, edge.weight * factor)

    @staticmethod
    def scale_vector(edge: VEdge, factor: complex) -> VEdge:
        """Multiply a vector DD by a scalar."""
        if edge.is_zero or factor == 0:
            return VEdge(None, 0.0)
        return VEdge(edge.node, edge.weight * factor)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def add_vectors(self, left: VEdge, right: VEdge) -> VEdge:
        """Element-wise sum of two vector DDs."""
        return self._add(left, right, self._add_v, self.make_vector_node, VEdge, 2)

    def add_matrices(self, left: MEdge, right: MEdge) -> MEdge:
        """Element-wise sum of two matrix DDs."""
        return self._add(left, right, self._add_m, self.make_matrix_node, MEdge, 4)

    def _add(self, left, right, table, make_node, edge_cls, arity):
        if left.is_zero:
            return right
        if right.is_zero:
            return left
        if left.is_terminal and right.is_terminal:
            return edge_cls(None, left.weight + right.weight)
        if left.is_terminal or right.is_terminal:
            raise DDError("cannot add diagrams of different depth")
        if left.node.index != right.node.index:
            raise DDError(
                f"cannot add diagrams rooted at different levels "
                f"({left.node.index} vs {right.node.index})"
            )
        ratio = right.weight / left.weight
        key = (id(left.node), id(right.node), ckey(ratio))
        cached = table.get(key)
        if cached is not None:
            return edge_cls(cached.node, cached.weight * left.weight)
        children = []
        for branch in range(arity):
            left_child = left.node.edges[branch]
            right_child = right.node.edges[branch]
            scaled_right = edge_cls(right_child.node, right_child.weight * ratio)
            children.append(self._add(left_child, scaled_right, table, make_node, edge_cls, arity))
        relative = make_node(left.node.index, children)
        table.put(key, relative)
        return edge_cls(relative.node, relative.weight * left.weight)

    def multiply_matrix_vector(self, matrix: MEdge, vector: VEdge) -> VEdge:
        """Apply a matrix DD to a vector DD."""
        if matrix.is_zero or vector.is_zero:
            return VEdge(None, 0.0)
        if matrix.is_terminal and vector.is_terminal:
            return VEdge(None, matrix.weight * vector.weight)
        if matrix.is_terminal or vector.is_terminal:
            raise DDError("matrix and vector diagrams must have the same depth")
        if matrix.node.index != vector.node.index:
            raise DDError(
                f"matrix level {matrix.node.index} does not match vector level "
                f"{vector.node.index}"
            )
        factor = matrix.weight * vector.weight
        key = (id(matrix.node), id(vector.node))
        cached = self._mult_mv.get(key)
        if cached is None:
            children = []
            for row in range(2):
                total = self.zero_vector_edge()
                for column in range(2):
                    product = self.multiply_matrix_vector(
                        matrix.node.edges[2 * row + column], vector.node.edges[column]
                    )
                    total = self.add_vectors(total, product)
                children.append(total)
            cached = self.make_vector_node(matrix.node.index, children)
            self._mult_mv.put(key, cached)
        return VEdge(cached.node, cached.weight * factor)

    def multiply_matrices(self, left: MEdge, right: MEdge) -> MEdge:
        """Matrix product ``left @ right`` of two matrix DDs."""
        if left.is_zero or right.is_zero:
            return MEdge(None, 0.0)
        if left.is_terminal and right.is_terminal:
            return MEdge(None, left.weight * right.weight)
        if left.is_terminal or right.is_terminal:
            raise DDError("matrix diagrams must have the same depth")
        if left.node.index != right.node.index:
            raise DDError(
                f"cannot multiply diagrams rooted at different levels "
                f"({left.node.index} vs {right.node.index})"
            )
        factor = left.weight * right.weight
        key = (id(left.node), id(right.node))
        cached = self._mult_mm.get(key)
        if cached is None:
            children = []
            for row in range(2):
                for column in range(2):
                    total = self.zero_matrix_edge()
                    for middle in range(2):
                        product = self.multiply_matrices(
                            left.node.edges[2 * row + middle],
                            right.node.edges[2 * middle + column],
                        )
                        total = self.add_matrices(total, product)
                    children.append(total)
            cached = self.make_matrix_node(left.node.index, children)
            self._mult_mm.put(key, cached)
        return MEdge(cached.node, cached.weight * factor)

    # ------------------------------------------------------------------
    # inner products, norms, probabilities
    # ------------------------------------------------------------------

    def inner_product(self, left: VEdge, right: VEdge) -> complex:
        """Return ``<left|right>``."""
        if left.is_zero or right.is_zero:
            return 0.0
        if left.is_terminal and right.is_terminal:
            return left.weight.conjugate() * right.weight
        if left.is_terminal or right.is_terminal:
            raise DDError("states must have the same number of qubits")
        if left.node.index != right.node.index:
            raise DDError("states must be rooted at the same level")
        key = (id(left.node), id(right.node))
        cached = self._inner.get(key)
        if cached is None:
            cached = sum(
                self.inner_product(left.node.edges[branch], right.node.edges[branch])
                for branch in range(2)
            )
            self._inner.put(key, cached)
        return left.weight.conjugate() * right.weight * cached

    def fidelity(self, left: VEdge, right: VEdge) -> float:
        """Return ``|<left|right>|**2``."""
        return abs(self.inner_product(left, right)) ** 2

    def norm_squared(self, vector: VEdge) -> float:
        """Squared Euclidean norm of a vector DD."""
        if vector.is_zero:
            return 0.0
        if vector.is_terminal:
            return abs(vector.weight) ** 2
        key = id(vector.node)
        cached = self._norm.get(key)
        if cached is None:
            cached = sum(self.norm_squared(edge) for edge in vector.node.edges)
            self._norm.put(key, cached)
        return abs(vector.weight) ** 2 * cached

    def probability_of_one(self, vector: VEdge, qubit: int) -> float:
        """Probability that measuring ``qubit`` of ``vector`` yields 1."""
        if not 0 <= qubit < self.num_qubits:
            raise DDError(f"qubit {qubit} out of range")

        def recurse(edge: VEdge) -> float:
            if edge.is_zero:
                return 0.0
            if edge.is_terminal or edge.node.index < qubit:
                raise DDError("vector does not cover the requested qubit")
            if edge.node.index == qubit:
                return abs(edge.weight) ** 2 * self.norm_squared(edge.node.edges[1])
            return abs(edge.weight) ** 2 * (
                recurse(edge.node.edges[0]) + recurse(edge.node.edges[1])
            )

        return recurse(vector)

    def collapse(
        self, vector: VEdge, qubit: int, outcome: int, probability: float | None = None
    ) -> VEdge:
        """Project ``vector`` onto ``qubit == outcome`` and renormalize."""
        if outcome not in (0, 1):
            raise DDError(f"measurement outcome must be 0 or 1, got {outcome}")
        if probability is None:
            p_one = self.probability_of_one(vector, qubit)
            probability = p_one if outcome else 1.0 - p_one
        if probability <= 0.0:
            raise DDError(f"cannot collapse onto outcome {outcome} with probability 0")
        projector = self.operator_chain({qubit: _P1 if outcome else _P0})
        projected = self.multiply_matrix_vector(projector, vector)
        return self.scale_vector(projected, 1.0 / math.sqrt(probability))

    def apply_reset(self, vector: VEdge, qubit: int) -> list[tuple[float, VEdge]]:
        """Decompose a reset of ``qubit`` into its pure branches.

        Returns ``(probability, post-reset state)`` pairs with the qubit in
        |0>; zero-probability branches are omitted.
        """
        p_one = self.probability_of_one(vector, qubit)
        branches: list[tuple[float, VEdge]] = []
        if 1.0 - p_one > 0.0:
            branches.append((1.0 - p_one, self.collapse(vector, qubit, 0, 1.0 - p_one)))
        if p_one > 0.0:
            collapsed = self.collapse(vector, qubit, 1, p_one)
            flip = self.operator_chain({qubit: _X2})
            branches.append((p_one, self.multiply_matrix_vector(flip, collapsed)))
        return branches

    # ------------------------------------------------------------------
    # matrix queries
    # ------------------------------------------------------------------

    def trace(self, matrix: MEdge) -> complex:
        """Trace of a matrix DD over the full register."""
        if matrix.is_zero:
            return 0.0
        if matrix.is_terminal:
            return matrix.weight
        return matrix.weight * (
            self.trace(matrix.node.edges[0]) + self.trace(matrix.node.edges[3])
        )

    def max_entry_magnitude(self, matrix: MEdge) -> float:
        """Largest absolute value of any entry of the represented matrix."""
        if matrix.is_zero:
            return 0.0
        if matrix.is_terminal:
            return abs(matrix.weight)
        key = id(matrix.node)
        cached = self._max_entry.get(key)
        if cached is None:
            cached = max(self.max_entry_magnitude(edge) for edge in matrix.node.edges)
            self._max_entry.put(key, cached)
        return abs(matrix.weight) * cached

    def identity_scalar(self, matrix: MEdge, tolerance: float = 1e-7) -> complex | None:
        """Return ``c`` if the matrix equals ``c * I`` (within tolerance), else None."""

        cache: dict[int, complex | None] = {}

        def recurse(edge: MEdge) -> complex | None:
            if edge.is_zero:
                return 0.0
            if edge.is_terminal:
                return edge.weight
            key = id(edge.node)
            if key in cache:
                scalar = cache[key]
            else:
                scalar = self._identity_scalar_of_node(edge.node, tolerance, recurse)
                cache[key] = scalar
            if scalar is None:
                return None
            return edge.weight * scalar

        return recurse(matrix)

    def _identity_scalar_of_node(self, node: MNode, tolerance: float, recurse) -> complex | None:
        if self.max_entry_magnitude(node.edges[1]) > tolerance:
            return None
        if self.max_entry_magnitude(node.edges[2]) > tolerance:
            return None
        diag_low = recurse(node.edges[0])
        diag_high = recurse(node.edges[3])
        if diag_low is None or diag_high is None:
            return None
        if abs(diag_low - diag_high) > tolerance:
            return None
        return diag_low

    def is_identity(
        self, matrix: MEdge, up_to_global_phase: bool = True, tolerance: float = 1e-7
    ) -> bool:
        """Whether the matrix DD represents the identity (optionally up to phase)."""
        scalar = self.identity_scalar(matrix, tolerance)
        if scalar is None:
            return False
        if up_to_global_phase:
            return abs(abs(scalar) - 1.0) <= tolerance
        return abs(scalar - 1.0) <= tolerance

    # ------------------------------------------------------------------
    # gate cache
    # ------------------------------------------------------------------

    def gate_cache_lookup(self, key) -> MEdge | None:
        """Look up a previously built gate DD (None on miss or disabled cache).

        Keys are hashable gate descriptions — ``(gate, qubits)`` as produced by
        :func:`repro.dd.circuits.instruction_to_dd`.  A hit marks the entry as
        most recently used.  Hit/miss/eviction counters feed :meth:`statistics`.
        """
        if not self.gate_cache_enabled:
            return None
        cached = self._gate_cache.get(key)
        if cached is None:
            self._gate_cache_misses += 1
            return None
        self._gate_cache_hits += 1
        self._gate_cache.move_to_end(key)
        return cached

    def gate_cache_store(self, key, edge: MEdge) -> None:
        """Memoize the matrix DD of a gate (no-op when the cache is disabled).

        When ``gate_cache_size`` is set, storing beyond the bound evicts the
        least recently used entries so long-lived packages stay bounded.
        """
        if self.gate_cache_enabled:
            self._gate_cache[key] = edge
            self._gate_cache_evictions += self._evict_lru(self._gate_cache)

    def _evict_lru(self, cache: OrderedDict) -> int:
        """Trim ``cache`` down to ``gate_cache_size``; returns evicted count."""
        if self.gate_cache_size is None:
            return 0
        evicted = 0
        while len(cache) > self.gate_cache_size:
            cache.popitem(last=False)
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # conversion and inspection
    # ------------------------------------------------------------------

    def vector_to_numpy(self, vector: VEdge) -> np.ndarray:
        """Expand a vector DD into a dense amplitude array (little-endian)."""

        def recurse(edge: VEdge, level: int) -> np.ndarray:
            size = 1 << (level + 1)
            if edge.is_zero:
                return np.zeros(size, dtype=complex)
            if level < 0:
                return np.array([edge.weight], dtype=complex)
            result = np.concatenate(
                [recurse(edge.node.edges[0], level - 1), recurse(edge.node.edges[1], level - 1)]
            )
            return edge.weight * result

        return recurse(vector, self.num_qubits - 1)

    def matrix_to_numpy(self, matrix: MEdge) -> np.ndarray:
        """Expand a matrix DD into a dense array (little-endian indices)."""

        def recurse(edge: MEdge, level: int) -> np.ndarray:
            size = 1 << (level + 1)
            if edge.is_zero:
                return np.zeros((size, size), dtype=complex)
            if level < 0:
                return np.array([[edge.weight]], dtype=complex)
            blocks = [recurse(child, level - 1) for child in edge.node.edges]
            top = np.concatenate([blocks[0], blocks[1]], axis=1)
            bottom = np.concatenate([blocks[2], blocks[3]], axis=1)
            return edge.weight * np.concatenate([top, bottom], axis=0)

        return recurse(matrix, self.num_qubits - 1)

    @staticmethod
    def count_nodes(edge: "VEdge | MEdge") -> int:
        """Number of distinct nodes reachable from ``edge`` (excluding the terminal)."""
        seen: set[int] = set()

        def walk(current) -> None:
            node = current.node
            if node is None or id(node) in seen:
                return
            seen.add(id(node))
            for child in node.edges:
                walk(child)

        walk(edge)
        return len(seen)

    def statistics(self) -> dict[str, float]:
        """Table sizes and cache hit ratios (for reporting and benchmarks)."""
        return {
            "vector_nodes": len(self._vector_table),
            "matrix_nodes": len(self._matrix_table),
            "vector_unique_hit_ratio": self._vector_table.hit_ratio,
            "matrix_unique_hit_ratio": self._matrix_table.hit_ratio,
            "add_vector_cache": len(self._add_v),
            "add_matrix_cache": len(self._add_m),
            "multiply_mv_cache": len(self._mult_mv),
            "multiply_mm_cache": len(self._mult_mm),
            "chain_cache_size": len(self._chain_cache),
            "gate_cache_size": len(self._gate_cache),
            "gate_cache_limit": self.gate_cache_size,
            "gate_cache_hits": self._gate_cache_hits,
            "gate_cache_misses": self._gate_cache_misses,
            "gate_cache_evictions": self._gate_cache_evictions,
            "chain_cache_evictions": self._chain_cache_evictions,
            "gate_cache_hit_ratio": (
                self._gate_cache_hits / (self._gate_cache_hits + self._gate_cache_misses)
                if (self._gate_cache_hits + self._gate_cache_misses)
                else 0.0
            ),
        }

    def clear_caches(self) -> None:
        """Drop all compute tables and the gate cache (unique tables are kept)."""
        for table in (
            self._add_v,
            self._add_m,
            self._mult_mv,
            self._mult_mm,
            self._inner,
            self._norm,
            self._max_entry,
        ):
            table.clear()
        self._gate_cache.clear()
        self._chain_cache.clear()
