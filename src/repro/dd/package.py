"""The decision-diagram package: construction and manipulation of QMDDs.

This module provides the data-structure backend that tools like QCEC are built
on: quantum states are represented as *vector* decision diagrams and
operators as *matrix* decision diagrams, both with normalized, hash-consed
nodes and memoized recursive operations.  For the redundancy-rich diagrams
that appear during equivalence checking (products of a circuit with the
inverse of an equivalent circuit stay close to the identity) the
representation is exponentially more compact than dense arrays.

Conventions
-----------
* Qubit 0 is the lowest DD level (closest to the terminal); the top node of a
  diagram over ``n`` qubits has ``index == n - 1``.
* Vector/matrix indices are little-endian: bit ``q`` of an index is qubit ``q``.
* Matrix node successor ``2*row + column`` corresponds to the node qubit having
  output value ``row`` and input value ``column``.

Edge-factory invariants (performance-critical)
----------------------------------------------
The kernels in this module are the hottest code in the repository, so they
follow a small set of strict conventions:

* Edges are immutable flyweights.  The zero vector/matrix and the unit
  terminal edge are the module-level singletons
  :data:`~repro.dd.nodes.V_ZERO` / :data:`~repro.dd.nodes.M_ZERO` /
  :data:`~repro.dd.nodes.V_ONE` / :data:`~repro.dd.nodes.M_ONE`; kernels
  return those instead of allocating fresh terminal edges.
* ``VEdge`` / ``MEdge`` constructors store weights *as-is*.  Values crossing
  the numpy boundary (``operator_chain``, ``vector_from_numpy``, the dense
  re-import helpers, ``scale_*``) are coerced to Python ``complex`` once per
  entry, so downstream arithmetic stays on native complex numbers.
* Kernels never use the ``is_zero`` / ``is_terminal`` properties; they inline
  ``edge.node is None`` / ``weight == 0`` checks.
* Node construction goes through the specialized ``_make_vector_node`` /
  ``_make_matrix_node`` normalizers, which build the unique-table signature
  key inline (id + weight rounded to
  :data:`~repro.dd.complexvalue.HASH_DECIMALS` decimals) in the same loop
  that normalizes the successor weights; created nodes carry the hash of that
  key in their ``hash`` slot.
* Compute-table keys are weight-canonical: multiplication keys carry node ids
  only (both root weights factor out of the product), addition keys carry the
  right/left weight *ratio* — so numerically scaled instances of the same
  structural computation always hit the same entry.

Hybrid dense-subtree cutoff
---------------------------
With ``dense_cutoff = k > 0``, recursive arithmetic (add, matrix-vector and
matrix-matrix multiply) on sub-diagrams rooted strictly below level ``k``
switches to dense numpy blocks: the operands are expanded (memoized per
node), combined with one vectorized numpy operation, and the result is
re-imported through the normal normalizing node construction — so the result
lands in the same unique table and downstream verdicts are unchanged.  Small
sub-matrices are exactly where the recursive kernels pay the most Python
overhead per amplitude, which makes this profitable for the small-register
Table-1 instances; ``dense_cutoff = 0`` (the default of the raw package)
disables the hybrid path.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from repro.dd.complexvalue import DEFAULT_TOLERANCE, HASH_DECIMALS
from repro.dd.compute_table import ComputeTable
from repro.dd.nodes import M_ONE, M_ZERO, MEdge, MNode, V_ONE, V_ZERO, VEdge, VNode
from repro.dd.unique_table import UniqueTable
from repro.exceptions import DDError

__all__ = ["DDPackage"]

_P0 = np.array([[1, 0], [0, 0]], dtype=complex)
_P1 = np.array([[0, 0], [0, 1]], dtype=complex)
_ID2 = np.eye(2, dtype=complex)
_X2 = np.array([[0, 1], [1, 0]], dtype=complex)


class DDPackage:
    """A self-contained decision-diagram workspace for ``num_qubits`` qubits.

    All nodes created through one package share its unique table and compute
    tables; diagrams from different packages must not be mixed.

    ``dense_cutoff`` enables the hybrid dense-subtree kernels for sub-diagrams
    rooted below that level (see the module docstring); ``0`` disables them.
    """

    def __init__(
        self,
        num_qubits: int,
        tolerance: float = DEFAULT_TOLERANCE,
        gate_cache: bool = True,
        gate_cache_size: int | None = None,
        gate_cache_ttl: float | None = None,
        dense_cutoff: int = 0,
    ):
        if num_qubits < 1:
            raise DDError("a DD package needs at least one qubit")
        if gate_cache_size is not None and gate_cache_size < 1:
            raise DDError("gate_cache_size must be at least 1 (or None for unbounded)")
        if gate_cache_ttl is not None and gate_cache_ttl <= 0:
            raise DDError("gate_cache_ttl must be positive (or None for no expiry)")
        if dense_cutoff < 0:
            raise DDError("dense_cutoff must be non-negative (0 disables the hybrid kernels)")
        self.num_qubits = num_qubits
        self.tolerance = tolerance
        self.dense_cutoff = dense_cutoff
        self._vector_table: UniqueTable[VNode] = UniqueTable()
        self._matrix_table: UniqueTable[MNode] = UniqueTable()
        self._add_v = ComputeTable("vector-add")
        self._add_m = ComputeTable("matrix-add")
        self._mult_mv = ComputeTable("matrix-vector-multiply")
        self._mult_mm = ComputeTable("matrix-matrix-multiply")
        self._inner = ComputeTable("inner-product")
        self._norm = ComputeTable("norm-squared")
        self._max_entry = ComputeTable("max-entry")
        self._trace = ComputeTable("trace")
        # Dense expansions of sub-diagram nodes (weight-1 root), keyed by node
        # id; only populated when ``dense_cutoff > 0``.
        self._dense_v_cache: dict[int, np.ndarray] = {}
        self._dense_m_cache: dict[int, np.ndarray] = {}
        self.gate_cache_enabled = gate_cache
        # Both memoization caches are LRU-ordered: a hit refreshes the entry,
        # a store beyond ``gate_cache_size`` evicts the least recently used
        # entry.  ``None`` keeps them unbounded (fine for one-shot checks;
        # long-lived worker processes should set a bound).
        self.gate_cache_size = gate_cache_size
        # Time-based expiry, checked *lazily* on lookup (no sweeper thread —
        # this is the pattern long-lived service workers need: entries whose
        # traffic went away age out the next time anything asks for them).
        # Timestamps live in side dicts so the TTL-off hot path stays the
        # plain OrderedDict access the PR 3 kernels were tuned for; the
        # clock is an attribute so tests can inject a fake one.
        self.gate_cache_ttl = gate_cache_ttl
        self._clock = time.monotonic
        self._gate_cache: OrderedDict = OrderedDict()
        self._gate_cache_times: dict = {}
        self._gate_cache_hits = 0
        self._gate_cache_misses = 0
        self._gate_cache_evictions = 0
        self._gate_cache_expirations = 0
        self._chain_cache: OrderedDict = OrderedDict()
        self._chain_cache_times: dict = {}
        self._chain_cache_evictions = 0
        self._chain_cache_expirations = 0

    def __reduce__(self):
        raise TypeError(
            "DDPackage is process-local and must never be pickled; workers "
            "rebuild their own packages from the (picklable) Configuration"
        )

    # ------------------------------------------------------------------
    # terminals and node construction
    # ------------------------------------------------------------------

    @staticmethod
    def zero_vector_edge() -> VEdge:
        """The zero vector (canonical shared edge)."""
        return V_ZERO

    @staticmethod
    def zero_matrix_edge() -> MEdge:
        """The zero matrix (canonical shared edge)."""
        return M_ZERO

    def make_vector_node(self, index: int, edges: Sequence[VEdge]) -> VEdge:
        """Create (or reuse) a normalized vector node and return an edge to it."""
        edges = tuple(edges)
        if len(edges) != 2:
            raise DDError(f"vector nodes have 2 successors, got {len(edges)}")
        return self._make_vector_node(index, edges[0], edges[1])

    def make_matrix_node(self, index: int, edges: Sequence[MEdge]) -> MEdge:
        """Create (or reuse) a normalized matrix node and return an edge to it."""
        edges = tuple(edges)
        if len(edges) != 4:
            raise DDError(f"matrix nodes have 4 successors, got {len(edges)}")
        return self._make_matrix_node(index, edges[0], edges[1], edges[2], edges[3])

    def _make_vector_node(self, index: int, e0: VEdge, e1: VEdge) -> VEdge:
        """Normalize two successor edges and hash-cons the resulting node.

        The unique-table signature ``(index, id, re, im, id, re, im)`` is
        assembled in the same pass that normalizes the weights; the pivot is
        the first successor of maximal magnitude and becomes the returned
        edge's weight.
        """
        tol = self.tolerance
        w0 = e0.weight
        w1 = e1.weight
        a0 = abs(w0)
        a1 = abs(w1)
        if a0 >= a1:
            largest = a0
            pivot = w0
        else:
            largest = a1
            pivot = w1
        if largest <= tol:
            return V_ZERO
        if -tol <= w0.real <= tol and -tol <= w0.imag <= tol:
            n0 = V_ZERO
            k0 = 0
            kr0 = 0.0
            ki0 = 0.0
        else:
            nw = w0 / pivot
            n0 = VEdge(e0.node, nw)
            k0 = id(e0.node) if e0.node is not None else 0
            kr0 = round(nw.real, HASH_DECIMALS) or 0.0
            ki0 = round(nw.imag, HASH_DECIMALS) or 0.0
        if -tol <= w1.real <= tol and -tol <= w1.imag <= tol:
            n1 = V_ZERO
            k1 = 0
            kr1 = 0.0
            ki1 = 0.0
        else:
            nw = w1 / pivot
            n1 = VEdge(e1.node, nw)
            k1 = id(e1.node) if e1.node is not None else 0
            kr1 = round(nw.real, HASH_DECIMALS) or 0.0
            ki1 = round(nw.imag, HASH_DECIMALS) or 0.0
        key = (index, k0, kr0, ki0, k1, kr1, ki1)
        node = self._vector_table.get_or_create(key, index, (n0, n1), VNode)
        return VEdge(node, pivot)

    def _make_matrix_node(
        self, index: int, e0: MEdge, e1: MEdge, e2: MEdge, e3: MEdge
    ) -> MEdge:
        """Four-successor counterpart of :meth:`_make_vector_node`."""
        tol = self.tolerance
        w0 = e0.weight
        w1 = e1.weight
        w2 = e2.weight
        w3 = e3.weight
        a0 = abs(w0)
        a1 = abs(w1)
        a2 = abs(w2)
        a3 = abs(w3)
        largest = a0
        pivot = w0
        if a1 > largest:
            largest = a1
            pivot = w1
        if a2 > largest:
            largest = a2
            pivot = w2
        if a3 > largest:
            largest = a3
            pivot = w3
        if largest <= tol:
            return M_ZERO
        if -tol <= w0.real <= tol and -tol <= w0.imag <= tol:
            n0 = M_ZERO
            k0 = 0
            kr0 = 0.0
            ki0 = 0.0
        else:
            nw = w0 / pivot
            n0 = MEdge(e0.node, nw)
            k0 = id(e0.node) if e0.node is not None else 0
            kr0 = round(nw.real, HASH_DECIMALS) or 0.0
            ki0 = round(nw.imag, HASH_DECIMALS) or 0.0
        if -tol <= w1.real <= tol and -tol <= w1.imag <= tol:
            n1 = M_ZERO
            k1 = 0
            kr1 = 0.0
            ki1 = 0.0
        else:
            nw = w1 / pivot
            n1 = MEdge(e1.node, nw)
            k1 = id(e1.node) if e1.node is not None else 0
            kr1 = round(nw.real, HASH_DECIMALS) or 0.0
            ki1 = round(nw.imag, HASH_DECIMALS) or 0.0
        if -tol <= w2.real <= tol and -tol <= w2.imag <= tol:
            n2 = M_ZERO
            k2 = 0
            kr2 = 0.0
            ki2 = 0.0
        else:
            nw = w2 / pivot
            n2 = MEdge(e2.node, nw)
            k2 = id(e2.node) if e2.node is not None else 0
            kr2 = round(nw.real, HASH_DECIMALS) or 0.0
            ki2 = round(nw.imag, HASH_DECIMALS) or 0.0
        if -tol <= w3.real <= tol and -tol <= w3.imag <= tol:
            n3 = M_ZERO
            k3 = 0
            kr3 = 0.0
            ki3 = 0.0
        else:
            nw = w3 / pivot
            n3 = MEdge(e3.node, nw)
            k3 = id(e3.node) if e3.node is not None else 0
            kr3 = round(nw.real, HASH_DECIMALS) or 0.0
            ki3 = round(nw.imag, HASH_DECIMALS) or 0.0
        key = (index, k0, kr0, ki0, k1, kr1, ki1, k2, kr2, ki2, k3, kr3, ki3)
        node = self._matrix_table.get_or_create(key, index, (n0, n1, n2, n3), MNode)
        return MEdge(node, pivot)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------

    def zero_state(self) -> VEdge:
        """The all-zeros computational basis state |0...0>."""
        return self.basis_state(0)

    def basis_state(self, value: "int | Sequence[int]") -> VEdge:
        """A computational basis state given as an integer or per-qubit bits.

        Per-qubit bit sequences must consist of 0/1 values only.
        """
        if isinstance(value, int):
            if not 0 <= value < (1 << self.num_qubits):
                raise DDError(f"basis state {value} out of range for {self.num_qubits} qubits")
            bits = [(value >> q) & 1 for q in range(self.num_qubits)]
        else:
            bits = list(value)
            if len(bits) != self.num_qubits:
                raise DDError(
                    f"expected {self.num_qubits} bits, got {len(bits)}"
                )
            for position, bit in enumerate(bits):
                if bit not in (0, 1):
                    raise DDError(
                        f"basis-state bit for qubit {position} must be 0 or 1, got {bit!r}"
                    )
        edge = V_ONE
        for qubit in range(self.num_qubits):
            if bits[qubit]:
                edge = self._make_vector_node(qubit, V_ZERO, edge)
            else:
                edge = self._make_vector_node(qubit, edge, V_ZERO)
        return edge

    def vector_from_numpy(self, amplitudes: np.ndarray) -> VEdge:
        """Build a vector DD from a dense amplitude array (little-endian)."""
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if amplitudes.size != (1 << self.num_qubits):
            raise DDError(
                f"amplitude vector of length {amplitudes.size} does not match "
                f"{self.num_qubits} qubits"
            )

        def build(offset: int, level: int) -> VEdge:
            if level < 0:
                return VEdge(None, complex(amplitudes[offset]))
            half = 1 << level
            low = build(offset, level - 1)
            high = build(offset + half, level - 1)
            return self._make_vector_node(level, low, high)

        return build(0, self.num_qubits - 1)

    # ------------------------------------------------------------------
    # operator construction
    # ------------------------------------------------------------------

    def identity(self) -> MEdge:
        """The identity operator on all qubits."""
        return self.operator_chain({})

    def operator_chain(self, operators: Mapping[int, np.ndarray]) -> MEdge:
        """Tensor product of single-qubit operators (identity where omitted).

        ``operators`` maps qubit index to a ``2x2`` matrix.  Chains are
        memoized per package (DD edges are immutable, so sharing is safe):
        every controlled gate rebuilds an identity and projector chains, which
        makes this the hottest construction path of gate building.
        """
        key = None
        if self.gate_cache_enabled:
            key = tuple(
                (qubit, matrix.tobytes()) for qubit, matrix in sorted(operators.items())
            )
            cached = self._chain_cache.get(key)
            if cached is not None:
                if self.gate_cache_ttl is not None and (
                    self._clock() - self._chain_cache_times[key] > self.gate_cache_ttl
                ):
                    del self._chain_cache[key]
                    del self._chain_cache_times[key]
                    self._chain_cache_expirations += 1
                else:
                    self._chain_cache.move_to_end(key)
                    return cached
        edge = self._build_operator_chain(operators)
        if key is not None:
            self._chain_cache[key] = edge
            if self.gate_cache_ttl is not None:
                self._chain_cache_times[key] = self._clock()
            self._chain_cache_evictions += self._evict_lru(
                self._chain_cache, self._chain_cache_times
            )
        return edge

    def _build_operator_chain(self, operators: Mapping[int, np.ndarray]) -> MEdge:
        edge = M_ONE
        make = self._make_matrix_node
        get = operators.get
        for qubit in range(self.num_qubits):
            matrix = get(qubit)
            node = edge.node
            weight = edge.weight
            if matrix is None:
                # Identity level: diagonal successors share the chain so far.
                diagonal = MEdge(node, weight)
                edge = make(qubit, diagonal, M_ZERO, M_ZERO, diagonal)
                continue
            if matrix.shape != (2, 2):
                raise DDError(f"operator for qubit {qubit} must be 2x2, got {matrix.shape}")
            edge = make(
                qubit,
                MEdge(node, weight * complex(matrix[0, 0])),
                MEdge(node, weight * complex(matrix[0, 1])),
                MEdge(node, weight * complex(matrix[1, 0])),
                MEdge(node, weight * complex(matrix[1, 1])),
            )
        return edge

    def controlled_gate(
        self,
        matrix: np.ndarray,
        target: int,
        controls: Mapping[int, int] | None = None,
    ) -> MEdge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        ``controls`` maps control qubits to their activation value (1 for a
        regular control, 0 for a negative control).  Without controls this is
        simply the single-qubit operator embedded into the full register.
        """
        if matrix.shape != (2, 2):
            raise DDError(f"controlled_gate expects a 2x2 matrix, got {matrix.shape}")
        if not 0 <= target < self.num_qubits:
            raise DDError(f"target qubit {target} out of range")
        controls = dict(controls or {})
        if target in controls:
            raise DDError(f"qubit {target} cannot be both control and target")
        for qubit, value in controls.items():
            if not 0 <= qubit < self.num_qubits:
                raise DDError(f"control qubit {qubit} out of range")
            if value not in (0, 1):
                raise DDError(f"control activation value must be 0 or 1, got {value}")
        if not controls:
            return self.operator_chain({target: matrix})

        projectors = {qubit: (_P1 if value else _P0) for qubit, value in controls.items()}
        active = self.operator_chain({**projectors, target: matrix})
        blocked = self.operator_chain({**projectors, target: _ID2})
        identity = self.identity()
        inactive = self.add_matrices(identity, self.scale_matrix(blocked, -1.0))
        return self.add_matrices(active, inactive)

    @staticmethod
    def scale_matrix(edge: MEdge, factor: complex) -> MEdge:
        """Multiply a matrix DD by a scalar."""
        if factor == 0 or (edge.node is None and edge.weight == 0):
            return M_ZERO
        return MEdge(edge.node, edge.weight * complex(factor))

    @staticmethod
    def scale_vector(edge: VEdge, factor: complex) -> VEdge:
        """Multiply a vector DD by a scalar."""
        if factor == 0 or (edge.node is None and edge.weight == 0):
            return V_ZERO
        return VEdge(edge.node, edge.weight * complex(factor))

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def add_vectors(self, left: VEdge, right: VEdge) -> VEdge:
        """Element-wise sum of two vector DDs."""
        return self._add_v_rec(left, right)

    def add_matrices(self, left: MEdge, right: MEdge) -> MEdge:
        """Element-wise sum of two matrix DDs."""
        return self._add_m_rec(left, right)

    def _add_v_rec(self, left: VEdge, right: VEdge) -> VEdge:
        """Recursive vector addition.

        The compute-table key is weight-canonical: it carries the
        right-to-left weight *ratio*, so any pair of identically-structured
        operands hits the same entry regardless of absolute scale.
        """
        lnode = left.node
        lweight = left.weight
        if lnode is None and lweight == 0:
            return right
        rnode = right.node
        rweight = right.weight
        if rnode is None and rweight == 0:
            return left
        if lnode is None or rnode is None:
            if lnode is None and rnode is None:
                return VEdge(None, lweight + rweight)
            raise DDError("cannot add diagrams of different depth")
        index = lnode.index
        if index != rnode.index:
            raise DDError(
                f"cannot add diagrams rooted at different levels "
                f"({index} vs {rnode.index})"
            )
        ratio = rweight / lweight
        key = (id(lnode), id(rnode), round(ratio.real, HASH_DECIMALS) or 0.0, round(ratio.imag, HASH_DECIMALS) or 0.0)
        table = self._add_v._table
        cached = table.get(key)
        if cached is None:
            if index < self.dense_cutoff:
                dense = self._node_dense_v(lnode) + ratio * self._node_dense_v(rnode)
                cached = self._vector_from_dense(dense, index)
            else:
                ledges = lnode.edges
                redges = rnode.edges
                r0 = redges[0]
                r1 = redges[1]
                cached = self._make_vector_node(
                    index,
                    self._add_v_rec(ledges[0], VEdge(r0.node, r0.weight * ratio)),
                    self._add_v_rec(ledges[1], VEdge(r1.node, r1.weight * ratio)),
                )
            table[key] = cached
        return VEdge(cached.node, cached.weight * lweight)

    def _add_m_rec(self, left: MEdge, right: MEdge) -> MEdge:
        """Recursive matrix addition (see :meth:`_add_v_rec`)."""
        lnode = left.node
        lweight = left.weight
        if lnode is None and lweight == 0:
            return right
        rnode = right.node
        rweight = right.weight
        if rnode is None and rweight == 0:
            return left
        if lnode is None or rnode is None:
            if lnode is None and rnode is None:
                return MEdge(None, lweight + rweight)
            raise DDError("cannot add diagrams of different depth")
        index = lnode.index
        if index != rnode.index:
            raise DDError(
                f"cannot add diagrams rooted at different levels "
                f"({index} vs {rnode.index})"
            )
        ratio = rweight / lweight
        key = (id(lnode), id(rnode), round(ratio.real, HASH_DECIMALS) or 0.0, round(ratio.imag, HASH_DECIMALS) or 0.0)
        table = self._add_m._table
        cached = table.get(key)
        if cached is None:
            if index < self.dense_cutoff:
                dense = self._node_dense_m(lnode) + ratio * self._node_dense_m(rnode)
                cached = self._matrix_from_dense(dense, index)
            else:
                ledges = lnode.edges
                redges = rnode.edges
                r0 = redges[0]
                r1 = redges[1]
                r2 = redges[2]
                r3 = redges[3]
                cached = self._make_matrix_node(
                    index,
                    self._add_m_rec(ledges[0], MEdge(r0.node, r0.weight * ratio)),
                    self._add_m_rec(ledges[1], MEdge(r1.node, r1.weight * ratio)),
                    self._add_m_rec(ledges[2], MEdge(r2.node, r2.weight * ratio)),
                    self._add_m_rec(ledges[3], MEdge(r3.node, r3.weight * ratio)),
                )
            table[key] = cached
        return MEdge(cached.node, cached.weight * lweight)

    def multiply_matrix_vector(self, matrix: MEdge, vector: VEdge) -> VEdge:
        """Apply a matrix DD to a vector DD.

        The compute-table key carries node ids only — both root weights factor
        out of the product, so the key is fully weight-canonical.
        """
        mnode = matrix.node
        mweight = matrix.weight
        if mnode is None and mweight == 0:
            return V_ZERO
        vnode = vector.node
        vweight = vector.weight
        if vnode is None and vweight == 0:
            return V_ZERO
        if mnode is None or vnode is None:
            if mnode is None and vnode is None:
                return VEdge(None, mweight * vweight)
            raise DDError("matrix and vector diagrams must have the same depth")
        index = mnode.index
        if index != vnode.index:
            raise DDError(
                f"matrix level {index} does not match vector level "
                f"{vnode.index}"
            )
        key = (id(mnode), id(vnode))
        table = self._mult_mv._table
        cached = table.get(key)
        if cached is None:
            if index < self.dense_cutoff:
                dense = self._node_dense_m(mnode) @ self._node_dense_v(vnode)
                cached = self._vector_from_dense(dense, index)
            else:
                medges = mnode.edges
                vedges = vnode.edges
                v0 = vedges[0]
                v1 = vedges[1]
                multiply = self.multiply_matrix_vector
                cached = self._make_vector_node(
                    index,
                    self._add_v_rec(multiply(medges[0], v0), multiply(medges[1], v1)),
                    self._add_v_rec(multiply(medges[2], v0), multiply(medges[3], v1)),
                )
            table[key] = cached
        return VEdge(cached.node, cached.weight * (mweight * vweight))

    def multiply_matrices(self, left: MEdge, right: MEdge) -> MEdge:
        """Matrix product ``left @ right`` of two matrix DDs.

        Keyed like :meth:`multiply_matrix_vector` (node ids only; weights
        factor out).
        """
        lnode = left.node
        lweight = left.weight
        if lnode is None and lweight == 0:
            return M_ZERO
        rnode = right.node
        rweight = right.weight
        if rnode is None and rweight == 0:
            return M_ZERO
        if lnode is None or rnode is None:
            if lnode is None and rnode is None:
                return MEdge(None, lweight * rweight)
            raise DDError("matrix diagrams must have the same depth")
        index = lnode.index
        if index != rnode.index:
            raise DDError(
                f"cannot multiply diagrams rooted at different levels "
                f"({index} vs {rnode.index})"
            )
        key = (id(lnode), id(rnode))
        table = self._mult_mm._table
        cached = table.get(key)
        if cached is None:
            if index < self.dense_cutoff:
                dense = self._node_dense_m(lnode) @ self._node_dense_m(rnode)
                cached = self._matrix_from_dense(dense, index)
            else:
                ledges = lnode.edges
                redges = rnode.edges
                l0 = ledges[0]
                l1 = ledges[1]
                l2 = ledges[2]
                l3 = ledges[3]
                r0 = redges[0]
                r1 = redges[1]
                r2 = redges[2]
                r3 = redges[3]
                multiply = self.multiply_matrices
                add = self._add_m_rec
                cached = self._make_matrix_node(
                    index,
                    add(multiply(l0, r0), multiply(l1, r2)),
                    add(multiply(l0, r1), multiply(l1, r3)),
                    add(multiply(l2, r0), multiply(l3, r2)),
                    add(multiply(l2, r1), multiply(l3, r3)),
                )
            table[key] = cached
        return MEdge(cached.node, cached.weight * (lweight * rweight))

    # ------------------------------------------------------------------
    # hybrid dense-subtree kernels
    # ------------------------------------------------------------------

    def _node_dense_v(self, node: VNode) -> np.ndarray:
        """Dense amplitudes of ``node``'s subtree (root weight 1), memoized."""
        cache = self._dense_v_cache
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        index = node.index
        size = 1 << index
        array = np.zeros(2 * size, dtype=complex)
        for slot, edge in enumerate(node.edges):
            child = edge.node
            if child is not None:
                array[slot * size : (slot + 1) * size] = edge.weight * self._node_dense_v(child)
            elif edge.weight != 0:
                if index != 0:
                    raise DDError("dense evaluation requires fully-leveled diagrams")
                array[slot] = edge.weight
        cache[id(node)] = array
        return array

    def _node_dense_m(self, node: MNode) -> np.ndarray:
        """Dense matrix of ``node``'s subtree (root weight 1), memoized."""
        cache = self._dense_m_cache
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        index = node.index
        size = 1 << index
        array = np.zeros((2 * size, 2 * size), dtype=complex)
        for slot, edge in enumerate(node.edges):
            child = edge.node
            row = (slot >> 1) * size
            column = (slot & 1) * size
            if child is not None:
                array[row : row + size, column : column + size] = (
                    edge.weight * self._node_dense_m(child)
                )
            elif edge.weight != 0:
                if index != 0:
                    raise DDError("dense evaluation requires fully-leveled diagrams")
                array[row, column] = edge.weight
        cache[id(node)] = array
        return array

    def _vector_from_dense(self, array: np.ndarray, level: int) -> VEdge:
        """Re-import a dense block as a (normalized, hash-consed) vector DD."""
        if level < 0:
            return VEdge(None, complex(array[0]))
        if not array.any():
            return V_ZERO
        half = 1 << level
        return self._make_vector_node(
            level,
            self._vector_from_dense(array[:half], level - 1),
            self._vector_from_dense(array[half:], level - 1),
        )

    def _matrix_from_dense(self, array: np.ndarray, level: int) -> MEdge:
        """Re-import a dense block as a (normalized, hash-consed) matrix DD."""
        if level < 0:
            return MEdge(None, complex(array[0, 0]))
        if not array.any():
            return M_ZERO
        half = 1 << level
        return self._make_matrix_node(
            level,
            self._matrix_from_dense(array[:half, :half], level - 1),
            self._matrix_from_dense(array[:half, half:], level - 1),
            self._matrix_from_dense(array[half:, :half], level - 1),
            self._matrix_from_dense(array[half:, half:], level - 1),
        )

    # ------------------------------------------------------------------
    # inner products, norms, probabilities
    # ------------------------------------------------------------------

    def inner_product(self, left: VEdge, right: VEdge) -> complex:
        """Return ``<left|right>``."""
        lnode = left.node
        if lnode is None and left.weight == 0:
            return 0.0
        rnode = right.node
        if rnode is None and right.weight == 0:
            return 0.0
        if lnode is None or rnode is None:
            if lnode is None and rnode is None:
                return left.weight.conjugate() * right.weight
            raise DDError("states must have the same number of qubits")
        if lnode.index != rnode.index:
            raise DDError("states must be rooted at the same level")
        key = (id(lnode), id(rnode))
        table = self._inner._table
        cached = table.get(key)
        if cached is None:
            cached = sum(
                self.inner_product(lnode.edges[branch], rnode.edges[branch])
                for branch in range(2)
            )
            table[key] = cached
        return left.weight.conjugate() * right.weight * cached

    def fidelity(self, left: VEdge, right: VEdge) -> float:
        """Return ``|<left|right>|**2``."""
        return abs(self.inner_product(left, right)) ** 2

    def norm_squared(self, vector: VEdge) -> float:
        """Squared Euclidean norm of a vector DD."""
        node = vector.node
        if node is None:
            weight = vector.weight
            return 0.0 if weight == 0 else abs(weight) ** 2
        key = id(node)
        table = self._norm._table
        cached = table.get(key)
        if cached is None:
            cached = sum(self.norm_squared(edge) for edge in node.edges)
            table[key] = cached
        return abs(vector.weight) ** 2 * cached

    def probability_of_one(self, vector: VEdge, qubit: int) -> float:
        """Probability that measuring ``qubit`` of ``vector`` yields 1.

        Shared nodes above the target qubit are visited once (per-call memo),
        not once per path.
        """
        if not 0 <= qubit < self.num_qubits:
            raise DDError(f"qubit {qubit} out of range")
        memo: dict[int, float] = {}

        def recurse(edge: VEdge) -> float:
            node = edge.node
            if node is None:
                if edge.weight == 0:
                    return 0.0
                raise DDError("vector does not cover the requested qubit")
            if node.index < qubit:
                raise DDError("vector does not cover the requested qubit")
            key = id(node)
            relative = memo.get(key)
            if relative is None:
                if node.index == qubit:
                    relative = self.norm_squared(node.edges[1])
                else:
                    relative = recurse(node.edges[0]) + recurse(node.edges[1])
                memo[key] = relative
            return abs(edge.weight) ** 2 * relative

        return recurse(vector)

    def collapse(
        self, vector: VEdge, qubit: int, outcome: int, probability: float | None = None
    ) -> VEdge:
        """Project ``vector`` onto ``qubit == outcome`` and renormalize."""
        if outcome not in (0, 1):
            raise DDError(f"measurement outcome must be 0 or 1, got {outcome}")
        if probability is None:
            p_one = self.probability_of_one(vector, qubit)
            probability = p_one if outcome else 1.0 - p_one
        if probability <= 0.0:
            raise DDError(f"cannot collapse onto outcome {outcome} with probability 0")
        projector = self.operator_chain({qubit: _P1 if outcome else _P0})
        projected = self.multiply_matrix_vector(projector, vector)
        return self.scale_vector(projected, 1.0 / math.sqrt(probability))

    def apply_reset(self, vector: VEdge, qubit: int) -> list[tuple[float, VEdge]]:
        """Decompose a reset of ``qubit`` into its pure branches.

        Returns ``(probability, post-reset state)`` pairs with the qubit in
        |0>; zero-probability branches are omitted.
        """
        p_one = self.probability_of_one(vector, qubit)
        branches: list[tuple[float, VEdge]] = []
        if 1.0 - p_one > 0.0:
            branches.append((1.0 - p_one, self.collapse(vector, qubit, 0, 1.0 - p_one)))
        if p_one > 0.0:
            collapsed = self.collapse(vector, qubit, 1, p_one)
            flip = self.operator_chain({qubit: _X2})
            branches.append((p_one, self.multiply_matrix_vector(flip, collapsed)))
        return branches

    # ------------------------------------------------------------------
    # matrix queries
    # ------------------------------------------------------------------

    def trace(self, matrix: MEdge) -> complex:
        """Trace of a matrix DD over the full register.

        Memoized per node, so diagrams with heavy sharing (e.g. the identity)
        are traced in time linear in their node count rather than exponential
        in the number of qubits.
        """
        node = matrix.node
        if node is None:
            weight = matrix.weight
            return 0.0 if weight == 0 else weight
        key = id(node)
        table = self._trace._table
        cached = table.get(key)
        if cached is None:
            edges = node.edges
            cached = self.trace(edges[0]) + self.trace(edges[3])
            table[key] = cached
        return matrix.weight * cached

    def max_entry_magnitude(self, matrix: MEdge) -> float:
        """Largest absolute value of any entry of the represented matrix."""
        node = matrix.node
        if node is None:
            weight = matrix.weight
            return 0.0 if weight == 0 else abs(weight)
        key = id(node)
        table = self._max_entry._table
        cached = table.get(key)
        if cached is None:
            cached = max(self.max_entry_magnitude(edge) for edge in node.edges)
            table[key] = cached
        return abs(matrix.weight) * cached

    def identity_scalar(self, matrix: MEdge, tolerance: float = 1e-7) -> complex | None:
        """Return ``c`` if the matrix equals ``c * I`` (within tolerance), else None."""

        cache: dict[int, complex | None] = {}

        def recurse(edge: MEdge) -> complex | None:
            if edge.node is None:
                weight = edge.weight
                return 0.0 if weight == 0 else weight
            key = id(edge.node)
            if key in cache:
                scalar = cache[key]
            else:
                scalar = self._identity_scalar_of_node(edge.node, tolerance, recurse)
                cache[key] = scalar
            if scalar is None:
                return None
            return edge.weight * scalar

        return recurse(matrix)

    def _identity_scalar_of_node(self, node: MNode, tolerance: float, recurse) -> complex | None:
        if self.max_entry_magnitude(node.edges[1]) > tolerance:
            return None
        if self.max_entry_magnitude(node.edges[2]) > tolerance:
            return None
        diag_low = recurse(node.edges[0])
        diag_high = recurse(node.edges[3])
        if diag_low is None or diag_high is None:
            return None
        if abs(diag_low - diag_high) > tolerance:
            return None
        return diag_low

    def is_identity(
        self, matrix: MEdge, up_to_global_phase: bool = True, tolerance: float = 1e-7
    ) -> bool:
        """Whether the matrix DD represents the identity (optionally up to phase)."""
        scalar = self.identity_scalar(matrix, tolerance)
        if scalar is None:
            return False
        if up_to_global_phase:
            return abs(abs(scalar) - 1.0) <= tolerance
        return abs(scalar - 1.0) <= tolerance

    # ------------------------------------------------------------------
    # gate cache
    # ------------------------------------------------------------------

    def gate_cache_lookup(self, key) -> MEdge | None:
        """Look up a previously built gate DD (None on miss or disabled cache).

        Keys are hashable gate descriptions — ``(gate, qubits)`` as produced by
        :func:`repro.dd.circuits.instruction_to_dd`.  A hit marks the entry as
        most recently used.  With ``gate_cache_ttl`` set, an entry older than
        the TTL is dropped here (lazily, on lookup) and counted as both an
        expiration and a miss.  Hit/miss/eviction/expiry counters feed
        :meth:`statistics`.
        """
        if not self.gate_cache_enabled:
            return None
        cached = self._gate_cache.get(key)
        if cached is None:
            self._gate_cache_misses += 1
            return None
        if self.gate_cache_ttl is not None and (
            self._clock() - self._gate_cache_times[key] > self.gate_cache_ttl
        ):
            del self._gate_cache[key]
            del self._gate_cache_times[key]
            self._gate_cache_expirations += 1
            self._gate_cache_misses += 1
            return None
        self._gate_cache_hits += 1
        self._gate_cache.move_to_end(key)
        return cached

    def gate_cache_store(self, key, edge: MEdge) -> None:
        """Memoize the matrix DD of a gate (no-op when the cache is disabled).

        When ``gate_cache_size`` is set, storing beyond the bound evicts the
        least recently used entries so long-lived packages stay bounded;
        ``gate_cache_ttl`` additionally stamps the entry for lazy expiry.
        """
        if self.gate_cache_enabled:
            self._gate_cache[key] = edge
            if self.gate_cache_ttl is not None:
                self._gate_cache_times[key] = self._clock()
            self._gate_cache_evictions += self._evict_lru(
                self._gate_cache, self._gate_cache_times
            )

    def _evict_lru(self, cache: OrderedDict, times: dict) -> int:
        """Trim ``cache`` down to ``gate_cache_size``; returns evicted count."""
        if self.gate_cache_size is None:
            return 0
        evicted = 0
        while len(cache) > self.gate_cache_size:
            key, _ = cache.popitem(last=False)
            times.pop(key, None)
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # conversion and inspection
    # ------------------------------------------------------------------

    def vector_to_numpy(self, vector: VEdge) -> np.ndarray:
        """Expand a vector DD into a dense amplitude array (little-endian)."""

        def recurse(edge: VEdge, level: int) -> np.ndarray:
            size = 1 << (level + 1)
            if edge.node is None and edge.weight == 0:
                return np.zeros(size, dtype=complex)
            if level < 0:
                return np.array([edge.weight], dtype=complex)
            result = np.concatenate(
                [recurse(edge.node.edges[0], level - 1), recurse(edge.node.edges[1], level - 1)]
            )
            return edge.weight * result

        return recurse(vector, self.num_qubits - 1)

    def matrix_to_numpy(self, matrix: MEdge) -> np.ndarray:
        """Expand a matrix DD into a dense array (little-endian indices)."""

        def recurse(edge: MEdge, level: int) -> np.ndarray:
            size = 1 << (level + 1)
            if edge.node is None and edge.weight == 0:
                return np.zeros((size, size), dtype=complex)
            if level < 0:
                return np.array([[edge.weight]], dtype=complex)
            blocks = [recurse(child, level - 1) for child in edge.node.edges]
            top = np.concatenate([blocks[0], blocks[1]], axis=1)
            bottom = np.concatenate([blocks[2], blocks[3]], axis=1)
            return edge.weight * np.concatenate([top, bottom], axis=0)

        return recurse(matrix, self.num_qubits - 1)

    @staticmethod
    def count_nodes(edge: "VEdge | MEdge") -> int:
        """Number of distinct nodes reachable from ``edge`` (excluding the terminal)."""
        seen: set[int] = set()

        def walk(current) -> None:
            node = current.node
            if node is None or id(node) in seen:
                return
            seen.add(id(node))
            for child in node.edges:
                walk(child)

        walk(edge)
        return len(seen)

    def statistics(self) -> dict[str, float]:
        """Table sizes and cache hit ratios (for reporting and benchmarks)."""
        return {
            "vector_nodes": len(self._vector_table),
            "matrix_nodes": len(self._matrix_table),
            "vector_unique_hit_ratio": self._vector_table.hit_ratio,
            "matrix_unique_hit_ratio": self._matrix_table.hit_ratio,
            "add_vector_cache": len(self._add_v),
            "add_matrix_cache": len(self._add_m),
            "multiply_mv_cache": len(self._mult_mv),
            "multiply_mm_cache": len(self._mult_mm),
            "trace_cache": len(self._trace),
            "dense_cutoff": self.dense_cutoff,
            "dense_vector_cache": len(self._dense_v_cache),
            "dense_matrix_cache": len(self._dense_m_cache),
            "chain_cache_size": len(self._chain_cache),
            "gate_cache_size": len(self._gate_cache),
            "gate_cache_limit": self.gate_cache_size,
            "gate_cache_hits": self._gate_cache_hits,
            "gate_cache_misses": self._gate_cache_misses,
            "gate_cache_evictions": self._gate_cache_evictions,
            "chain_cache_evictions": self._chain_cache_evictions,
            "gate_cache_ttl": self.gate_cache_ttl,
            "gate_cache_expirations": self._gate_cache_expirations,
            "chain_cache_expirations": self._chain_cache_expirations,
            "gate_cache_hit_ratio": (
                self._gate_cache_hits / (self._gate_cache_hits + self._gate_cache_misses)
                if (self._gate_cache_hits + self._gate_cache_misses)
                else 0.0
            ),
        }

    def publish_metrics(self, registry, checker: str = "standalone") -> None:
        """Push this package's counters into a unified metrics registry.

        ``registry`` is a :class:`repro.service.metrics.MetricsRegistry`;
        the import is deferred because the DD layer sits below the service
        layer.  Checker code that hands its statistics to the manager via
        result details does not need this — the manager harvests those into
        the same series; this hook is for standalone package users (tests,
        benchmarks, notebooks) that want their runs on the same dashboard.
        """
        from repro.service.metrics import publish_dd_statistics

        publish_dd_statistics(registry, self.statistics(), checker=checker)

    def clear_caches(self) -> None:
        """Drop all compute tables and the gate cache (unique tables are kept)."""
        for table in (
            self._add_v,
            self._add_m,
            self._mult_mv,
            self._mult_mm,
            self._inner,
            self._norm,
            self._max_entry,
            self._trace,
        ):
            table.clear()
        self._dense_v_cache.clear()
        self._dense_m_cache.clear()
        self._gate_cache.clear()
        self._gate_cache_times.clear()
        self._chain_cache.clear()
        self._chain_cache_times.clear()
