"""Unique (hash-consing) table for decision-diagram nodes.

The unique table guarantees that two structurally identical nodes — same qubit
level, same successor nodes, numerically identical successor weights — are
represented by the *same* Python object.  This canonicity is what makes node
identity usable as structural equality and what keeps diagrams compact.

The hot construction path (:meth:`UniqueTable.get_or_create`) takes a
*pre-built* flat signature key: the package's normalizers already iterate over
the successor edges to normalize their weights, so they assemble the key in
the same loop instead of re-deriving it here edge by edge.  The hash of that
key is recorded on the created node (``node.hash``).  :meth:`lookup` remains
as the generic, signature-deriving entry point for callers outside the
package kernels.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.dd.complexvalue import ckey

__all__ = ["UniqueTable"]

NodeT = TypeVar("NodeT")


class UniqueTable(Generic[NodeT]):
    """Hash-consing table mapping (level, successor signature) to a node."""

    __slots__ = ("_table", "lookups", "hits")

    def __init__(self) -> None:
        self._table: dict[tuple, NodeT] = {}
        self.lookups = 0
        self.hits = 0

    @staticmethod
    def _signature(index: int, edges) -> tuple:
        """Flat signature key of a prospective node.

        Layout: ``(index, id0, re0, im0, id1, re1, im1, ...)`` with one
        ``(id, re, im)`` triple per successor (``id`` 0 for terminal edges,
        weights rounded by :func:`~repro.dd.complexvalue.ckey` semantics).
        Kept flat so the fast path in the package can build the identical key
        inline without nested tuples.
        """
        parts: list = [index]
        for edge in edges:
            real, imag = ckey(edge.weight)
            parts.append(id(edge.node) if edge.node is not None else 0)
            parts.append(real)
            parts.append(imag)
        return tuple(parts)

    def get_or_create(self, key: tuple, index: int, edges: tuple, node_cls) -> NodeT:
        """Return the canonical node for a pre-built signature ``key``.

        ``edges`` must be the normalized successor tuple the key was derived
        from.  On a miss the node is created with its ``hash`` slot set to
        ``hash(key)``.
        """
        self.lookups += 1
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        node = node_cls(index, edges, hash(key))
        self._table[key] = node
        return node

    def lookup(self, index: int, edges, factory) -> NodeT:
        """Return the canonical node for ``(index, edges)``.

        ``factory`` is called to create the node if no structurally identical
        node exists yet.  Generic (signature-deriving) entry point; the
        package kernels use :meth:`get_or_create` with an inline-built key.
        """
        self.lookups += 1
        key = self._signature(index, edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        node = factory(index, edges)
        try:
            node.hash = hash(key)
        except AttributeError:  # pragma: no cover - foreign node classes
            pass
        self._table[key] = node
        return node

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop all nodes (used when a package is reset between runs)."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the table."""
        return self.hits / self.lookups if self.lookups else 0.0
