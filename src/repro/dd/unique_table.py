"""Unique (hash-consing) table for decision-diagram nodes.

The unique table guarantees that two structurally identical nodes — same qubit
level, same successor nodes, numerically identical successor weights — are
represented by the *same* Python object.  This canonicity is what makes node
identity usable as structural equality and what keeps diagrams compact.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.dd.complexvalue import ckey

__all__ = ["UniqueTable"]

NodeT = TypeVar("NodeT")


class UniqueTable(Generic[NodeT]):
    """Hash-consing table mapping (level, successor signature) to a node."""

    def __init__(self) -> None:
        self._table: dict[tuple, NodeT] = {}
        self.lookups = 0
        self.hits = 0

    @staticmethod
    def _signature(index: int, edges) -> tuple:
        return (
            index,
            tuple((id(edge.node) if edge.node is not None else 0, ckey(edge.weight)) for edge in edges),
        )

    def lookup(self, index: int, edges, factory) -> NodeT:
        """Return the canonical node for ``(index, edges)``.

        ``factory`` is called to create the node if no structurally identical
        node exists yet.
        """
        self.lookups += 1
        key = self._signature(index, edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        node = factory(index, edges)
        self._table[key] = node
        return node

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop all nodes (used when a package is reset between runs)."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the table."""
        return self.hits / self.lookups if self.lookups else 0.0
