"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
users can catch library failures with a single ``except`` clause while still
being able to distinguish circuit-construction problems from verification
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """Raised when a quantum circuit is constructed or manipulated incorrectly."""


class QasmError(CircuitError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator is asked to do something it cannot do."""


class DDError(ReproError):
    """Raised on internal decision-diagram inconsistencies or misuse."""


class TransformationError(ReproError):
    """Raised when a dynamic circuit cannot be transformed to a unitary one."""


class ExtractionError(ReproError):
    """Raised when the measurement-outcome distribution cannot be extracted."""


class EquivalenceCheckingError(ReproError):
    """Raised when an equivalence check cannot be carried out as configured."""


class ConfigurationError(EquivalenceCheckingError):
    """Raised when a :class:`~repro.core.configuration.Configuration` is invalid.

    Subclasses :class:`EquivalenceCheckingError` so that existing handlers of
    configuration problems keep working; raised eagerly at ``Configuration()``
    construction time, never mid-run.
    """


class CompilationError(ReproError):
    """Raised when a compilation pass fails (e.g. unroutable coupling map)."""


class ServiceError(ReproError):
    """Raised by the verification service layer (server, client, job queue).

    Carries the HTTP status code the failure maps to (clients re-raise the
    server's code; in-process users get the would-be code for context).
    ``retry_after`` accompanies backpressure rejections (HTTP 429/503): the
    number of seconds after which a retry is expected to be accepted, sent
    on the wire as a ``Retry-After`` header.
    """

    def __init__(
        self, message: str, status: int = 500, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
