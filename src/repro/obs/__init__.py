"""Observability layer: tracing, structured logging, run telemetry.

Three stdlib-only modules that sit *below* every other subsystem (core,
service, resilience all import them; they import nothing back except the
crash-safe journal, which itself only uses :mod:`repro.obs.logs`):

* :mod:`repro.obs.trace` — contextvars-based spans with W3C ``traceparent``
  propagation: the manager opens spans around runs, scheduler decisions,
  checker attempts and cache lookups; the HTTP front ends accept a
  ``traceparent`` header and expose the finished tree at
  ``GET /jobs/<id>/trace``; the process-pool batch path ships the parent's
  trace context inside :class:`~repro.core.workers.BatchWorkUnit` and
  serializes finished worker spans back in the results.  Export as a nested
  span tree (``verify --json``) or Chrome trace-event JSON for perfetto
  (``repro-qcec trace``).
* :mod:`repro.obs.logs` — a JSON-lines structured logger with automatic
  trace correlation (``trace_id``/``span_id`` from the active span), wired
  to ``--log-level``/``--log-file`` on every CLI command.  Without explicit
  configuration the stack stays library-quiet (no handlers installed).
* :mod:`repro.obs.telemetry` — a run-telemetry journal: one crash-safe
  record per settled verification (fingerprint, features, schedule,
  per-checker timings and outcomes, verdict, cache provenance, breaker
  state) — the training substrate for a learned scheduler — surfaced via
  ``repro-qcec telemetry summarize`` and the service ``/stats`` section.

Tracing and logging are strictly opt-in at runtime: without an activated
:class:`~repro.obs.trace.Tracer` every ``span()`` is a no-op costing one
contextvar read, and without ``configure_logging()`` no handler is
installed, so the instrumented hot paths stay effectively free.
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.trace import Span, Tracer, span, span_tree
from repro.obs.telemetry import TelemetryJournal, summarize_records

__all__ = [
    "Span",
    "TelemetryJournal",
    "Tracer",
    "configure_logging",
    "get_logger",
    "span",
    "span_tree",
    "summarize_records",
]
