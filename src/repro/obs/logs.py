"""JSON-lines structured logging with automatic trace correlation.

Built on the stdlib :mod:`logging` tree under the ``"repro"`` root logger:

* library modules call :func:`get_logger` and log normally — with no
  handler configured nothing is emitted below WARNING (standard
  library-quiet behaviour), so the instrumented hot paths cost one level
  check;
* applications (every CLI command via ``--log-level``/``--log-file``, the
  servers, tests) call :func:`configure_logging` once to attach a
  :class:`JsonFormatter` handler — each record then renders as one JSON
  line with timestamp, level, logger, message, any structured fields
  passed via :func:`fields`, and — when a span is active on the logging
  thread — the ``trace_id``/``span_id`` of the surrounding trace, so log
  lines and spans join on ids instead of on guesswork.

The formatter reads the ambient span at ``format()`` time, which runs
synchronously on the logging thread, so the correlation is exact even with
many concurrent jobs.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

from repro.obs.trace import current_span

__all__ = ["JsonFormatter", "configure_logging", "fields", "get_logger"]

_ROOT = "repro"
#: Marker attribute identifying handlers owned by :func:`configure_logging`,
#: so reconfiguration replaces them instead of stacking duplicates.
_HANDLER_MARK = "_repro_obs_handler"


class JsonFormatter(logging.Formatter):
    """One compact JSON object per record, trace-correlated when possible."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = current_span()
        if span is not None and span.span_id is not None:
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        extra = getattr(record, "repro_fields", None)
        if isinstance(extra, dict):
            for key, value in extra.items():
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"), sort_keys=True)


def fields(**values) -> dict:
    """Structured fields for a log call: ``logger.info("msg", **fields(k=v))``.

    Wraps the values in the ``extra`` mapping the :class:`JsonFormatter`
    looks for, so call sites stay one-liners.
    """
    return {"extra": {"repro_fields": values}}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` root (``get_logger("core.manager")``)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_logging(
    level: str | int | None = None,
    path: str | None = None,
    *,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    ``path`` appends to a file; otherwise ``stream`` (default ``stderr``)
    receives the lines — stderr keeps them clear of the CLI's stdout
    payloads, so ``verify --json | jq`` keeps working under ``--log-level
    debug``.  Idempotent: previously installed handlers are replaced, not
    stacked, and the tree stops propagating to the (application-owned)
    global root.
    """
    root = logging.getLogger(_ROOT)
    if level is None:
        level = logging.INFO
    elif isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
            handler.close()
    if path is not None:
        handler: logging.Handler = logging.FileHandler(path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
