"""Run-telemetry journal: one crash-safe record per settled verification.

ROADMAP item 5 (a learned scheduler) needs training data: for every run,
*which* features were observed, *which* schedule was chosen and *which*
checker decided after how long.  This module persists exactly that next to
the verdict journal, reusing :class:`~repro.resilience.journal.
CrashSafeJournal` (checksummed frames, torn-tail recovery) in append-only
mode — no key function, so nothing is ever compacted away: telemetry is a
history, not a cache.

One record per settled run (see :func:`run_record`)::

    {"v": 1, "kind": "run", "time": ..., "fingerprint": ..., "verdict": ...,
     "decided_by": ..., "total_time": ..., "scheduler": ..., "schedule": [...],
     "features": {...}, "cached": ..., "cached_via": ..., "trace_id": ...,
     "attempts": [{"checker": ..., "status": ..., "time": ..., "criterion": ...}],
     "breakers": {"alternating": "closed", ...}}

Recording is deliberately non-fatal: a full disk degrades telemetry to
counted, logged errors — it never fails the verification that produced the
record.  :func:`summarize_records` aggregates a replayed journal into the
per-checker outcome/latency table served by ``repro-qcec telemetry
summarize`` and the service ``/stats`` section.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.logs import fields, get_logger
from repro.obs.trace import current_span

__all__ = ["TelemetryJournal", "run_record", "summarize_records"]

_log = get_logger("obs.telemetry")

#: Telemetry record schema version (bump on incompatible shape changes).
SCHEMA_VERSION = 1


def run_record(
    result,
    *,
    fingerprint: str | None = None,
    breakers: dict[str, str] | None = None,
) -> dict:
    """Build one telemetry record from a ``PortfolioResult``-shaped object.

    Duck-typed on purpose: this module sits below :mod:`repro.core`, so it
    reads attributes (``criterion``, ``attempts``, ``schedule``, …) instead
    of importing the dataclass.  The active span's ``trace_id`` (if any) is
    stamped in, so telemetry rows join against exported traces.
    """
    criterion = getattr(result, "criterion", None)
    record: dict = {
        "v": SCHEMA_VERSION,
        "kind": "run",
        "time": round(time.time(), 6),
        "fingerprint": fingerprint,
        "verdict": getattr(criterion, "value", str(criterion)),
        "decided_by": getattr(result, "decided_by", None),
        "total_time": round(float(getattr(result, "total_time", 0.0)), 9),
        "scheduler": getattr(result, "scheduler", None),
        "schedule": list(getattr(result, "schedule", None) or []),
        "features": getattr(result, "features", None),
        "cached": bool(getattr(result, "cached", False)),
        "cached_via": getattr(result, "cached_via", None),
    }
    span = current_span()
    if span is not None and span.trace_id is not None:
        record["trace_id"] = span.trace_id
    attempts = []
    for attempt in getattr(result, "attempts", None) or ():
        attempt_criterion = getattr(
            getattr(attempt, "result", None), "criterion", None
        )
        attempts.append(
            {
                "checker": getattr(attempt, "method", None),
                "status": getattr(attempt, "status", None),
                "time": round(float(getattr(attempt, "time_taken", 0.0)), 9),
                "criterion": getattr(attempt_criterion, "value", None),
            }
        )
    record["attempts"] = attempts
    if breakers:
        record["breakers"] = dict(breakers)
    return record


class TelemetryJournal:
    """Append-only crash-safe journal of run-telemetry records.

    Thread-safe through the underlying journal's lock.  ``write_hook``
    plugs the fault-injection harness into the physical writes, exactly
    like the verdict cache's journal tier.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        write_hook: Callable[[], None] | None = None,
    ) -> None:
        # Imported here, not at module top: the journal logs through
        # repro.obs.logs, and keeping the import local makes the one-way
        # layering (resilience -> obs.logs, obs.telemetry -> resilience)
        # obvious and cycle-proof at import time.
        from repro.resilience.journal import CrashSafeJournal

        self._journal = CrashSafeJournal(
            path, key=None, fsync=fsync, write_hook=write_hook
        )

    @property
    def path(self) -> Path:
        return self._journal.path

    def record_run(self, record: dict) -> bool:
        """Append one record; returns False (and logs) on I/O failure.

        Telemetry must never fail the run it observes, so errors degrade to
        a counter in :meth:`statistics` plus a warning log line.
        """
        try:
            self._journal.append(record)
        except OSError as error:
            _log.warning(
                "telemetry append failed",
                **fields(path=str(self.path), error=str(error)),
            )
            return False
        return True

    def replay(self) -> list[dict]:
        """All intact records, oldest first (corrupt frames are skipped)."""
        return self._journal.replay()

    def flush(self) -> None:
        self._journal.flush()

    def statistics(self) -> dict:
        return self._journal.statistics()

    def summarize(self) -> dict:
        """Aggregate this journal's records (replays the file)."""
        return summarize_records(self.replay())

    def __repr__(self) -> str:
        return f"TelemetryJournal(path={str(self.path)!r})"


def summarize_records(records: Iterable[dict]) -> dict:
    """Aggregate telemetry records into the summary table.

    Per-checker attempt counts by status, decision counts, and total/mean
    attempt latency; plus run-level verdict, scheduler and cache-provenance
    tallies — enough to answer "which checker decides what, how fast" (the
    scheduling question) straight from the journal.
    """

    def sorted_counts(counts: dict) -> dict:
        return dict(sorted(counts.items()))

    runs = 0
    verdicts: dict[str, int] = {}
    schedulers: dict[str, int] = {}
    cache: dict[str, int] = {"fresh": 0}
    checkers: dict[str, dict] = {}
    total_time = 0.0
    for record in records:
        if record.get("kind") != "run":
            continue
        runs += 1
        verdict = str(record.get("verdict"))
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        scheduler = record.get("scheduler")
        if scheduler:
            schedulers[scheduler] = schedulers.get(scheduler, 0) + 1
        if record.get("cached"):
            via = str(record.get("cached_via") or "unknown")
            cache[via] = cache.get(via, 0) + 1
        else:
            cache["fresh"] += 1
        total_time += float(record.get("total_time") or 0.0)
        decided_by = record.get("decided_by")
        for attempt in record.get("attempts") or ():
            name = str(attempt.get("checker"))
            entry = checkers.setdefault(
                name,
                {"attempts": 0, "decisions": 0, "total_time": 0.0, "statuses": {}},
            )
            entry["attempts"] += 1
            entry["total_time"] += float(attempt.get("time") or 0.0)
            status = str(attempt.get("status"))
            entry["statuses"][status] = entry["statuses"].get(status, 0) + 1
            if name == decided_by:
                entry["decisions"] += 1
    for entry in checkers.values():
        entry["total_time"] = round(entry["total_time"], 9)
        entry["mean_time"] = round(
            entry["total_time"] / entry["attempts"], 9
        ) if entry["attempts"] else 0.0
        entry["statuses"] = sorted_counts(entry["statuses"])
    return {
        "runs": runs,
        "total_time": round(total_time, 9),
        "verdicts": sorted_counts(verdicts),
        "schedulers": sorted_counts(schedulers),
        "cache": sorted_counts(cache),
        "checkers": {name: checkers[name] for name in sorted(checkers)},
    }
