"""Contextvars-based distributed tracing with W3C ``traceparent`` propagation.

A :class:`Tracer` owns one trace (a ``trace_id`` plus a bounded store of
finished :class:`Span` objects).  Instrumented code never touches the tracer
directly — it calls the module-level :func:`span` context manager, which
reads the ambient trace scope from a :class:`contextvars.ContextVar`:

* with no tracer activated, :func:`span` yields a shared no-op span and the
  instrumentation point costs one contextvar read;
* with a tracer activated (:func:`activate`), each ``span()`` creates a
  child of the current span, installs itself as current for the duration of
  the ``with`` block, and records itself into the tracer on exit.

Because the scope lives in a contextvar, propagation follows Python's
context rules: ``async`` tasks inherit it automatically, worker *threads* do
not — thread-pool call sites must ship a ``contextvars.copy_context()``
(see ``EquivalenceCheckingManager._batch_entries_threads``) — and worker
*processes* cannot share objects at all, so the process-pool batch path
serializes the parent's position as a W3C ``traceparent`` string
(:func:`current_traceparent`), rebuilds a tracer from it on the far side
(:func:`Tracer.from_traceparent`), and ships the finished spans back as
dicts for the parent to :meth:`Tracer.adopt`.  The same ``traceparent``
format carries trace context in HTTP headers between
:class:`~repro.service.client.VerificationClient` and both server backends.

Exports: :func:`span_tree` nests finished spans by parentage (the shape
served at ``GET /jobs/<id>/trace`` and embedded in ``verify --json``);
:func:`export_chrome` / :meth:`Tracer.export_chrome` emit Chrome
trace-event JSON loadable in ``chrome://tracing`` or perfetto.

Stdlib only; imports nothing from the rest of the package.
"""

from __future__ import annotations

import contextvars
import os
import re
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "activate",
    "add_event",
    "current_span",
    "current_tracer",
    "current_traceparent",
    "export_chrome",
    "format_traceparent",
    "parse_traceparent",
    "span",
    "span_tree",
]

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """The W3C ``traceparent`` header value (version 00, sampled)."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header, or None.

    Malformed headers (wrong version, wrong field widths, all-zero ids) are
    rejected rather than raising — an untrusted client must not be able to
    break job submission with a bad header.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


class Span:
    """One timed operation: identity, parentage, attributes, events.

    ``start`` is wall-clock epoch seconds (for cross-process alignment and
    Chrome export); the duration is measured with ``perf_counter`` so it
    keeps monotonic-clock precision.  Spans are mutated only by the thread
    that opened them, so they carry no lock.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attrs",
        "events",
        "status",
        "pid",
        "_perf_start",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: str | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration: float | None = None
        self.attrs: dict = dict(attrs) if attrs else {}
        self.events: list[dict] = []
        self.status = "ok"
        self.pid = os.getpid()
        self._perf_start = time.perf_counter()

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs) -> None:
        event = {"name": name, "time": time.time()}
        if attrs:
            event["attrs"] = attrs
        self.events.append(event)

    def end(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._perf_start

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "pid": self.pid,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.events:
            payload["events"] = list(self.events)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls.__new__(cls)
        span.name = str(payload.get("name", "unknown"))
        span.trace_id = str(payload.get("trace_id", "0" * 32))
        span.span_id = str(payload.get("span_id") or _new_span_id())
        parent = payload.get("parent_id")
        span.parent_id = str(parent) if parent is not None else None
        span.start = float(payload.get("start", 0.0))
        duration = payload.get("duration")
        span.duration = float(duration) if duration is not None else None
        span.attrs = dict(payload.get("attrs") or {})
        span.events = list(payload.get("events") or [])
        span.status = str(payload.get("status", "ok"))
        span.pid = int(payload.get("pid", 0))
        # A deserialized span without a recorded duration must not inherit a
        # foreign perf_counter origin: end() would compute garbage from 0.0.
        span._perf_start = time.perf_counter()
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, span_id={self.span_id!r}, "
            f"parent_id={self.parent_id!r}, status={self.status!r})"
        )


class _NoopSpan:
    """Shared do-nothing span yielded when no tracer is active."""

    __slots__ = ()
    span_id = None
    trace_id = None

    def set_attr(self, key: str, value) -> None:
        pass

    def add_event(self, name: str, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: Ambient trace scope: ``(tracer, current span or None, remote parent id)``.
#: The remote parent id seeds root spans when the scope was rebuilt from a
#: ``traceparent`` (HTTP request, process-pool work unit).
_SCOPE: contextvars.ContextVar[tuple["Tracer", Span | None, str | None] | None] = (
    contextvars.ContextVar("repro_trace_scope", default=None)
)


class Tracer:
    """Collector of finished spans for one trace; thread-safe and bounded.

    ``max_spans`` caps memory on long jobs — spans beyond the cap are
    counted in :attr:`dropped` instead of stored, so a runaway batch cannot
    OOM the server through its own instrumentation.  ``on_finish`` (if set)
    runs for every recorded span; the service uses it to feed the
    ``repro_trace_spans_total`` counter.
    """

    def __init__(
        self,
        trace_id: str | None = None,
        parent_id: str | None = None,
        *,
        max_spans: int = 10_000,
        on_finish: Callable[[Span], None] | None = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.trace_id = trace_id or _new_trace_id()
        self.parent_id = parent_id
        self.max_spans = max_spans
        self.on_finish = on_finish
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.dropped = 0

    @classmethod
    def from_traceparent(
        cls, header: str | None, **kwargs
    ) -> "Tracer":
        """A tracer continuing the trace in ``header`` (or a fresh one)."""
        parsed = parse_traceparent(header)
        if parsed is None:
            return cls(**kwargs)
        return cls(trace_id=parsed[0], parent_id=parsed[1], **kwargs)

    @property
    def traceparent(self) -> str:
        """This trace's root ``traceparent`` (before any span has opened)."""
        return format_traceparent(self.trace_id, self.parent_id or "0" * 15 + "1")

    def record(self, span: Span) -> None:
        span.end()
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)
        if self.on_finish is not None:
            try:
                self.on_finish(span)
            except Exception:  # noqa: BLE001 - observers must not break traced code
                pass

    def adopt(self, payloads: Iterable[dict]) -> int:
        """Record spans serialized in another process; returns the count.

        The far side built its tracer from this trace's ``traceparent``, so
        adopted spans already carry the right ``trace_id`` and parent ids —
        adoption is pure transport, not re-parenting.  Malformed payloads
        are skipped (a sick worker must not poison the parent's trace).
        """
        adopted = 0
        for payload in payloads:
            if not isinstance(payload, dict) or not (
                payload.get("name") and payload.get("span_id")
            ):
                continue
            try:
                self.record(Span.from_dict(payload))
            except Exception:  # noqa: BLE001 - tolerate malformed worker spans
                continue
            adopted += 1
        return adopted

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def export(self) -> list[dict]:
        """All finished spans as JSON-ready dicts, in recording order."""
        return [span.to_dict() for span in self.finished()]

    def export_chrome(self) -> dict:
        """Chrome trace-event JSON for ``chrome://tracing`` / perfetto."""
        return export_chrome(self.export())

    def tree(self) -> list[dict]:
        """The finished spans nested by parentage (roots first)."""
        return span_tree(self.export())

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._spans)
        return f"Tracer(trace_id={self.trace_id!r}, spans={count}, dropped={self.dropped})"


# ----------------------------------------------------------------------
# ambient scope API (what instrumented code actually calls)
# ----------------------------------------------------------------------


def current_tracer() -> Tracer | None:
    scope = _SCOPE.get()
    return scope[0] if scope is not None else None


def current_span() -> Span | None:
    scope = _SCOPE.get()
    return scope[1] if scope is not None else None


def current_traceparent() -> str | None:
    """The active position as a ``traceparent`` header value, or None.

    This is what crosses boundaries: the client puts it on the submit
    request, the batch path puts it inside process-pool work units.
    """
    scope = _SCOPE.get()
    if scope is None:
        return None
    tracer, active, parent_id = scope
    span_id = active.span_id if active is not None else parent_id
    if span_id is None:
        span_id = "0" * 15 + "1"
    return format_traceparent(tracer.trace_id, span_id)


@contextmanager
def activate(
    tracer: Tracer | None, parent_id: str | None = None
) -> Iterator[Tracer | None]:
    """Install ``tracer`` as the ambient trace scope for the block.

    ``parent_id`` (default: the tracer's remote parent, if built from a
    ``traceparent``) becomes the parent of root spans opened inside.  A
    None tracer makes the block a no-op, so call sites need no branching.
    """
    if tracer is None:
        yield None
        return
    token = _SCOPE.set((tracer, None, parent_id or tracer.parent_id))
    try:
        yield tracer
    finally:
        _SCOPE.reset(token)


@contextmanager
def span(name: str, **attrs) -> Iterator[Span | _NoopSpan]:
    """Open a child span of the current scope (no-op without a tracer).

    The span becomes current for the duration of the block; an escaping
    exception marks it ``status="error"`` with the exception text before
    re-raising.
    """
    scope = _SCOPE.get()
    if scope is None:
        yield NOOP_SPAN
        return
    tracer, active, remote_parent = scope
    parent_id = active.span_id if active is not None else remote_parent
    current = Span(name, trace_id=tracer.trace_id, parent_id=parent_id, attrs=attrs)
    token = _SCOPE.set((tracer, current, remote_parent))
    try:
        yield current
    except BaseException as error:
        current.status = "error"
        current.set_attr("error", f"{type(error).__name__}: {error}")
        raise
    finally:
        _SCOPE.reset(token)
        tracer.record(current)


def add_event(name: str, **attrs) -> None:
    """Attach an event to the current span (no-op without one)."""
    scope = _SCOPE.get()
    if scope is not None and scope[1] is not None:
        scope[1].add_event(name, **attrs)


# ----------------------------------------------------------------------
# export shapes
# ----------------------------------------------------------------------


def span_tree(spans: Sequence[dict]) -> list[dict]:
    """Nest span dicts by parentage: roots (unknown parents) first.

    Children are ordered by start time; each node is a copy of its span
    dict plus a ``children`` list, so the result is JSON-ready.
    """
    nodes = {payload["span_id"]: dict(payload, children=[]) for payload in spans}
    roots: list[dict] = []
    for node in nodes.values():
        parent = node.get("parent_id")
        if parent is not None and parent in nodes and parent != node["span_id"]:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child.get("start") or 0.0)
    roots.sort(key=lambda node: node.get("start") or 0.0)
    return roots


def export_chrome(spans: Sequence[dict]) -> dict:
    """Chrome trace-event JSON (complete 'X' events, microsecond units).

    Loadable in ``chrome://tracing`` and https://ui.perfetto.dev — one lane
    per process id, which separates parent and pool-worker activity of a
    process-pool batch visually.
    """
    events = []
    for payload in spans:
        duration = payload.get("duration") or 0.0
        args = dict(payload.get("attrs") or {})
        args["span_id"] = payload.get("span_id")
        if payload.get("status") and payload["status"] != "ok":
            args["status"] = payload["status"]
        events.append(
            {
                "name": payload.get("name", "unknown"),
                "ph": "X",
                "ts": round(float(payload.get("start") or 0.0) * 1e6, 3),
                "dur": round(float(duration) * 1e6, 3),
                "pid": payload.get("pid", 0),
                "tid": payload.get("pid", 0),
                "cat": "repro",
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    trace_id = spans[0].get("trace_id") if spans else None
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id},
    }
