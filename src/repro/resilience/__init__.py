"""Fault tolerance for the verification stack (PR 8).

Four building blocks, threaded through the manager, the batch executors,
the verdict cache and the service layer:

* :mod:`repro.resilience.breaker` — per-checker circuit breakers: a checker
  that keeps crashing or timing out is quarantined (open → half-open probe
  → closed) and the portfolio degrades to the remaining checkers.
* :mod:`repro.resilience.retry` — bounded retry with capped decorrelated
  jitter, shared by the HTTP client, the process-pool rebuild path and the
  server's per-job retry budget.
* :mod:`repro.resilience.journal` — a crash-safe append-only journal
  (checksummed length-prefixed records, torn-tail truncation, quantified
  recovery, size-triggered compaction) backing the verdict cache.
* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness (``Configuration.fault_plan``) used by the chaos test suite; a
  no-op unless a plan is explicitly configured.
"""

from repro.resilience.breaker import STATE_VALUES, BreakerBoard, CircuitBreaker
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.resilience.journal import CrashSafeJournal
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FAULT_SITES",
    "STATE_VALUES",
    "BreakerBoard",
    "CircuitBreaker",
    "CrashSafeJournal",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
]
