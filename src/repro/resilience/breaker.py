"""Per-checker circuit breakers: quarantine components that keep failing.

A portfolio stays useful when one of its checkers misbehaves *only* if the
misbehaving checker stops being paid for: a checker that crashes or times
out on every pair otherwise burns its full budget on every single run.  The
classic remedy is the circuit-breaker state machine:

* **closed** — normal operation; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: calls are refused outright (the manager records a ``quarantined``
  attempt instead of running the checker) until ``cooldown`` seconds pass.
* **half-open** — after the cooldown one *probe* call is let through.  If it
  succeeds the breaker closes (the checker rejoins the portfolio); if it
  fails the breaker re-opens for another cooldown.

The :class:`BreakerBoard` keeps one :class:`CircuitBreaker` per checker name
for an :class:`~repro.core.manager.EquivalenceCheckingManager`; state and
lifetime counters are exported as gauges on ``GET /metrics`` and in
``/stats`` by the verification service.  All operations are thread-safe —
the batch thread pool shares one board.  The clock is injectable so tests
can step through cooldowns without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import trace
from repro.obs.logs import fields, get_logger

__all__ = ["BreakerBoard", "CircuitBreaker", "STATE_VALUES"]

_log = get_logger("resilience.breaker")

#: Numeric encoding of breaker states for gauge export
#: (``repro_breaker_state``): closed=0, half-open=1, open=2.
STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """One breaker: closed → open after N consecutive failures → half-open probe.

    ``failure_threshold`` consecutive failures trip the breaker; after
    ``cooldown`` seconds a single probe is admitted (half-open).  A
    successful probe closes the breaker and resets the failure count; a
    failed probe re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "checker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        # Lifetime counters (monotonic; exported as gauges at scrape time).
        self._failures = 0
        self._successes = 0
        self._opens = 0
        self._closes = 0
        self._probes = 0
        self._rejections = 0

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the open state this returns False (and counts a rejection) until
        the cooldown elapses; the first ``allow()`` after the cooldown admits
        exactly one half-open probe, and further calls are refused until that
        probe is resolved by :meth:`record_success` / :meth:`record_failure`.
        """
        probe = False
        try:
            with self._lock:
                if self._state == "closed":
                    return True
                if self._state == "open":
                    if self._clock() - self._opened_at >= self.cooldown:
                        self._state = "half_open"
                        self._probe_in_flight = True
                        self._probes += 1
                        probe = True
                        return True
                    self._rejections += 1
                    return False
                # half-open: only the single in-flight probe is admitted.
                if self._probe_in_flight:
                    self._rejections += 1
                    return False
                self._probe_in_flight = True
                self._probes += 1
                probe = True
                return True
        finally:
            if probe:
                self._transition("half_open", "probe admitted after cooldown")

    def record_success(self) -> None:
        closed = False
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != "closed":
                self._state = "closed"
                self._opened_at = None
                self._closes += 1
                closed = True
        if closed:
            self._transition("closed", "probe succeeded")

    def record_failure(self) -> None:
        opened: str | None = None
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == "half_open":
                # The probe failed: straight back to open for another cooldown.
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self._opens += 1
                opened = "probe failed"
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._opens += 1
                opened = (
                    f"{self._consecutive_failures} consecutive failures "
                    f"(threshold {self.failure_threshold})"
                )
        if opened is not None:
            self._transition("open", opened)

    def _transition(self, state: str, reason: str) -> None:
        """Log + trace a state transition (called outside the lock)."""
        trace.add_event("breaker.transition", checker=self.name, state=state)
        level = _log.warning if state == "open" else _log.info
        level(
            "circuit breaker %s", state,
            **fields(checker=self.name, state=state, reason=reason),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            # An expired cooldown reads as half-open: the next call will be
            # admitted as a probe, and reporting should say so.
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return "half_open"
            return self._state

    def snapshot(self) -> dict:
        state = self.state
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "failures": self._failures,
                "successes": self._successes,
                "opens": self._opens,
                "closes": self._closes,
                "probes": self._probes,
                "rejections": self._rejections,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"consecutive_failures={self._consecutive_failures}, "
            f"threshold={self.failure_threshold})"
        )


class BreakerBoard:
    """A named set of circuit breakers (one per checker), created on demand."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.failure_threshold, self.cooldown, self._clock, name=name
                )
                self._breakers[name] = breaker
            return breaker

    def allow(self, name: str) -> bool:
        return self.breaker(name).allow()

    def record(self, name: str, ok: bool) -> None:
        if ok:
            self.breaker(name).record_success()
        else:
            self.breaker(name).record_failure()

    def quarantined(self) -> tuple[str, ...]:
        """Names whose breaker is currently open (cooldown not yet expired)."""
        with self._lock:
            items = list(self._breakers.items())
        return tuple(name for name, breaker in items if breaker.state == "open")

    def snapshot(self) -> dict:
        """Per-checker breaker snapshots (for ``/stats`` and metrics export)."""
        with self._lock:
            items = list(self._breakers.items())
        return {name: breaker.snapshot() for name, breaker in items}

    def __repr__(self) -> str:
        return f"BreakerBoard({self.snapshot()!r})"
