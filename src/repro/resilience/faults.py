"""Deterministic fault injection: seeded chaos for the verification stack.

Production code calls :meth:`FaultInjector.fire` at a handful of *injection
sites*; with no :class:`FaultPlan` configured (the default, and the only
supported production state) every call is a no-op costing one attribute
check.  Tests attach a plan via ``Configuration.fault_plan`` and the stack
then fails *exactly* where and how the plan says:

===========  ========================================================
site         where it fires
===========  ========================================================
``checker``  inside the manager just before a checker runs
             (``target`` = checker name) — ``raise`` simulates a
             checker crash, ``sleep`` a slow checker that blows its
             budget.
``worker``   inside a process-pool work unit (``verify_work_unit``) —
             ``exit`` kills the worker process mid-unit, reproducing a
             ``BrokenProcessPool``.
``journal``  before a verdict-journal write — ``raise`` produces an
             ``OSError`` as if the disk filled up.
``submit``   in the service's job submission path — ``reject``
             simulates a 429/503 storm (with ``retry_after``),
             ``sleep`` a black-holed response.
===========  ========================================================

Rules are **counted**: a rule fires for its first ``times`` matching calls
and then goes quiet, so "two transient crashes then healthy" is one rule.
For the ``worker`` site the count is keyed on the work unit's *attempt
number* instead of injector-local state — a freshly spawned worker process
has fresh injector state, and the attempt number is what makes an injected
death deterministic across respawns.  ``probability`` (with ``FaultPlan.
seed``) makes stochastic-but-reproducible plans possible.

Plans are frozen dataclasses so they travel inside the (pickled)
:class:`~repro.core.configuration.Configuration` into process-pool workers.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ReproError, ServiceError
from repro.obs.logs import fields, get_logger

__all__ = ["FAULT_SITES", "FaultInjected", "FaultInjector", "FaultPlan", "FaultRule"]

_log = get_logger("resilience.faults")

FAULT_SITES = ("checker", "worker", "journal", "submit")
_ACTIONS = ("raise", "sleep", "exit", "reject")


class FaultInjected(ReproError):
    """An error deliberately raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultRule:
    """One injected failure mode.

    ``times`` bounds how often the rule fires (≤ 0 means every time);
    ``target`` narrows the rule to one checker/component name (``"*"``
    matches all).
    """

    site: str
    target: str = "*"
    action: str = "raise"
    times: int = 1
    delay: float = 0.0
    status: int = 503
    retry_after: float | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable bundle of fault rules plus the seed for stochastic rules."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate a list in the constructor but store a hashable tuple.
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(f"expected FaultRule, got {type(rule).__name__}")


@dataclass
class _RuleState:
    fired: int = 0


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`; thread-safe.

    One injector instance accumulates per-rule fire counts; components that
    share a plan (manager, cache, service) share one injector so ``times``
    budgets are global to the process.
    """

    def __init__(
        self,
        plan: FaultPlan | None,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._states: dict[tuple[int, str], _RuleState] = {}
        self._rng = random.Random(plan.seed if plan is not None else 0)
        self._injections = 0

    @property
    def active(self) -> bool:
        return self.plan is not None and bool(self.plan.rules)

    @property
    def injections(self) -> int:
        """How many faults have actually fired (for /stats and assertions)."""
        return self._injections

    def fire(self, site: str, target: str = "*", attempt: int | None = None) -> None:
        """Trigger any matching rules; raises/sleeps/exits per the plan.

        ``attempt`` replaces injector-local counting for callers whose state
        does not survive the injected fault (process-pool work units).
        """
        if not self.active:
            return
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.target != "*" and rule.target != target:
                continue
            if not self._should_fire(index, rule, target, attempt):
                continue
            self._execute(rule, site, target)

    def hook(self, site: str, target: str = "*") -> Callable[[], None]:
        """A zero-argument closure over :meth:`fire` (journal write hooks)."""
        return lambda: self.fire(site, target)

    def _should_fire(
        self, index: int, rule: FaultRule, target: str, attempt: int | None
    ) -> bool:
        with self._lock:
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                return False
            if attempt is not None:
                # Deterministic across fresh processes: the caller's attempt
                # number is the count, not our (reset-on-respawn) state.
                if rule.times > 0 and attempt >= rule.times:
                    return False
            else:
                state = self._states.setdefault((index, target), _RuleState())
                if rule.times > 0 and state.fired >= rule.times:
                    return False
                state.fired += 1
            self._injections += 1
            return True

    def _execute(self, rule: FaultRule, site: str, target: str) -> None:
        _log.warning(
            "fault injected",
            **fields(site=site, target=target, action=rule.action),
        )
        if rule.action == "sleep":
            self._sleep(rule.delay)
            return
        if rule.action == "exit":
            # Simulates a SIGKILLed / OOM-killed worker: no cleanup, no
            # exception propagation, the pool just loses the process.
            os._exit(17)
        if rule.action == "reject":
            raise ServiceError(
                f"injected rejection at {site}:{target}",
                status=rule.status,
                retry_after=rule.retry_after,
            )
        if site == "journal":
            # Journal faults must look like real disk errors to exercise the
            # degrade-to-memory-only path.
            raise OSError(f"injected journal fault at {target}")
        raise FaultInjected(f"injected fault at {site}:{target}")
