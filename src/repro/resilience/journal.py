"""Crash-safe append-only journal: checksummed records, quantified recovery.

The verdict cache's persistence tier (PR 5) wrote bare JSON lines: a crash
mid-append leaves a torn final line, and a corrupt byte anywhere silently
poisons `json.loads` for that record with no way to tell "corrupt" apart
from "legacy format".  :class:`CrashSafeJournal` upgrades the framing while
staying replay-compatible with the old files:

* **Record format** — one line per record::

      R <payload-length> <crc32-hex> <json-payload>\\n

  The payload is compact JSON (no raw newlines — JSON escapes them), so a
  record is exactly one line.  Length and CRC32 are both checked on replay:
  a flipped byte, a torn write, or a concatenation artefact fails the frame
  and the record is *counted*, not silently swallowed.
* **Legacy compatibility** — a line that is not framed but parses as a JSON
  object is accepted as a legacy record, so journals written before this PR
  replay cleanly.
* **Atomic append** — each record is a single ``write()`` on an append-mode
  handle followed by a flush (optionally ``fsync``).  POSIX appends of one
  small buffer land entirely or not at all in practice; even when they do
  not, the frame check turns a torn append into a counted, truncated tail
  rather than a corrupt cache.
* **Torn-tail truncation** — on replay, everything after the last good
  record is dropped; if that trailing region is non-empty the file is
  truncated back to the last good byte so the next append starts clean.
  Corruption *followed by* good records is dropped from replay but left in
  place (truncating would discard the good records after it).
* **Quantified recovery** — ``recovered`` / ``dropped`` / ``legacy`` /
  ``truncated_bytes`` counters say exactly what replay did, and are exported
  via the verdict cache's statistics and the service ``/metrics`` endpoint.
* **Compaction** — when the file grows past ``max_bytes`` and a ``key``
  function is configured, the journal rewrites itself keeping only the last
  record per key (write to a temp file, then ``os.replace`` — atomic on
  POSIX), so long-lived servers stay bounded.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from repro.obs import trace
from repro.obs.logs import fields, get_logger

__all__ = ["CrashSafeJournal"]

_log = get_logger("resilience.journal")

_MAGIC = b"R "


def _encode_record(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"R %d %08x " % (len(payload), crc) + payload + b"\n"


class CrashSafeJournal:
    """Checksummed length-prefixed record journal with torn-tail recovery.

    ``key`` (optional) extracts a deduplication key from a record; it enables
    last-record-per-key compaction and the :attr:`latest` view.  ``write_hook``
    (optional) runs before every physical write — the fault-injection harness
    uses it to simulate I/O failures.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        key: Callable[[dict], str | None] | None = None,
        max_bytes: int | None = None,
        fsync: bool = False,
        truncate_torn_tail: bool = True,
        write_hook: Callable[[], None] | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None for unbounded)")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.fsync = fsync
        self._key = key
        self._truncate_torn_tail = truncate_torn_tail
        self._write_hook = write_hook
        self._lock = threading.RLock()
        self._latest: OrderedDict[str, dict] = OrderedDict()
        self._recovered = 0
        self._dropped = 0
        self._legacy = 0
        self._truncated_bytes = 0
        self._appends = 0
        self._append_errors = 0
        self._compactions = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch(exist_ok=True)

    # ------------------------------------------------------------------
    # replay / recovery
    # ------------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Recover all intact records, in order; truncate a torn tail.

        Never raises on corrupt content: bad records are counted in
        ``dropped`` and skipped.  Returns the recovered payload dicts.
        """
        with self._lock:
            data = self.path.read_bytes()
            records: list[dict] = []
            good_end = 0  # byte offset just past the last intact record
            pos = 0
            while pos < len(data):
                newline = data.find(b"\n", pos)
                if newline == -1:
                    # Partial trailing line: the signature torn append.
                    self._dropped += 1
                    break
                line = data[pos:newline]
                record = self._decode_record(line)
                if record is not None:
                    records.append(record)
                    self._recovered += 1
                    good_end = newline + 1
                elif not line.strip():
                    # Whitespace-only line: harmless, keep the framing intact.
                    good_end = newline + 1
                else:
                    self._dropped += 1
                pos = newline + 1
            if good_end < len(data) and self._truncate_torn_tail:
                self._truncate_to(good_end, len(data))
            if self._dropped:
                _log.warning(
                    "journal replay dropped corrupt records",
                    **fields(
                        path=str(self.path),
                        recovered=self._recovered,
                        dropped=self._dropped,
                        truncated_bytes=self._truncated_bytes,
                    ),
                )
            if self._key is not None:
                for record in records:
                    key = self._key(record)
                    if key is not None:
                        self._latest[key] = record
                        self._latest.move_to_end(key)
            return records

    def _decode_record(self, line: bytes) -> dict | None:
        if line.startswith(_MAGIC):
            parts = line.split(b" ", 3)
            if len(parts) != 4:
                return None
            try:
                length = int(parts[1])
                crc = int(parts[2], 16)
            except ValueError:
                return None
            payload = parts[3]
            if len(payload) != length or (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                return None
            try:
                record = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return None
            return record if isinstance(record, dict) else None
        # Legacy tier: a bare JSON-object line from the pre-framing journal.
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if isinstance(record, dict):
            self._legacy += 1
            return record
        return None

    def _truncate_to(self, good_end: int, total: int) -> None:
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(good_end)
        except OSError:
            # A read-only journal still replays fine; recovery is best-effort.
            return
        self._truncated_bytes += total - good_end

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one record atomically; raises ``OSError`` on I/O failure."""
        line = _encode_record(record)
        with self._lock, trace.span("journal.append", bytes=len(line)) as current:
            try:
                if self._write_hook is not None:
                    self._write_hook()
                with self.path.open("ab") as handle:
                    handle.write(line)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
            except OSError as error:
                self._append_errors += 1
                current.set_attr("error", str(error))
                _log.warning(
                    "journal append failed",
                    **fields(path=str(self.path), error=str(error)),
                )
                raise
            self._appends += 1
            if self._key is not None:
                key = self._key(record)
                if key is not None:
                    self._latest[key] = record
                    self._latest.move_to_end(key)
                if (
                    self.max_bytes is not None
                    and self.path.stat().st_size > self.max_bytes
                ):
                    self.compact()

    def compact(self) -> int:
        """Rewrite the journal keeping the last record per key; atomic swap.

        Returns the number of records kept.  Requires a ``key`` function
        (without one there is nothing safe to drop).
        """
        if self._key is None:
            raise RuntimeError("compaction requires a key function")
        with self._lock:
            tmp_path = self.path.with_name(self.path.name + ".compact")
            try:
                with tmp_path.open("wb") as handle:
                    for record in self._latest.values():
                        handle.write(_encode_record(record))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.path)
            except OSError:
                self._append_errors += 1
                try:
                    tmp_path.unlink(missing_ok=True)
                except OSError:
                    pass
                raise
            self._compactions += 1
            _log.info(
                "journal compacted",
                **fields(path=str(self.path), kept=len(self._latest)),
            )
            return len(self._latest)

    def flush(self) -> None:
        """Force journal bytes to disk (drain path); best-effort."""
        with self._lock:
            try:
                with self.path.open("ab") as handle:
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                pass

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def latest(self) -> dict:
        """Last record per key (insertion-ordered copy); needs ``key``."""
        with self._lock:
            return dict(self._latest)

    def statistics(self) -> dict:
        with self._lock:
            try:
                size = self.path.stat().st_size
            except OSError:
                size = 0
            return {
                "path": str(self.path),
                "size_bytes": size,
                "recovered": self._recovered,
                "dropped": self._dropped,
                "legacy": self._legacy,
                "truncated_bytes": self._truncated_bytes,
                "appends": self._appends,
                "append_errors": self._append_errors,
                "compactions": self._compactions,
            }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"CrashSafeJournal(path={stats['path']!r}, "
            f"recovered={stats['recovered']}, dropped={stats['dropped']}, "
            f"appends={stats['appends']})"
        )
