"""Retry policies: exponential backoff with capped decorrelated jitter.

Every retry loop in the stack (client-side 429/503 handling, process-pool
rebuilds, server-side per-job retry budgets) shares one policy object so the
backoff behaviour is uniform and testable.  The jitter scheme is the
"decorrelated jitter" variant: each sleep is drawn uniformly from
``[base, previous * 3]`` and capped, which spreads concurrent retriers apart
while still growing roughly exponentially.  A server-provided ``Retry-After``
hint takes precedence over the computed backoff (it is still capped).

The RNG and the sleep function are injectable: tests pass a seeded
:class:`random.Random` and a recording fake for ``sleep`` so retry schedules
are deterministic and instantaneous.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.obs.logs import fields, get_logger

__all__ = ["RetryPolicy"]

_log = get_logger("resilience.retry")


class RetryPolicy:
    """Bounded retry schedule with capped decorrelated jitter.

    ``attempts`` counts *retries*, not total tries: ``attempts=2`` means one
    initial call plus up to two retries.
    """

    def __init__(
        self,
        attempts: int = 3,
        base: float = 0.1,
        cap: float = 5.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 0:
            raise ValueError("attempts must be non-negative")
        if base <= 0 or cap < base:
            raise ValueError("need 0 < base <= cap")
        self.attempts = attempts
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._previous = base

    def reset(self) -> None:
        """Forget backoff history (start the next schedule from ``base``)."""
        self._previous = self.base

    def next_delay(self, retry_after: float | None = None) -> float:
        """The next sleep duration, honoring an optional server hint."""
        if retry_after is not None and retry_after > 0:
            delay = min(float(retry_after), self.cap)
            # The hint also advances the decorrelated sequence so a later
            # hint-less retry does not restart from the tiny base.
            self._previous = max(self._previous, delay)
            return delay
        delay = min(self.cap, self._rng.uniform(self.base, self._previous * 3))
        self._previous = delay
        return delay

    def backoff(self, retry_after: float | None = None) -> float:
        """Sleep for :meth:`next_delay` and return the duration slept."""
        delay = self.next_delay(retry_after)
        if delay > 0:
            _log.debug(
                "retry backoff",
                **fields(delay=round(delay, 4), retry_after=retry_after),
            )
            self._sleep(delay)
        return delay
