"""Verification service layer: fingerprints, verdict cache, job-queue server.

The PR 1-4 stack made one *process* fast at verifying circuit pairs; this
subsystem turns it into a *service* for real compilation flows, where the
same pairs are re-verified over and over as toolchains iterate:

* :mod:`repro.service.fingerprint` — a canonical, collision-resistant
  structural hash for circuits and ordered circuit pairs, keyed together
  with the verdict-relevant :class:`~repro.core.configuration.Configuration`
  fields so a cache hit can never change a verdict;
* :mod:`repro.service.cache` — :class:`VerdictCache`, an in-memory LRU tier
  with an optional persistent JSON-lines tier
  (``Configuration.cache_path``) storing
  :class:`~repro.core.results.PortfolioResult` essentials;
* :mod:`repro.service.server` — a stdlib-only HTTP job-queue server
  (``repro-qcec serve``) with submit/status/result/stats endpoints and
  request deduplication by fingerprint;
* :mod:`repro.service.client` — the matching :class:`VerificationClient`.

The cache is also consulted by
:class:`~repro.core.manager.EquivalenceCheckingManager` itself
(``Configuration.verdict_cache`` / ``cache_path``), which additionally
dedupes identical pairs *within* a batch.
"""

from repro.service.cache import CachedVerdict, VerdictCache
from repro.service.client import VerificationClient
from repro.service.fingerprint import (
    circuit_fingerprint,
    configuration_fingerprint,
    pair_fingerprint,
)
from repro.service.server import VerificationServer, VerificationService

__all__ = [
    "CachedVerdict",
    "VerdictCache",
    "VerificationClient",
    "VerificationServer",
    "VerificationService",
    "circuit_fingerprint",
    "configuration_fingerprint",
    "pair_fingerprint",
]
