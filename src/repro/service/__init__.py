"""Verification service layer: fingerprints, verdict cache, job-queue servers.

The PR 1-4 stack made one *process* fast at verifying circuit pairs; this
subsystem turns it into a *service* for real compilation flows, where the
same pairs are re-verified over and over as toolchains iterate:

* :mod:`repro.service.fingerprint` — a canonical, collision-resistant
  structural hash for circuits and ordered circuit pairs, keyed together
  with the verdict-relevant :class:`~repro.core.configuration.Configuration`
  fields so a cache hit can never change a verdict;
* :mod:`repro.service.cache` — :class:`VerdictCache`, an in-memory LRU tier
  with an optional persistent JSON-lines tier
  (``Configuration.cache_path``) storing
  :class:`~repro.core.results.PortfolioResult` essentials;
* :mod:`repro.service.server` — a stdlib-only threaded HTTP job-queue server
  (``repro-qcec serve``) with submit/status/result/stats/metrics endpoints,
  request deduplication by fingerprint and long-poll result delivery;
* :mod:`repro.service.aserver` — the asyncio front end over the same
  :class:`VerificationService` backend (``repro-qcec serve --backend
  async``), adding bounded-queue backpressure (429 + ``Retry-After``) and
  per-client token-bucket rate limiting;
* :mod:`repro.service.metrics` — the unified :class:`MetricsRegistry`
  (counters, gauges, histograms) both servers export as Prometheus text at
  ``GET /metrics``;
* :mod:`repro.service.client` — the matching :class:`VerificationClient`,
  long-polling against either backend.

The cache is also consulted by
:class:`~repro.core.manager.EquivalenceCheckingManager` itself
(``Configuration.verdict_cache`` / ``cache_path``), which additionally
dedupes identical pairs *within* a batch.
"""

from repro.service.aserver import AsyncVerificationServer
from repro.service.cache import CachedVerdict, VerdictCache
from repro.service.client import VerificationClient
from repro.service.fingerprint import (
    circuit_fingerprint,
    configuration_fingerprint,
    pair_fingerprint,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.server import VerificationServer, VerificationService

__all__ = [
    "AsyncVerificationServer",
    "CachedVerdict",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "VerdictCache",
    "VerificationClient",
    "VerificationServer",
    "VerificationService",
    "circuit_fingerprint",
    "configuration_fingerprint",
    "pair_fingerprint",
]
