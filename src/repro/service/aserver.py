"""An asyncio front end for the verification job queue (ROADMAP item 2).

The thread-per-request server in :mod:`repro.service.server` is fine for a
lab bench but the wrong substrate for heavy traffic: every idle poll and
every long-poll pins an OS thread.  This module serves the same endpoints
from a single event loop (``asyncio.start_server``; stdlib only), while all
verification work keeps running on the :class:`~repro.service.server.
VerificationService` worker pool — the frontend/backend split of modern
automata tools (Kofola et al.): the transport parses, routes and *sheds
load*; every verification decision stays in the manager.

What the asyncio front end adds over the thread server:

* **Backpressure** — the service's ``queue_limit`` is on by default here:
  once that many jobs are unsettled, ``POST /jobs`` answers ``429`` with a
  ``Retry-After`` header instead of letting ``_jobs`` grow unboundedly.
  Coalesced (duplicate in-flight) submissions are exempt.
* **Per-client rate limiting** — a token bucket per client address for
  ``POST /jobs`` (``rate_limit`` submissions/second, burst ``rate_burst``);
  one chatty client cannot starve the queue for everyone else.
* **Cheap long-polling** — ``GET /jobs/<id>/result?wait=N`` parks an
  ``asyncio.Event`` (woken via ``loop.call_soon_threadsafe`` from the worker
  thread that settles the job) instead of a blocked thread, so thousands of
  waiting clients cost next to nothing.
* ``GET /metrics`` — the same unified Prometheus registry as the thread
  server.
* ``GET /jobs/<id>/trace`` — the same per-job span tree as the thread
  server; a ``Traceparent`` request header on submission joins the job's
  spans to the client's distributed trace.

:class:`AsyncVerificationServer` mirrors :class:`~repro.service.server.
VerificationServer`'s lifecycle (``start_background()`` / ``close()`` /
``url``), so the client, the tests and the CLI treat the two backends
interchangeably.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import threading
import time
from urllib.parse import parse_qs, urlsplit

from repro.core.configuration import Configuration
from repro.exceptions import ServiceError
from repro.obs.logs import fields, get_logger
from repro.service.server import (
    _MAX_BODY_BYTES,
    VerificationService,
    parse_wait_seconds,
)

__all__ = ["AsyncVerificationServer"]

_log = get_logger("service.aserver")

#: Maximum size of the request line + headers block.
_MAX_HEADER_BYTES = 64 * 1024

#: Keep-alive idle timeout between requests on one connection.
_KEEPALIVE_TIMEOUT = 75.0

#: Reading a declared request body may not stall longer than this.
_BODY_READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_acquire(self, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token becomes available."""
        missing = max(0.0, 1.0 - self.tokens)
        return missing / self.rate if self.rate > 0 else 1.0


class AsyncVerificationServer:
    """Asyncio HTTP server over a shared :class:`VerificationService`.

    ``queue_limit`` defaults to ``16 * max_workers`` — deep enough to keep
    the pool busy through bursts, shallow enough that a saturating client
    sees ``429`` within a bounded latency instead of a silently growing
    queue.  Pass ``queue_limit=None`` explicitly for the old unbounded
    behaviour.  ``rate_limit`` (submissions/second per client address) is
    off by default; ``rate_burst`` defaults to ``max(2, 2 * rate_limit)``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        configuration: Configuration | None = None,
        *,
        cache: bool = True,
        max_finished_jobs: int = 1024,
        queue_limit: int | None | str = "auto",
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        job_retries: int = 2,
    ):
        configuration = configuration or Configuration()
        if queue_limit == "auto":
            queue_limit = 16 * configuration.max_workers
        self.service = VerificationService(
            configuration,
            cache=cache,
            max_finished_jobs=max_finished_jobs,
            queue_limit=queue_limit,
            job_retries=job_retries,
        )
        if rate_limit is not None and rate_limit <= 0:
            raise ServiceError("rate_limit must be positive", status=500)
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst if rate_burst is not None else max(2.0, 2.0 * (rate_limit or 0))
        )
        self._host = host
        self._requested_port = port
        self._buckets: dict[str, _TokenBucket] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._bound_port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._m_requests = self.service.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by backend, method and status code.",
            labelnames=("backend", "method", "status"),
        )
        self._m_rejected = self.service.metrics.get("repro_service_rejected_total")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise ServiceError("server is not running", status=503)
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=_MAX_HEADER_BYTES,
        )
        self._bound_port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._ready.clear()

    def start_background(self, timeout: float = 10.0) -> threading.Thread:
        """Serve on a daemon thread; returns once the port is bound."""

        def runner() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as error:  # noqa: BLE001 - surfaced to the caller
                self._startup_error = error
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="averification-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout) or self._bound_port is None:
            error = self._startup_error
            self.service.shutdown(wait=False)
            raise ServiceError(
                f"async server failed to start: {error or 'timed out'}", status=503
            )
        return self._thread

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting new jobs, finish in-flight ones (up to ``timeout``).

        The event loop keeps serving throughout — new submissions get 503 +
        ``Retry-After``, status/result/metrics stay live — so clients can
        collect verdicts for work already accepted.  Runs the (blocking)
        service drain off the event loop thread, which is safe because this
        method is meant for the controlling thread (CLI signal handler,
        tests), never for a coroutine.
        """
        return self.service.drain(timeout)

    def close(self, drain_timeout: float = 0.0) -> None:
        """Shut down; with ``drain_timeout > 0`` drain gracefully first."""
        if drain_timeout > 0:
            self.service.drain(drain_timeout)
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        try:
            while True:
                try:
                    header_block = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=_KEEPALIVE_TIMEOUT
                    )
                except (
                    asyncio.IncompleteReadError,
                    TimeoutError,
                    ConnectionError,
                ):
                    return
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, "?", 431, {"error": "request headers too large"}
                    )
                    return
                keep_alive = await self._handle_request(
                    reader, writer, header_block, peer
                )
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            return  # client went away mid-exchange; nothing left to say
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        header_block: bytes,
        peer: str,
    ) -> bool:
        try:
            method, target, headers = self._parse_head(header_block)
        except ValueError as error:
            await self._respond(writer, "?", 400, {"error": str(error)})
            return False
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close"

        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            await self._respond(
                writer, method, 400, {"error": "invalid Content-Length header"}
            )
            return False
        if length < 0:
            await self._respond(
                writer, method, 400, {"error": "invalid Content-Length header"}
            )
            return False
        if length > _MAX_BODY_BYTES:
            await self._respond(
                writer,
                method,
                413,
                {"error": f"request body exceeds {_MAX_BODY_BYTES} bytes"},
            )
            return False
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=_BODY_READ_TIMEOUT
                )
            except (asyncio.IncompleteReadError, TimeoutError):
                await self._respond(
                    writer, method, 408, {"error": "timed out reading the request"}
                )
                return False

        try:
            status, payload, headers_out, raw = await self._route(
                method, target, body, peer, headers
            )
        except ServiceError as error:
            headers_out = {}
            if error.retry_after is not None:
                headers_out["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
            await self._respond(
                writer, method, error.status, {"error": str(error)}, headers_out
            )
            return keep_alive
        except Exception as error:  # noqa: BLE001 - a handler bug must not kill the loop
            await self._respond(
                writer, method, 500, {"error": f"{type(error).__name__}: {error}"}
            )
            return keep_alive
        await self._respond(writer, method, status, payload, headers_out, raw=raw)
        return keep_alive

    @staticmethod
    def _parse_head(block: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            text = block.decode("latin-1")
        except UnicodeDecodeError as error:  # pragma: no cover - latin-1 is total
            raise ValueError(f"undecodable request head: {error}") from error
        lines = text.split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            raise ValueError(f"malformed request line {lines[0]!r}")
        method, target, version = request_line
        if not version.startswith("HTTP/1."):
            raise ValueError(f"unsupported HTTP version {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise ValueError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        peer: str,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str, dict, bool]:
        """Dispatch one request; returns (status, payload, headers, is_raw_text)."""
        split = urlsplit(target)
        parts = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        loop = asyncio.get_running_loop()

        if method == "GET":
            if parts == ["metrics"]:
                return 200, self.service.metrics.render(), {}, True
            if parts == ["stats"]:
                return 200, self.service.stats(), {}, False
            if parts == ["healthz"]:
                return 200, self.service.health(), {}, False
            if len(parts) == 2 and parts[0] == "jobs":
                return 200, self.service.job_status(parts[1]), {}, False
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                wait = parse_wait_seconds(query)
                if wait > 0:
                    await self._await_settled(parts[1], wait, loop)
                return 200, self.service.job_result(parts[1]), {}, False
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                return 200, self.service.job_trace(parts[1]), {}, False
            raise ServiceError(f"unknown endpoint {target!r}", status=404)

        if method == "POST":
            if parts != ["jobs"]:
                raise ServiceError(f"unknown endpoint {target!r}", status=404)
            self._check_rate_limit(peer)
            try:
                payload = json.loads(body or b"{}")
            except ValueError as error:
                raise ServiceError(
                    f"request body is not JSON: {error}", status=400
                ) from error
            first = payload.get("first") if isinstance(payload, dict) else None
            second = payload.get("second") if isinstance(payload, dict) else None
            if not isinstance(first, str) or not isinstance(second, str):
                raise ServiceError(
                    "body must be {'first': <qasm>, 'second': <qasm>}", status=400
                )
            # QASM parsing + canonical fingerprinting is CPU work; keep it
            # off the event loop so slow submissions cannot stall long-poll
            # wakeups and health checks.
            result = await loop.run_in_executor(
                None,
                functools.partial(
                    self.service.submit_qasm,
                    first,
                    second,
                    traceparent=(headers or {}).get("traceparent"),
                ),
            )
            return 202, result, {}, False

        raise ServiceError(f"method {method} not allowed", status=405)

    async def _await_settled(
        self, job_id: str, wait: float, loop: asyncio.AbstractEventLoop
    ) -> None:
        event = asyncio.Event()

        def wake() -> None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop shut down while the job was settling

        if not self.service.add_settled_listener(job_id, wake):
            return  # already settled (or unknown/pruned): answer immediately
        try:
            await asyncio.wait_for(event.wait(), timeout=wait)
        except TimeoutError:
            pass  # long-poll budget exhausted; fall through to 409

    def _check_rate_limit(self, peer: str) -> None:
        if self.rate_limit is None:
            return
        now = time.monotonic()
        bucket = self._buckets.get(peer)
        if bucket is None:
            # Bound the table: a scanner cycling source addresses must not
            # grow it forever.  Dropping the stalest bucket refills that
            # client's burst — harmless compared to unbounded growth.
            if len(self._buckets) >= 4096:
                stalest = min(self._buckets, key=lambda key: self._buckets[key].updated)
                del self._buckets[stalest]
            bucket = _TokenBucket(self.rate_limit, self.rate_burst, now)
            self._buckets[peer] = bucket
        if not bucket.try_acquire(now):
            if self._m_rejected is not None:
                self._m_rejected.inc(reason="rate_limit")
            raise ServiceError(
                f"client {peer} exceeded {self.rate_limit:g} submissions/s; "
                "slow down",
                status=429,
                retry_after=bucket.retry_after(),
            )

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        status: int,
        payload: dict | str,
        headers: dict | None = None,
        raw: bool = False,
    ) -> None:
        if raw:
            body = str(payload).encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head_lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            head_lines.append(f"{name}: {value}")
        head_lines.append("\r\n")
        self._m_requests.inc(backend="async", method=method, status=str(status))
        _log.info(
            "http access",
            **fields(backend="async", method=method, status=status),
        )
        try:
            writer.write("\r\n".join(head_lines).encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            # The client disconnected while we were answering; the request
            # is already fully processed, so drop the connection quietly.
            pass
