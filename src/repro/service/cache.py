"""The verdict cache: content-addressed storage of portfolio results.

In real compilation flows the same circuit pairs are re-verified over and
over as toolchains iterate.  :class:`VerdictCache` stores the *essentials*
of a :class:`~repro.core.results.PortfolioResult` (criterion, decided_by,
schedule, per-checker timings) under the pair's
:func:`~repro.service.fingerprint.pair_fingerprint`, in two tiers:

* an **in-memory LRU tier** bounded by ``max_entries`` (mirroring the DD
  gate cache's eviction policy), and
* an optional **persistent tier** (``Configuration.cache_path``) backed by
  a :class:`~repro.resilience.journal.CrashSafeJournal` (PR 8): every store
  appends one checksummed, length-prefixed record; a fresh cache instance
  replays the journal on construction with torn-tail truncation and
  quantified recovery (``recovered``/``dropped`` counters), and the file is
  compacted to last-record-per-fingerprint once it outgrows
  ``journal_max_bytes`` — verdicts survive crashes and restarts, and
  long-lived servers stay bounded.  Journals written by the pre-PR-8 bare
  JSON-lines format replay cleanly (the journal's legacy tier).

Only *conclusive* results are cached: a ``NO_INFORMATION`` outcome (errors,
timeouts) must stay retryable and would otherwise poison the cache.  Hit /
miss / eviction / store counters are surfaced by :meth:`VerdictCache.
statistics`, in the same spirit as ``DDPackage.statistics()``.  All
operations are thread-safe — the job-queue server shares one cache across
its worker pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.results import (
    CheckerAttempt,
    EquivalenceCheckResult,
    EquivalenceCriterion,
    PortfolioResult,
)
from repro.resilience.journal import CrashSafeJournal

__all__ = ["CachedAttempt", "CachedVerdict", "VerdictCache"]


@dataclass(frozen=True)
class CachedAttempt:
    """Per-checker essentials of one portfolio attempt (JSON-friendly)."""

    method: str
    status: str
    criterion: str | None = None
    time_taken: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class CachedVerdict:
    """The stored essentials of one portfolio run.

    Deliberately *not* the full :class:`PortfolioResult`: checker detail
    payloads (DD statistics, stimuli, fidelity tables) are large, process-
    specific and irrelevant to a cache consumer, which only needs the
    verdict, who decided it, the schedule that ran and the timings.
    """

    fingerprint: str
    criterion: str
    decided_by: str | None
    reason: str
    schedule: tuple[str, ...]
    scheduler: str
    total_time: float
    attempts: tuple[CachedAttempt, ...] = ()

    @classmethod
    def from_result(cls, fingerprint: str, result: PortfolioResult) -> "CachedVerdict":
        return cls(
            fingerprint=fingerprint,
            criterion=result.criterion.value,
            decided_by=result.decided_by,
            reason=result.reason,
            schedule=tuple(result.schedule),
            scheduler=result.scheduler,
            total_time=result.total_time,
            attempts=tuple(
                CachedAttempt(
                    method=attempt.method,
                    status=attempt.status,
                    criterion=(
                        attempt.result.criterion.value
                        if attempt.result is not None
                        else None
                    ),
                    time_taken=attempt.time_taken,
                    error=attempt.error,
                )
                for attempt in result.attempts
            ),
        )

    def to_result(self) -> PortfolioResult:
        """Rebuild a :class:`PortfolioResult` (marked ``cached=True``).

        Attempts are rebuilt with skeletal
        :class:`~repro.core.results.EquivalenceCheckResult` payloads so that
        ``PortfolioResult.result`` and the CLI's per-checker reporting keep
        working on cache hits; the free-form ``details`` are gone by design.
        """
        attempts = [
            CheckerAttempt(
                method=attempt.method,
                status=attempt.status,
                result=(
                    EquivalenceCheckResult(
                        criterion=EquivalenceCriterion(attempt.criterion),
                        method=attempt.method,
                        time_check=attempt.time_taken,
                    )
                    if attempt.criterion is not None
                    else None
                ),
                error=attempt.error,
                time_taken=attempt.time_taken,
            )
            for attempt in self.attempts
        ]
        return PortfolioResult(
            criterion=EquivalenceCriterion(self.criterion),
            decided_by=self.decided_by,
            reason=self.reason,
            attempts=attempts,
            total_time=self.total_time,
            schedule=list(self.schedule),
            scheduler=self.scheduler,
            cached=True,
        )

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "CachedVerdict":
        attempts = tuple(
            CachedAttempt(**attempt) for attempt in payload.get("attempts", ())
        )
        return cls(
            fingerprint=payload["fingerprint"],
            criterion=payload["criterion"],
            decided_by=payload.get("decided_by"),
            reason=payload.get("reason", ""),
            schedule=tuple(payload.get("schedule", ())),
            scheduler=payload.get("scheduler", "static"),
            total_time=payload.get("total_time", 0.0),
            attempts=attempts,
        )


class VerdictCache:
    """Two-tier (LRU memory + crash-safe journal) verdict cache."""

    #: Default compaction trigger: once the journal file outgrows this the
    #: next store rewrites it to last-record-per-fingerprint.
    DEFAULT_JOURNAL_MAX_BYTES = 16 * 1024 * 1024

    def __init__(
        self,
        max_entries: int | None = 1024,
        path: "str | Path | None" = None,
        *,
        journal_max_bytes: int | None = DEFAULT_JOURNAL_MAX_BYTES,
        write_hook: Callable[[], None] | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, CachedVerdict] = OrderedDict()
        # The replayed journal: never evicted (it is disk-backed content and
        # one dict entry per record is cheap next to re-verifying a pair).
        self._persistent: dict[str, CachedVerdict] = {}
        self._journal: CrashSafeJournal | None = None
        self._hits = 0
        self._misses = 0
        self._persistent_hits = 0
        self._stores = 0
        self._evictions = 0
        self._journal_errors = 0
        if self.path is not None:
            # Fail fast on an unusable path: a cache that would only blow up
            # at the first store — after a verification already succeeded —
            # is worse than an early, attributable construction error.  The
            # journal constructor creates parent directories and touches the
            # file; replay truncates a torn tail and counts what it dropped.
            self._journal = CrashSafeJournal(
                self.path,
                key=lambda record: record.get("fingerprint"),
                max_bytes=journal_max_bytes,
                write_hook=write_hook,
            )
            self._replay_journal()

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------

    def _replay_journal(self) -> None:
        """Replay the crash-safe journal (last record per fingerprint wins).

        Torn or corrupt records are counted and skipped by the journal
        rather than failing the whole cache: the journal is a cache, not a
        ledger.  A record that frames correctly but no longer decodes into a
        :class:`CachedVerdict` (schema drift) is likewise skipped.
        """
        for payload in self._journal.replay():
            try:
                verdict = CachedVerdict.from_json(payload)
            except (ValueError, KeyError, TypeError):
                continue
            self._persistent[verdict.fingerprint] = verdict

    def _append_journal(self, verdict: CachedVerdict) -> None:
        """Append one record; on I/O failure degrade to memory-only.

        A full disk or a journal that became unwritable mid-run must never
        fail a verification whose checkers already succeeded — the verdict
        stays served from memory and ``journal_errors`` counts the loss.
        """
        try:
            self._journal.append(verdict.to_json())
        except OSError:
            self._journal_errors += 1
            self.path = None
            self._journal = None

    # ------------------------------------------------------------------
    # cache protocol
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> PortfolioResult | None:
        """Look up a verdict; a hit rebuilds the cached :class:`PortfolioResult`."""
        with self._lock:
            verdict = self._memory.get(fingerprint)
            if verdict is not None:
                self._hits += 1
                self._memory.move_to_end(fingerprint)
                return verdict.to_result()
            verdict = self._persistent.get(fingerprint)
            if verdict is not None:
                # Promote journal hits into the LRU tier so repeat traffic
                # stays on the hot path.
                self._hits += 1
                self._persistent_hits += 1
                self._store_memory(fingerprint, verdict)
                return verdict.to_result()
            self._misses += 1
            return None

    def contains(self, fingerprint: str) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        with self._lock:
            return fingerprint in self._memory or fingerprint in self._persistent

    def put(self, fingerprint: str, result: PortfolioResult) -> bool:
        """Store a result's essentials; returns whether it was cacheable.

        ``NO_INFORMATION`` outcomes (nothing decided — errors, timeouts) are
        rejected so a transient failure can never shadow a later real verdict.
        """
        if result.criterion is EquivalenceCriterion.NO_INFORMATION:
            return False
        verdict = CachedVerdict.from_result(fingerprint, result)
        with self._lock:
            self._stores += 1
            self._store_memory(fingerprint, verdict)
            if self._journal is not None:
                self._persistent[fingerprint] = verdict
                self._append_journal(verdict)
        return True

    def flush(self) -> None:
        """Force journal bytes to disk (graceful-drain path); best-effort."""
        with self._lock:
            if self._journal is not None:
                self._journal.flush()

    def _store_memory(self, fingerprint: str, verdict: CachedVerdict) -> None:
        self._memory[fingerprint] = verdict
        self._memory.move_to_end(fingerprint)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop the in-memory LRU tier.

        Journal-backed verdicts (on disk *and* their replayed index) stay
        servable — clearing frees the hot tier, it does not forget persisted
        work.  Delete the journal file itself to actually discard those.
        """
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def statistics(self) -> dict:
        """Counters and sizes, mirroring ``DDPackage.statistics()``."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._memory),
                "persistent_entries": len(self._persistent),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "persistent_hits": self._persistent_hits,
                "stores": self._stores,
                "evictions": self._evictions,
                "journal_errors": self._journal_errors,
                "hit_ratio": (self._hits / lookups) if lookups else 0.0,
                "path": str(self.path) if self.path is not None else None,
                # Crash-safety counters from the journal itself: how many
                # records the last replay recovered/dropped, torn-tail bytes
                # truncated, compactions run.  None when memory-only.
                "journal": (
                    self._journal.statistics() if self._journal is not None else None
                ),
            }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"VerdictCache(entries={stats['entries']}, hits={stats['hits']}, "
            f"misses={stats['misses']}, path={stats['path']})"
        )
