"""A stdlib-only client for the verification job-queue servers.

Mirrors the endpoints of :mod:`repro.service.server` (and its asyncio twin
:mod:`repro.service.aserver`) one method per endpoint, plus the ``submit →
wait → result`` convenience loop every caller would otherwise rewrite.
Accepts circuits as :class:`~repro.circuit.circuit.QuantumCircuit` objects
(exported to QASM on the wire) or as raw OpenQASM 2 strings.

:meth:`VerificationClient.wait` *long-polls*: it asks the server to block
the result request until the job settles (``GET /jobs/<id>/result?wait=N``),
so a warm-cache verification completes in two HTTP requests — one submit,
one result — instead of a 50 ms poll loop.  Against a server that ignores
``?wait=`` the client degrades gracefully to sleeping between polls.

With ``retries=N`` the client transparently retries requests the server
refused with 429/503 — or could not answer at all (connection errors) —
honoring the server's ``Retry-After`` hint when present and otherwise
backing off with capped decorrelated jitter
(:class:`~repro.resilience.retry.RetryPolicy`).  Retrying a submit is safe:
the server coalesces identical in-flight submissions by fingerprint, so a
retried submit lands on the same job.  The default is ``retries=0`` —
callers that implement their own backpressure handling see every 429.

Example
-------
>>> from repro.service import VerificationClient, VerificationServer
>>> server = VerificationServer(port=0)          # ephemeral port
>>> thread = server.start_background()
>>> client = VerificationClient(server.url)
>>> payload = client.verify(first, second)       # doctest: +SKIP
>>> payload["criterion"]                         # doctest: +SKIP
'equivalent'
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from repro.exceptions import ServiceError
from repro.obs import trace
from repro.resilience.retry import RetryPolicy

__all__ = ["VerificationClient"]

#: HTTP statuses worth retrying: overload shedding and transient
#: unavailability.  Everything else (404/409/410/4xx misuse/500 job
#: failures) is either caller-visible protocol state or a real error.
_RETRYABLE_STATUSES = frozenset({429, 503})

#: Cap on one long-poll request; matches the server-side cap so a client
#: asking for more simply re-issues the request.
_MAX_WAIT_PER_REQUEST = 30.0

#: Extra socket-timeout slack on top of the requested long-poll budget, so
#: the HTTP timeout fires only when the server is genuinely unresponsive.
_WAIT_GRACE = 10.0


def _as_qasm(circuit) -> str:
    if isinstance(circuit, str):
        return circuit
    return circuit.to_qasm()


def _retry_after_from(error: urllib.error.HTTPError) -> float | None:
    value = error.headers.get("Retry-After") if error.headers else None
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class VerificationClient:
    """HTTP client for a thread or asyncio verification server.

    ``retries`` bounds how many times one logical request is re-issued after
    a retryable failure (429/503/connection error); ``retry_base`` /
    ``retry_cap`` shape the jittered backoff between tries.  ``retry_rng``
    and ``retry_sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        *,
        retries: int = 0,
        retry_base: float = 0.1,
        retry_cap: float = 5.0,
        retry_rng: random.Random | None = None,
        retry_sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self._retry_rng = retry_rng
        self._retry_sleep = retry_sleep
        #: Lifetime count of retried requests (observability / tests).
        self.retries_performed = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float | None = None,
        headers: dict | None = None,
    ) -> dict:
        if self.retries <= 0:
            return self._request_once(method, path, payload, timeout, headers)
        # One fresh policy per logical request: backoff history must not
        # leak across unrelated calls, and a per-request policy needs no
        # locking for concurrent callers sharing the client.
        policy = RetryPolicy(
            attempts=self.retries,
            base=self._retry_base,
            cap=self._retry_cap,
            rng=self._retry_rng,
            sleep=self._retry_sleep,
        )
        remaining = self.retries
        while True:
            try:
                return self._request_once(method, path, payload, timeout, headers)
            except ServiceError as error:
                if remaining <= 0 or error.status not in _RETRYABLE_STATUSES:
                    raise
                remaining -= 1
                self.retries_performed += 1
                policy.backoff(error.retry_after)

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float | None = None,
        extra_headers: dict | None = None,
    ) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                detail or f"{method} {path} failed with HTTP {error.code}",
                status=error.code,
                retry_after=_retry_after_from(error),
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach verification server at {self.base_url}: {error.reason}",
                status=503,
            ) from error

    def _request_text(self, path: str) -> str:
        request = urllib.request.Request(f"{self.base_url}{path}", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET {path} failed with HTTP {error.code}", status=error.code
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach verification server at {self.base_url}: {error.reason}",
                status=503,
            ) from error

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def submit(self, first, second, *, traceparent: str | None = None) -> dict:
        """Submit a pair; returns ``{"job_id", "fingerprint", "coalesced"}``.

        A server shedding load answers 429; the raised :class:`ServiceError`
        then carries the server's ``Retry-After`` hint in ``retry_after``.

        The submission carries a W3C ``Traceparent`` header so the server-
        side job execution joins the caller's distributed trace: an explicit
        ``traceparent`` wins, otherwise the ambient active span's position
        (:func:`repro.obs.trace.current_traceparent`) is used, and without
        either the header is omitted (the server roots a fresh trace).
        """
        if traceparent is None:
            traceparent = trace.current_traceparent()
        return self._request(
            "POST",
            "/jobs",
            {"first": _as_qasm(first), "second": _as_qasm(second)},
            headers={"Traceparent": traceparent} if traceparent else None,
        )

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, wait: float | None = None) -> dict:
        """The verdict payload (raises :class:`ServiceError` 409 while pending).

        ``wait`` long-polls: the server holds the request until the job
        settles or ``wait`` seconds pass, then answers as usual.
        """
        if wait is None:
            return self._request("GET", f"/jobs/{job_id}/result")
        wait = min(max(0.0, wait), _MAX_WAIT_PER_REQUEST)
        return self._request(
            "GET",
            f"/jobs/{job_id}/result?wait={wait:g}",
            timeout=wait + max(self.timeout, _WAIT_GRACE),
        )

    def trace(self, job_id: str) -> dict:
        """The span tree of a settled job (``GET /jobs/<id>/trace``)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (``GET /metrics``)."""
        return self._request_text("/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05) -> dict:
        """Block until the job settles; returns the verdict payload.

        Issues long-poll result requests, so a settled (or warm-cache) job
        costs exactly one request.  Raises :class:`ServiceError` 504 if the
        deadline passes first, propagates the server's 500 for a failed job,
        and translates the 410 of a pruned-and-uncached job into an
        actionable "resubmit" error.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id!r} still unsettled after {timeout}s", status=504
                )
            requested = min(remaining, _MAX_WAIT_PER_REQUEST)
            issued_at = time.monotonic()
            try:
                return self.result(job_id, wait=requested)
            except ServiceError as error:
                if error.status == 410:
                    raise ServiceError(
                        f"job {job_id!r} was pruned before its result was fetched "
                        f"and is no longer cached; resubmit the pair ({error})",
                        status=410,
                    ) from error
                if error.status != 409:
                    raise
                # Still pending.  A long-polling server only answers 409
                # after blocking for most of the requested window; a server
                # that ignored ``?wait=`` answers immediately — sleep before
                # retrying so we degrade to polling instead of busy-looping.
                elapsed = time.monotonic() - issued_at
                if elapsed < min(requested, 1.0) / 2:
                    time.sleep(min(poll_interval, max(0.0, deadline - time.monotonic())))

    def verify(self, first, second, timeout: float = 60.0) -> dict:
        """Submit one pair and block until its verdict is available."""
        submission = self.submit(first, second)
        return self.wait(submission["job_id"], timeout=timeout)
