"""A stdlib-only client for the verification job-queue server.

Mirrors :mod:`repro.service.server`'s endpoints one method per endpoint,
plus the ``submit → poll → result`` convenience loop every caller would
otherwise rewrite.  Accepts circuits as :class:`~repro.circuit.circuit.
QuantumCircuit` objects (exported to QASM on the wire) or as raw OpenQASM 2
strings.

Example
-------
>>> from repro.service import VerificationClient, VerificationServer
>>> server = VerificationServer(port=0)          # ephemeral port
>>> thread = server.start_background()
>>> client = VerificationClient(server.url)
>>> payload = client.verify(first, second)       # doctest: +SKIP
>>> payload["criterion"]                         # doctest: +SKIP
'equivalent'
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.exceptions import ServiceError

__all__ = ["VerificationClient"]


def _as_qasm(circuit) -> str:
    if isinstance(circuit, str):
        return circuit
    return circuit.to_qasm()


class VerificationClient:
    """HTTP client for a :class:`~repro.service.server.VerificationServer`."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                detail or f"{method} {path} failed with HTTP {error.code}",
                status=error.code,
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach verification server at {self.base_url}: {error.reason}",
                status=503,
            ) from error

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def submit(self, first, second) -> dict:
        """Submit a pair; returns ``{"job_id", "fingerprint", "coalesced"}``."""
        return self._request(
            "POST", "/jobs", {"first": _as_qasm(first), "second": _as_qasm(second)}
        )

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The verdict payload (raises :class:`ServiceError` 409 while pending)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05) -> dict:
        """Poll until the job settles; returns the verdict payload.

        Raises :class:`ServiceError` 504 if the deadline passes first, and
        propagates the server's 500 for a failed job.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)["status"]
            if status in ("done", "failed"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id!r} still {status} after {timeout}s", status=504
                )
            time.sleep(poll_interval)

    def verify(self, first, second, timeout: float = 60.0) -> dict:
        """Submit one pair and block until its verdict is available."""
        submission = self.submit(first, second)
        return self.wait(submission["job_id"], timeout=timeout)
