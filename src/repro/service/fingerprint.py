"""Canonical structural fingerprints for circuits, pairs and configurations.

The verdict cache and the job-queue server key their entries by a SHA-256
digest of a *canonical form* of the input: the flat instruction stream over
circuit-level bit indices, plus the verdict-relevant configuration fields.
Canonical means stable across every representation detail that cannot change
a verdict:

* register *names* and bit-object identity (only flat indices are hashed);
* pickle round-trips (``QuantumCircuit.__getstate__`` rebuilds the identical
  stream);
* QASM export/import round-trips — gate parameters are hashed through the
  same canonical text form the QASM exporter uses
  (:func:`repro.circuit.qasm._format_param`), so an angle that exports as
  ``pi/2`` and re-imports as ``math.pi / 2`` fingerprints identically;
* barriers, which are semantically inert and are skipped.

Anything that *can* change a verdict is part of the key: gate names,
parameters, operand order, control states, classical conditions, qubit/clbit
counts, the order of the two circuits in a pair, and the configuration
fields listed in :data:`VERDICT_CONFIGURATION_FIELDS`.  Performance-only
knobs (``executor``, ``max_workers``, ``gate_cache*``, ``dense_cutoff``,
``batch_chunk_size``, the cache knobs themselves) are deliberately excluded:
they are verdict-preserving by construction (and agreement-tested), so runs
that differ only in those knobs share cache entries.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.circuit.qasm import _format_param

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.configuration import Configuration

__all__ = [
    "VERDICT_CONFIGURATION_FIELDS",
    "canonical_circuit_form",
    "canonical_configuration_form",
    "canonical_fingerprints_sound_for",
    "canonical_pair_fingerprint",
    "circuit_fingerprint",
    "configuration_fingerprint",
    "pair_fingerprint",
]

#: Version tag mixed into every digest.  Bump when the canonical form
#: changes so stale persistent cache entries can never be misread as hits.
_FORM_VERSION = "repro-fingerprint-v1"

#: Angle resolution of the canonical form: parameters are hashed through the
#: QASM exporter's text form, which snaps values within 1e-12 of a pi
#: multiple to that multiple (exactly what a QASM round-trip does, and what
#: ``Operation.__eq__`` equates).  Circuits whose angles differ by less than
#: this are one circuit as far as serialization is concerned — but a
#: ``Configuration.tolerance`` at or below this window could in principle
#: distinguish them, so such configurations must not use fingerprint-keyed
#: caching or dedup (see :func:`fingerprints_sound_for`).
CANONICAL_ANGLE_RESOLUTION = 1e-12


def fingerprints_sound_for(configuration: "Configuration | None") -> bool:
    """Whether fingerprint-keyed caching is sound under this configuration.

    False only for tolerances at or below the canonical angle resolution,
    where two circuits that share a fingerprint could in principle be told
    apart by the checkers.
    """
    return configuration is None or configuration.tolerance > CANONICAL_ANGLE_RESOLUTION


def canonical_fingerprints_sound_for(configuration: "Configuration | None") -> bool:
    """Whether *canonicalized* fingerprints are sound under this configuration.

    The canonical form additionally quantizes merged-gate angles onto the
    coarser :data:`~repro.compilation.canonical.CANONICAL_ANGLE_GRID`, so two
    circuits within that grid share a canonical fingerprint.  That is only
    safe when the tolerance out-resolves the grid; tighter tolerances must
    fall back to raw fingerprints (handled by callers returning ``None``
    from :func:`canonical_pair_fingerprint`).
    """
    from repro.compilation.canonical import CANONICAL_ANGLE_GRID

    if not fingerprints_sound_for(configuration):
        return False
    return configuration is None or configuration.tolerance > CANONICAL_ANGLE_GRID


#: Configuration fields that can influence the criterion of a portfolio run.
#: ``portfolio`` is resolved to the effective lineup (``None`` selects the
#: default portfolio, which must share entries with the same lineup spelled
#: out); ``seed`` keys the simulative stimuli; the timeout fields make
#: outcomes time-dependent and therefore partition the cache.
VERDICT_CONFIGURATION_FIELDS = (
    "method",
    "strategy",
    "backend",
    "transform_dynamic",
    "tolerance",
    "num_simulations",
    "stimuli_type",
    "seed",
    "scheduler",
    "timeout",
    "checker_timeout",
)


def _canonical_operation(operation) -> tuple:
    """Hashable description of an operation, canonical across round-trips."""
    ctrl_state = getattr(operation, "ctrl_state", None)
    num_ctrl_qubits = getattr(operation, "num_ctrl_qubits", None)
    base_gate = getattr(operation, "base_gate", None)
    return (
        operation.name,
        operation.num_qubits,
        operation.num_clbits,
        tuple(_format_param(param) for param in operation.params),
        num_ctrl_qubits,
        ctrl_state,
        base_gate.name if base_gate is not None else None,
    )


def canonical_circuit_form(circuit: "QuantumCircuit") -> tuple:
    """The hashable canonical form of a circuit (exposed for tests/debugging).

    A flat tuple of the bit counts and the barrier-free instruction stream;
    two circuits have equal canonical forms iff they are structurally
    identical up to register naming, bit identity and barriers.
    """
    instructions = []
    for instruction in circuit:
        if instruction.is_barrier:
            continue
        condition = instruction.condition
        instructions.append(
            (
                _canonical_operation(instruction.operation),
                instruction.qubits,
                instruction.clbits,
                (condition.clbits, condition.value) if condition is not None else None,
            )
        )
    return (
        _FORM_VERSION,
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(instructions),
    )


def canonical_configuration_form(configuration: "Configuration | None") -> tuple:
    """The hashable canonical form of the verdict-relevant configuration."""
    if configuration is None:
        return (_FORM_VERSION, None)
    from repro.core.manager import DEFAULT_PORTFOLIO

    portfolio = configuration.portfolio or DEFAULT_PORTFOLIO
    fields = tuple(
        (name, getattr(configuration, name)) for name in VERDICT_CONFIGURATION_FIELDS
    )
    return (_FORM_VERSION, ("portfolio", tuple(portfolio)), *fields)


def _digest(form: tuple) -> str:
    # repr() of the canonical form is deterministic across processes and
    # interpreter runs: it only ever contains str/int/bool/None/float leaves
    # inside tuples, and floats round-trip exactly through repr.
    return hashlib.sha256(repr(form).encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: "QuantumCircuit") -> str:
    """SHA-256 hex digest of a circuit's canonical structural form."""
    return _digest(canonical_circuit_form(circuit))


def configuration_fingerprint(configuration: "Configuration | None") -> str:
    """SHA-256 hex digest of the verdict-relevant configuration fields."""
    return _digest(canonical_configuration_form(configuration))


def pair_fingerprint(
    first: "QuantumCircuit",
    second: "QuantumCircuit",
    configuration: "Configuration | None" = None,
) -> str:
    """Fingerprint of an *ordered* circuit pair under a configuration.

    This is the verdict-cache key: it commits to both circuits' structure,
    their order (swapping the operands is a different check), and every
    configuration field that can influence the criterion.
    """
    return _digest(
        (
            _FORM_VERSION,
            "pair",
            canonical_circuit_form(first),
            canonical_circuit_form(second),
            canonical_configuration_form(configuration),
        )
    )


def canonical_pair_fingerprint(
    first: "QuantumCircuit",
    second: "QuantumCircuit",
    configuration: "Configuration | None" = None,
) -> str | None:
    """Translation-level-invariant fingerprint of an ordered circuit pair.

    Both circuits are :func:`~repro.compilation.canonical.canonicalize`\\ d
    (library-translated to the CX + single-qubit basis, adjacent single-qubit
    runs merged and quantized) before hashing, so the same logical pair
    fingerprints identically at every translation level.  Keys are kept
    distinct from :func:`pair_fingerprint` by a separate form tag — a raw
    and a canonical entry for the same pair can coexist in the
    :class:`~repro.service.cache.VerdictCache` without colliding.

    Returns ``None`` — callers skip the canonical tier rather than failing —
    when the configuration's tolerance out-resolves the canonical angle grid
    or when a circuit cannot be canonicalized (e.g. a gate with no
    translation to the base gate set).
    """
    if not canonical_fingerprints_sound_for(configuration):
        return None
    from repro.compilation.canonical import canonicalize

    try:
        canonical_first = canonicalize(first)
        canonical_second = canonicalize(second)
    except Exception:  # noqa: BLE001 - canonical tier is best-effort
        return None
    return _digest(
        (
            _FORM_VERSION,
            "canonical-pair",
            canonical_circuit_form(canonical_first),
            canonical_circuit_form(canonical_second),
            canonical_configuration_form(configuration),
        )
    )
