"""A unified metrics registry with Prometheus text exposition.

PR 5 left the service's observability scattered: ``DDPackage.statistics()``,
``VerdictCache.statistics()`` and ``VerificationService.stats()`` each expose
their own ad-hoc dict.  This module unifies them behind one
:class:`MetricsRegistry` of counters, gauges and histograms that both HTTP
front ends (`repro.service.server` and `repro.service.aserver`) export at
``GET /metrics`` in the Prometheus text exposition format (version 0.0.4).

Design notes
------------
* **Stdlib only, no repro imports.**  The registry sits below every other
  service module (and even below :mod:`repro.dd.package`, which publishes
  into it), so it must not import any of them.
* **Instruments are cheap and thread-safe.**  Checker worker threads observe
  latencies concurrently with HTTP scrape threads rendering the exposition;
  a single registry lock covers both.
* **Pull-based sources use collectors.**  State that already has an owner
  (queue depth, verdict-cache hit counts) is harvested at scrape time via
  :meth:`MetricsRegistry.add_collector` callbacks instead of being
  double-counted on every mutation.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_dd_statistics",
    "publish_dd_statistics",
    "publish_rewrite_statistics",
]

#: Latency buckets (seconds) sized for equivalence-check workloads: cache
#: hits land in the sub-millisecond buckets, simulative checks in the
#: millisecond range, and construction/alternating runs up to the default
#: per-checker budget.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    parts = ", ".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + parts + "}"


class _Metric:
    """Common bookkeeping: name, help text, label schema, sample store."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.RLock
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._samples: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> Iterable[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonically increasing count (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def render(self) -> Iterable[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._samples.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down; may be backed by a callback."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.RLock
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._callback: Callable[[], float] | None = None

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, callback: Callable[[], float]) -> None:
        """Back an unlabelled gauge by ``callback`` evaluated at scrape time."""
        if self.labelnames:
            raise ValueError(f"gauge {self.name!r} has labels; set values explicitly")
        self._callback = callback

    def value(self, **labels) -> float:
        if self._callback is not None and not labels:
            return float(self._callback())
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def render(self) -> Iterable[str]:
        lines = self._header()
        if self._callback is not None:
            try:
                current = float(self._callback())
            except Exception:  # noqa: BLE001 - a scrape must not fail the page
                return lines
            lines.append(f"{self.name} {_format_value(current)}")
            return lines
        with self._lock:
            items = sorted(self._samples.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = [[0] * len(self.buckets), 0.0, 0]
                self._samples[key] = sample
            counts, _, _ = sample
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            sample[1] += float(value)
            sample[2] += 1

    def count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            return int(sample[2]) if sample is not None else 0

    def render(self) -> Iterable[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, (list(sample[0]), sample[1], sample[2]))
                for key, sample in self._samples.items()
            )
        for key, (counts, total, count) in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _render_labels(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _render_labels(self.labelnames + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{labels} {count}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines


class MetricsRegistry:
    """Owner of a coherent set of metrics plus scrape-time collectors.

    Instrument constructors are idempotent: asking for an existing name
    returns the existing instrument (so the service, the manager and the DD
    layer can share one registry without coordinating creation order), but a
    kind or label-schema mismatch raises — two subsystems silently writing
    incompatible series under one name is exactly the bug this registry
    exists to prevent.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    def _instrument(self, cls, name: str, help_text: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, tuple(labelnames), self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._instrument(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._instrument(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._instrument(Histogram, name, help_text, labelnames, buckets=buckets)

    def add_collector(self, callback: Callable[[], None]) -> None:
        """Register a scrape-time callback that refreshes pull-based gauges."""
        with self._lock:
            self._collectors.append(callback)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            collectors = list(self._collectors)
            metrics = list(self._metrics.values())
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 - one sick source must not kill the scrape
                continue
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: ``DDPackage.statistics()`` keys that accumulate as counters; everything
#: else in the statistics dict is a point-in-time size and is not exported.
_DD_COUNTER_KEYS = (
    "gate_cache_hits",
    "gate_cache_misses",
    "gate_cache_evictions",
    "gate_cache_expirations",
    "chain_cache_evictions",
    "chain_cache_expirations",
)


def publish_dd_statistics(
    registry: MetricsRegistry, statistics: dict, checker: str = "unknown"
) -> None:
    """Accumulate one ``DDPackage.statistics()`` snapshot into ``registry``.

    Used both by :meth:`repro.dd.package.DDPackage.publish_metrics` (an
    in-process package publishing its own totals) and by the manager, which
    harvests the ``dd_statistics`` payload each DD-based checker leaves in
    its result details.
    """
    counter = registry.counter(
        "repro_dd_events_total",
        "Decision-diagram backend events accumulated across checker runs.",
        labelnames=("checker", "event"),
    )
    for key in _DD_COUNTER_KEYS:
        value = statistics.get(key)
        if value:
            counter.inc(float(value), checker=checker, event=key)
    nodes = registry.gauge(
        "repro_dd_last_run_nodes",
        "Node counts of the most recent decision-diagram run.",
        labelnames=("checker", "kind"),
    )
    for kind in ("vector_nodes", "matrix_nodes"):
        if kind in statistics:
            nodes.set(float(statistics[kind]), checker=checker, kind=kind)


def merge_dd_statistics(accumulator: dict, statistics: dict) -> dict:
    """Merge one ``DDPackage.statistics()`` snapshot into an accumulator.

    Counter keys add up; the point-in-time node counts keep the most recent
    snapshot's value.  Used by the manager to aggregate per-checker DD
    activity across a batch — including snapshots harvested from
    process-pool work-unit results, whose worker-side accumulators die with
    the pool.
    """
    for key in _DD_COUNTER_KEYS:
        value = statistics.get(key)
        if value:
            accumulator[key] = accumulator.get(key, 0) + int(value)
    for kind in ("vector_nodes", "matrix_nodes"):
        if kind in statistics:
            accumulator[kind] = statistics[kind]
    return accumulator


#: ``rewrite_statistics`` keys that accumulate as counters (events per run).
_REWRITE_COUNTER_KEYS = (
    "input_gates",
    "merged_single_qubit",
    "cancelled_cx",
)


def publish_rewrite_statistics(
    registry: MetricsRegistry, statistics: dict, checker: str = "rewrite"
) -> None:
    """Accumulate one rewrite-checker statistics payload into ``registry``.

    Harvested by the manager from the ``rewrite_statistics`` detail the
    :class:`~repro.core.checkers.rewrite.RewriteChecker` leaves in its
    outcome, mirroring how ``dd_statistics`` flows into the DD metrics.
    """
    counter = registry.counter(
        "repro_rewrite_events_total",
        "Peephole rewrite-checker events accumulated across runs.",
        labelnames=("checker", "event"),
    )
    for key in _REWRITE_COUNTER_KEYS:
        value = statistics.get(key)
        if value:
            counter.inc(float(value), checker=checker, event=key)
    registry.counter(
        "repro_rewrite_reductions_total",
        "Rewrite-checker reduction outcomes (proved identity vs. residual).",
        labelnames=("checker", "outcome"),
    ).inc(
        checker=checker,
        outcome="proved" if statistics.get("proved") else "residual",
    )
    if "remaining" in statistics:
        registry.gauge(
            "repro_rewrite_last_run_remaining",
            "Residual gates after the most recent rewrite reduction.",
            labelnames=("checker",),
        ).set(float(statistics["remaining"]), checker=checker)
