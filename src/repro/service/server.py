"""A stdlib-only HTTP job-queue server for equivalence verification.

``repro-qcec serve --port N`` turns the portfolio manager into a long-running
service: clients POST QASM circuit pairs, the server queues them onto a
worker pool (the same executor machinery ``verify_batch`` uses), and clients
collect the verdict.  The design follows the frontend/backend split of
modern automata tools (Kofola et al.): the HTTP layer only parses and
routes; every decision — scheduling, caching, early termination — stays in
:class:`~repro.core.manager.EquivalenceCheckingManager`.

Endpoints (all JSON unless noted):

* ``POST /jobs``           — body ``{"first": <qasm>, "second": <qasm>}``;
  returns ``202 {"job_id", "fingerprint", "coalesced"}``.  Submissions are
  **deduplicated by fingerprint**: while a job for the same canonical pair
  is queued or running, an identical submission returns the *existing*
  job id (``"coalesced": true``) instead of queueing a second run.  With a
  ``queue_limit`` configured, a saturated queue answers ``429`` with a
  ``Retry-After`` header instead of growing without bound.
* ``GET /jobs/<id>``        — job status (``queued|running|done|failed``).
* ``GET /jobs/<id>/result`` — the verdict payload (``409`` while pending).
  ``?wait=N`` long-polls: the request blocks until the job settles or ``N``
  seconds pass, so a well-behaved client needs one request, not a poll loop.
* ``GET /jobs/<id>/trace``  — the span tree of a settled job (``409`` while
  pending).  A client-supplied ``Traceparent`` request header on submission
  makes the job's spans part of the client's distributed trace.
* ``GET /stats``            — job counters, dedup counter, verdict-cache,
  telemetry-journal and service statistics.
* ``GET /metrics``          — the unified registry in Prometheus text format.
* ``GET /healthz``          — liveness probe with the package version.

:class:`VerificationService` is the transport-free core (job queue, worker
pool, dedup index, settled-event plumbing) shared by this module's
``ThreadingHTTPServer`` front end and the asyncio front end in
:mod:`repro.service.aserver`.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import ThreadPoolExecutor
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.circuit.qasm import circuit_from_qasm
from repro.core.configuration import Configuration
from repro.core.manager import EquivalenceCheckingManager
from repro.exceptions import ReproError, ServiceError
from repro.obs import trace
from repro.obs.logs import fields, get_logger
from repro.resilience.breaker import STATE_VALUES
from repro.resilience.retry import RetryPolicy
from repro.service.fingerprint import fingerprints_sound_for, pair_fingerprint
from repro.service.metrics import _REWRITE_COUNTER_KEYS, MetricsRegistry

__all__ = ["VerificationJob", "VerificationServer", "VerificationService"]

_log = get_logger("service.server")

#: Upper bound on a ``POST /jobs`` body.  Generous for QASM circuit pairs
#: (a 10k-gate circuit exports to well under 1 MB) while keeping a
#: misbehaving client from making a handler thread buffer arbitrary data.
_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Cap on ``?wait=`` long-polls: a client asking for more still gets its
#: (possibly 409) answer after this many seconds and may simply re-issue the
#: request.  Bounds how long one request can pin a handler thread.
MAX_LONG_POLL_SECONDS = 30.0


@dataclass
class VerificationJob:
    """One queued verification: identity, lifecycle timestamps, outcome."""

    job_id: str
    fingerprint: str
    name_first: str
    name_second: str
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    # Client trace position (W3C ``traceparent``) the job execution should
    # continue; the finished spans land in ``trace`` when the job settles.
    traceparent: str | None = None
    trace_id: str | None = None
    trace: list = field(default_factory=list, repr=False, compare=False)
    # Set exactly once, when the job settles; long-poll waiters block on it.
    settled: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def status_payload(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "first": self.name_first,
            "second": self.name_second,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class VerificationService:
    """Transport-free job queue: submit, execute on a pool, collect, dedupe.

    One :class:`~repro.core.manager.EquivalenceCheckingManager` (and hence
    one verdict cache) is shared across the worker pool; worker concurrency
    is ``configuration.max_workers``, exactly like ``verify_batch``.  The
    service enables the verdict cache by default — a server that forgets
    repeat traffic between requests would miss the entire point; pass
    ``cache=False`` for a service whose every submission must run fresh
    (e.g. unseeded simulative traffic that should redraw stimuli, or
    latency benchmarking).

    ``queue_limit`` bounds the number of unsettled jobs: once that many are
    queued or running, new (non-coalescing) submissions are rejected with a
    429 :class:`ServiceError` carrying ``retry_after``.  ``None`` (the
    default) keeps the PR-5 unbounded behaviour for in-process users; the
    HTTP front ends enable it.

    The job table keeps the most recent ``max_finished_jobs`` settled jobs
    for polling; older ones are pruned, which bounds server memory
    regardless of uptime.  Pruning never touches the verdict cache, and a
    pruned-but-settled job id remains *resolvable*: its result is served
    from the verdict cache when possible and otherwise answered with a
    distinguishable 410 ("pruned, resubmit") instead of a bare 404.
    """

    def __init__(
        self,
        configuration: Configuration | None = None,
        *,
        cache: bool = True,
        max_finished_jobs: int = 1024,
        queue_limit: int | None = None,
        metrics: MetricsRegistry | None = None,
        job_retries: int = 2,
    ):
        configuration = configuration or Configuration()
        if cache and not configuration.cache_enabled:
            configuration = configuration.updated(verdict_cache=True)
        if not cache and configuration.cache_enabled:
            configuration = configuration.updated(verdict_cache=False, cache_path=None)
        if max_finished_jobs < 1:
            raise ServiceError("max_finished_jobs must be at least 1", status=500)
        if queue_limit is not None and queue_limit < 1:
            raise ServiceError("queue_limit must be at least 1", status=500)
        if job_retries < 0:
            raise ServiceError("job_retries must be non-negative", status=500)
        self.configuration = configuration
        # Dedup by fingerprint is only sound when the tolerance cannot
        # out-resolve the canonical form (same rule the manager applies to
        # its cache); otherwise every submission gets its own job.
        self._dedup_enabled = fingerprints_sound_for(configuration)
        self.max_finished_jobs = max_finished_jobs
        self.queue_limit = queue_limit
        self.manager = EquivalenceCheckingManager(configuration)
        self._executor = ThreadPoolExecutor(
            max_workers=configuration.max_workers, thread_name_prefix="verify-service"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, VerificationJob] = {}
        self._in_flight: dict[str, str] = {}  # fingerprint -> queued/running job id
        self._finished: deque[str] = deque()  # settled job ids, oldest first
        # Pruned-but-settled jobs stay resolvable: job id -> (fingerprint,
        # name_first, name_second, final status).  Bounded like the job table.
        self._pruned: dict[str, tuple[str, str, str, str]] = {}
        self._pruned_order: deque[str] = deque()
        self._max_pruned = max(1024, 8 * max_finished_jobs)
        self._listeners: dict[str, list[Callable[[], None]]] = {}
        self._active = 0  # queued + running jobs
        self._next_id = 0
        self._started_at = time.time()
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.failed = 0
        self.rejected = 0
        # Per-job retry budget for checker-level crashes: a job whose
        # portfolio run *raises* (not one that merely concludes
        # NO_INFORMATION) is re-run up to this many times with jittered
        # backoff before being settled as failed.
        self.job_retries = job_retries
        self.job_retries_performed = 0
        self._draining = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_metrics()
        # The manager observes per-checker latency histograms and cache-hit
        # counters into the same registry.
        self.manager.metrics = self.metrics

    def _register_metrics(self) -> None:
        registry = self.metrics
        self._m_submitted = registry.counter(
            "repro_service_submissions_total",
            "Circuit-pair submissions accepted by the job queue.",
        )
        self._m_coalesced = registry.counter(
            "repro_service_coalesced_total",
            "Submissions answered with an existing in-flight job id.",
        )
        self._m_rejected = registry.counter(
            "repro_service_rejected_total",
            "Submissions rejected before queueing.",
            labelnames=("reason",),
        )
        self._m_settled = registry.counter(
            "repro_service_jobs_settled_total",
            "Jobs that reached a terminal status.",
            labelnames=("status",),
        )
        self._m_job_seconds = registry.histogram(
            "repro_service_job_seconds",
            "Submission-to-settlement latency of verification jobs.",
            labelnames=("status",),
        )
        depth = registry.gauge(
            "repro_service_queue_depth",
            "Jobs currently queued or running.",
        )
        depth.set_function(self.queue_depth)
        cache_events = registry.gauge(
            "repro_verdict_cache_events",
            "Verdict-cache lifetime counters (harvested at scrape time).",
            labelnames=("event",),
        )
        cache_entries = registry.gauge(
            "repro_verdict_cache_entries",
            "Entries currently held by the verdict cache.",
        )
        cache_hit_ratio = registry.gauge(
            "repro_verdict_cache_hit_ratio",
            "Fraction of verdict-cache lookups that hit.",
        )

        def _collect_cache() -> None:
            cache = self.manager.verdict_cache
            if cache is None:
                return
            stats = cache.statistics()
            for event in ("hits", "misses", "persistent_hits", "stores", "evictions"):
                cache_events.set(float(stats[event]), event=event)
            cache_entries.set(float(stats["entries"]))
            cache_hit_ratio.set(float(stats["hit_ratio"]))

        registry.add_collector(_collect_cache)

        # Pre-create the canonicalization and rewrite instruments (idempotent
        # with the manager's and checker's own constructors) so both series
        # appear on ``GET /metrics`` from the very first scrape, and so
        # ``stats()`` can read them back without existence checks.
        self._m_runs = registry.counter(
            "repro_manager_runs_total",
            "Pair checks by outcome (cache hit vs. executed portfolio run).",
            labelnames=("outcome",),
        )
        self._m_canonical = registry.counter(
            "repro_canonical_fingerprints_total",
            "Canonical (translation-level-invariant) fingerprint computations.",
            labelnames=("status",),
        )
        self._m_rewrite_reductions = registry.counter(
            "repro_rewrite_reductions_total",
            "Rewrite-checker reduction outcomes (proved identity vs. residual).",
            labelnames=("checker", "outcome"),
        )
        self._m_rewrite_events = registry.counter(
            "repro_rewrite_events_total",
            "Peephole rewrite-checker events accumulated across runs.",
            labelnames=("checker", "event"),
        )

        # --- resilience instruments (PR 8) -----------------------------
        self._m_job_retries = registry.counter(
            "repro_service_job_retries_total",
            "Job executions retried after a checker-level crash.",
        )

        # --- observability instruments (PR 10) -------------------------
        from repro import __version__

        build_info = registry.gauge(
            "repro_build_info",
            "Build information; the value is always 1, the version rides "
            "in the label.",
            labelnames=("version",),
        )
        build_info.set(1.0, version=__version__)
        self._m_trace_spans = registry.counter(
            "repro_trace_spans_total",
            "Trace spans finished by traced job executions.",
        )
        draining = registry.gauge(
            "repro_service_draining",
            "1 while the service is draining (rejecting new submissions).",
        )
        draining.set_function(lambda: 1.0 if self._draining else 0.0)
        breaker_state = registry.gauge(
            "repro_breaker_state",
            "Per-checker circuit-breaker state (0=closed, 1=half-open, 2=open).",
            labelnames=("checker",),
        )
        breaker_events = registry.gauge(
            "repro_breaker_events",
            "Per-checker circuit-breaker lifetime counters "
            "(harvested at scrape time).",
            labelnames=("checker", "event"),
        )
        journal_events = registry.gauge(
            "repro_journal_events",
            "Crash-safe verdict-journal counters (recovery, appends, "
            "compactions, errors).",
            labelnames=("event",),
        )
        batch_events = registry.gauge(
            "repro_batch_resilience_events",
            "Process-pool batch resilience counters (pool rebuilds, unit "
            "retries/bisections, abandoned units).",
            labelnames=("event",),
        )
        # Pre-touch one series per family so every resilience family renders
        # on the very first scrape (matching the canonicalization/rewrite
        # behaviour the dashboards rely on).
        journal_events.set(0.0, event="write_errors")

        def _collect_resilience() -> None:
            breakers = self.manager.breakers
            if breakers is not None:
                # Materialize a breaker per configured checker so the state
                # gauges render (closed) from the very first scrape.
                for name in self.manager.portfolio:
                    breakers.breaker(name)
                for name, snap in breakers.snapshot().items():
                    breaker_state.set(
                        float(STATE_VALUES[snap["state"]]), checker=name
                    )
                    for event in (
                        "failures",
                        "successes",
                        "opens",
                        "closes",
                        "probes",
                        "rejections",
                    ):
                        breaker_events.set(
                            float(snap[event]), checker=name, event=event
                        )
            cache = self.manager.verdict_cache
            if cache is not None:
                stats = cache.statistics()
                journal_events.set(
                    float(stats["journal_errors"]), event="write_errors"
                )
                journal = stats.get("journal")
                if journal is not None:
                    for event in (
                        "recovered",
                        "dropped",
                        "legacy",
                        "truncated_bytes",
                        "appends",
                        "compactions",
                    ):
                        journal_events.set(float(journal[event]), event=event)
            for event, value in self.manager.batch_statistics().items():
                batch_events.set(float(value), event=event)

        registry.add_collector(_collect_resilience)

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def submit_qasm(
        self, first_qasm: str, second_qasm: str, *, traceparent: str | None = None
    ) -> dict:
        """Parse and queue a pair given as OpenQASM 2 text.

        Returns the ``POST /jobs`` payload.  A malformed circuit raises
        :class:`ServiceError` with status 400 — submission errors belong to
        the submitter, not to the job queue.
        """
        try:
            first = circuit_from_qasm(first_qasm)
            second = circuit_from_qasm(second_qasm)
        except ReproError as error:
            raise ServiceError(f"invalid circuit payload: {error}", status=400) from error
        return self.submit(first, second, traceparent=traceparent)

    def submit(self, first, second, *, traceparent: str | None = None) -> dict:
        """Queue one circuit pair; identical in-flight submissions coalesce.

        Raises :class:`ServiceError` 429 (with ``retry_after``) when a
        configured ``queue_limit`` is reached — coalesced submissions are
        exempt, they consume no queue slot — and 503 (with ``Retry-After``)
        while the service is draining for shutdown.
        """
        # Submit-site fault injection (no-op without a plan): "reject"
        # simulates a 429/503 storm, "sleep" a black-holed submission.
        self.manager.fault_injector.fire("submit")
        fingerprint = pair_fingerprint(first, second, self.configuration)
        with self._lock:
            self.submitted += 1
            self._m_submitted.inc()
            existing_id = (
                self._in_flight.get(fingerprint) if self._dedup_enabled else None
            )
            if existing_id is not None:
                self.coalesced += 1
                self._m_coalesced.inc()
                return {
                    "job_id": existing_id,
                    "fingerprint": fingerprint,
                    "coalesced": True,
                }
            if self._draining:
                self.rejected += 1
                self._m_rejected.inc(reason="draining")
                raise ServiceError(
                    "service is draining for shutdown; resubmit elsewhere or "
                    "retry later",
                    status=503,
                    retry_after=max(
                        1.0,
                        math.ceil(
                            self._active / max(1, self.configuration.max_workers)
                        ),
                    ),
                )
            if self.queue_limit is not None and self._active >= self.queue_limit:
                self.rejected += 1
                self._m_rejected.inc(reason="backpressure")
                # Rough drain estimate: a full queue clears one worker-batch
                # at a time; clients should back off at least one second.
                retry_after = max(
                    1.0,
                    math.ceil(self._active / max(1, self.configuration.max_workers)),
                )
                raise ServiceError(
                    f"job queue is full ({self._active} unsettled jobs, "
                    f"limit {self.queue_limit}); retry later",
                    status=429,
                    retry_after=retry_after,
                )
            self._next_id += 1
            # A malformed traceparent is ignored (the job gets a fresh
            # trace) rather than rejected: tracing must never fail a submit.
            if traceparent is not None and trace.parse_traceparent(traceparent) is None:
                traceparent = None
            job = VerificationJob(
                job_id=f"job-{self._next_id:06d}",
                fingerprint=fingerprint,
                name_first=getattr(first, "name", "first"),
                name_second=getattr(second, "name", "second"),
                traceparent=traceparent,
            )
            self._jobs[job.job_id] = job
            self._active += 1
            if self._dedup_enabled:
                self._in_flight[fingerprint] = job.job_id
        try:
            self._executor.submit(self._execute, job, first, second)
        except RuntimeError as error:
            # The pool is shutting down: un-register the job, or its
            # fingerprint would coalesce later submissions onto a forever-
            # "queued" husk that no worker will ever pick up.
            with self._lock:
                self._jobs.pop(job.job_id, None)
                self._active -= 1
                if self._in_flight.get(job.fingerprint) == job.job_id:
                    del self._in_flight[job.fingerprint]
            raise ServiceError(
                f"service is shutting down: {error}", status=503
            ) from error
        return {"job_id": job.job_id, "fingerprint": fingerprint, "coalesced": False}

    def _execute(self, job: VerificationJob, first, second) -> None:
        with self._lock:
            job.status = "running"
            job.started_at = time.time()
        result_payload: dict | None = None
        error_text: str | None = None
        # Per-job retry budget: a checker-level crash (the portfolio run
        # *raising*, not concluding) is usually transient — a dying worker,
        # an injected fault, a resource spike — and worth a bounded, backed-
        # off re-run before the job settles as failed.
        retries_left = self.job_retries
        policy = RetryPolicy(
            attempts=self.job_retries, base=0.02, cap=0.5, rng=random.Random(0)
        )
        # Every job execution is traced: a client-supplied traceparent makes
        # the job's spans part of the client's distributed trace, otherwise
        # the job roots a fresh trace.  Either way the finished spans are
        # kept on the job for ``GET /jobs/<id>/trace``.
        tracer = (
            trace.Tracer.from_traceparent(job.traceparent)
            if job.traceparent is not None
            else trace.Tracer()
        )
        with trace.activate(tracer), trace.span(
            "job.execute", job_id=job.job_id, fingerprint=job.fingerprint
        ) as job_span:
            while True:
                try:
                    # The submission path already fingerprinted the pair for
                    # dedup; hand the digest to the manager so a cache hit
                    # does not pay for a second canonicalization pass.
                    result = self.manager.run(
                        first, second, fingerprint=job.fingerprint
                    )
                    result_payload = {
                        "first": job.name_first,
                        "second": job.name_second,
                        **result.to_json(),
                    }
                    error_text = None
                    break
                except Exception as error:  # noqa: BLE001 - isolate per-job failures
                    error_text = f"{type(error).__name__}: {error}"
                    trace.add_event("job.attempt_failed", error=error_text)
                    if retries_left <= 0:
                        break
                    retries_left -= 1
                    with self._lock:
                        self.job_retries_performed += 1
                    self._m_job_retries.inc()
                    _log.info(
                        "job retried after checker-level crash",
                        **fields(
                            job_id=job.job_id,
                            error=error_text,
                            retries_left=retries_left,
                        ),
                    )
                    policy.backoff()
            job_span.set_attr(
                "status", "done" if result_payload is not None else "failed"
            )
            job_span.set_attr("retries", self.job_retries - retries_left)
        # Settle the job: every field a reader can observe changes under the
        # lock, in one critical section — a concurrent ``job_status`` sees
        # either the running job or the fully settled one, never a torn
        # status/result/timestamp combination.
        spans = tracer.export()
        self._m_trace_spans.inc(len(spans))
        with self._lock:
            if result_payload is not None:
                job.result = result_payload
                job.status = "done"
                self.executed += 1
            else:
                job.error = error_text
                job.status = "failed"
                self.failed += 1
            job.trace_id = tracer.trace_id
            job.trace = spans
            job.finished_at = time.time()
            self._active -= 1
            self._m_settled.inc(status=job.status)
            self._m_job_seconds.observe(
                job.finished_at - job.submitted_at, status=job.status
            )
            # Drop the dedup index entry only if it still points at this
            # job: later identical submissions must queue a fresh run once
            # this one has settled (the verdict cache serves them fast).
            if self._in_flight.get(job.fingerprint) == job.job_id:
                del self._in_flight[job.fingerprint]
            # Retention: keep only the newest settled jobs around for
            # polling so the table cannot grow without bound.  Pruned jobs
            # leave a resolvable stub behind (see job_result).
            self._finished.append(job.job_id)
            while len(self._finished) > self.max_finished_jobs:
                pruned_id = self._finished.popleft()
                pruned = self._jobs.pop(pruned_id, None)
                if pruned is not None:
                    self._pruned[pruned_id] = (
                        pruned.fingerprint,
                        pruned.name_first,
                        pruned.name_second,
                        pruned.status,
                    )
                    self._pruned_order.append(pruned_id)
            while len(self._pruned_order) > self._max_pruned:
                self._pruned.pop(self._pruned_order.popleft(), None)
            listeners = self._listeners.pop(job.job_id, [])
        # Wake long-poll waiters outside the lock: listener callbacks may
        # take their own locks (asyncio loop internals) and must not be able
        # to deadlock against job submission.
        job.settled.set()
        for callback in listeners:
            try:
                callback()
            except Exception:  # noqa: BLE001 - a dead waiter must not poison others
                continue

    # ------------------------------------------------------------------
    # completion waiting
    # ------------------------------------------------------------------

    def wait_settled(self, job_id: str, timeout: float) -> bool:
        """Block until ``job_id`` settles or ``timeout`` seconds pass.

        Returns True once the job is settled (or unknown/pruned — the
        follow-up ``job_result`` call resolves those to their proper
        errors); False on timeout.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status in ("done", "failed"):
                return True
            event = job.settled
        return event.wait(timeout)

    def add_settled_listener(self, job_id: str, callback: Callable[[], None]) -> bool:
        """Invoke ``callback`` (once, from the worker thread) when the job settles.

        Returns False — without registering — when the job is already
        settled, pruned or unknown, so a caller can fall through to
        ``job_result`` immediately.  The asyncio front end registers a
        ``loop.call_soon_threadsafe`` trampoline here.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status in ("done", "failed"):
                return False
            self._listeners.setdefault(job_id, []).append(callback)
            return True

    # ------------------------------------------------------------------
    # job lookup
    # ------------------------------------------------------------------

    def job_status(self, job_id: str) -> dict:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.status_payload()
            pruned = self._pruned.get(job_id)
        if pruned is not None:
            raise ServiceError(
                f"job {job_id!r} settled as {pruned[3]!r} and was pruned from the "
                "job table; fetch its result or resubmit the pair",
                status=410,
            )
        raise ServiceError(f"unknown job {job_id!r}", status=404)

    def job_result(self, job_id: str) -> dict:
        """The verdict payload of a finished job.

        Raises :class:`ServiceError` 409 while the job is still queued or
        running (poll or long-poll again) and 500 for a failed job.  A job
        pruned by the ``max_finished_jobs`` retention policy is served from
        the verdict cache when its verdict is still there, and otherwise
        answered with 410 — distinguishable from the 404 of a job id this
        server never issued.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                if job.status in ("queued", "running"):
                    raise ServiceError(
                        f"job {job_id!r} is still {job.status}; poll again", status=409
                    )
                if job.status == "failed":
                    raise ServiceError(
                        f"job {job_id!r} failed: {job.error}", status=500
                    )
                assert job.result is not None
                return dict(job.result)
            pruned = self._pruned.get(job_id)
        if pruned is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        fingerprint, name_first, name_second, status = pruned
        if status == "done":
            cache = self.manager.verdict_cache
            cached = cache.get(fingerprint) if cache is not None else None
            if cached is not None:
                return {
                    "first": name_first,
                    "second": name_second,
                    **cached.to_json(),
                    "served_from": "verdict_cache",
                }
        raise ServiceError(
            f"job {job_id!r} settled as {status!r} but was pruned and its verdict "
            "is no longer cached; resubmit the pair",
            status=410,
        )

    def job_trace(self, job_id: str) -> dict:
        """The span tree of a settled job (``GET /jobs/<id>/trace``).

        Raises 409 while the job is still queued or running, 410 for a
        pruned job (traces are not retained past the job table) and 404
        for a job id this server never issued.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                if job.status in ("queued", "running"):
                    raise ServiceError(
                        f"job {job_id!r} is still {job.status}; its trace is "
                        "available once it settles",
                        status=409,
                    )
                return {
                    "job_id": job.job_id,
                    "trace_id": job.trace_id,
                    "traceparent": job.traceparent,
                    "spans": len(job.trace),
                    "tree": trace.span_tree(job.trace),
                }
            pruned = self._pruned.get(job_id)
        if pruned is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        raise ServiceError(
            f"job {job_id!r} was pruned from the job table; its trace is no "
            "longer retained",
            status=410,
        )

    # ------------------------------------------------------------------
    # reporting and shutdown
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        """Number of jobs currently queued or running."""
        with self._lock:
            return self._active

    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> dict:
        """Machine-readable liveness/readiness payload for ``GET /healthz``.

        Always ``ok: True`` (the process is alive and answering — fleet
        supervisors must not kill a degraded-but-serving instance), but
        ``status`` distinguishes ``healthy`` from ``degraded`` and
        ``reasons`` lists exactly what degraded it: open circuit breakers,
        a verdict journal that fell back to memory-only, a saturated queue,
        or an in-progress drain.
        """
        from repro import __version__

        reasons: list[str] = []
        breakers = self.manager.breakers
        if breakers is not None:
            for name in breakers.quarantined():
                reasons.append(f"circuit breaker open: checker {name!r} quarantined")
        cache = self.manager.verdict_cache
        if cache is not None:
            stats = cache.statistics()
            if stats["journal_errors"]:
                reasons.append(
                    "verdict journal degraded to memory-only after "
                    f"{stats['journal_errors']} write error(s)"
                )
        with self._lock:
            active = self._active
            draining = self._draining
        if self.queue_limit is not None and active >= self.queue_limit:
            reasons.append(
                f"job queue saturated ({active}/{self.queue_limit} unsettled jobs)"
            )
        if draining:
            reasons.append("draining: new submissions are rejected with 503")
        return {
            "ok": True,
            "version": __version__,
            "status": "degraded" if reasons else "healthy",
            "reasons": reasons,
            "draining": draining,
        }

    # ------------------------------------------------------------------
    # graceful drain
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop accepting new submissions (503 + Retry-After); keep serving."""
        with self._lock:
            self._draining = True

    def drain(self, timeout: float = 30.0) -> bool:
        """Gracefully wind down: reject new work, finish in-flight jobs.

        Blocks until every queued/running job settles or ``timeout`` seconds
        pass, then flushes the verdict journal either way.  Status and
        result endpoints keep answering throughout (and after), so clients
        can still collect verdicts for jobs that finished during the drain.
        Returns True when the queue fully drained in time.
        """
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, timeout)
        drained = False
        while True:
            with self._lock:
                if self._active == 0:
                    drained = True
                    break
            if time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        cache = self.manager.verdict_cache
        if cache is not None:
            cache.flush()
        return drained

    def stats(self) -> dict:
        from repro import __version__

        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            cache = self.manager.verdict_cache
            cache_stats = cache.statistics() if cache is not None else None
            return {
                "version": __version__,
                "uptime": time.time() - self._started_at,
                "max_workers": self.configuration.max_workers,
                "submitted": self.submitted,
                "executed": self.executed,
                "coalesced": self.coalesced,
                "failed": self.failed,
                "rejected": self.rejected,
                "queue_depth": self._active,
                "queue_limit": self.queue_limit,
                "in_flight": len(self._in_flight),
                "pruned": len(self._pruned),
                "jobs": by_status,
                "cache": cache_stats,
                "canonicalization": {
                    "enabled": self.configuration.canonicalize,
                    "cache_hits": int(
                        self._m_runs.value(outcome="canonical_cache_hit")
                    ),
                    "fingerprints_computed": int(
                        self._m_canonical.value(status="computed")
                    ),
                    "fingerprints_unavailable": int(
                        self._m_canonical.value(status="unavailable")
                    ),
                },
                "rewrite": {
                    "proved": int(
                        self._m_rewrite_reductions.value(
                            checker="rewrite", outcome="proved"
                        )
                    ),
                    "residual": int(
                        self._m_rewrite_reductions.value(
                            checker="rewrite", outcome="residual"
                        )
                    ),
                    "events": {
                        key: int(
                            self._m_rewrite_events.value(checker="rewrite", event=key)
                        )
                        for key in _REWRITE_COUNTER_KEYS
                    },
                },
                "resilience": {
                    "draining": self._draining,
                    "job_retries": self.job_retries,
                    "job_retries_performed": self.job_retries_performed,
                    "breakers": (
                        self.manager.breakers.snapshot()
                        if self.manager.breakers is not None
                        else None
                    ),
                    "batch": self.manager.batch_statistics(),
                    "journal": (
                        cache_stats.get("journal") if cache_stats is not None else None
                    ),
                },
                "telemetry": (
                    self.manager.telemetry.statistics()
                    if self.manager.telemetry is not None
                    else None
                ),
            }

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


def parse_wait_seconds(query: dict[str, list[str]]) -> float:
    """The ``?wait=`` long-poll budget of a result request, validated and capped."""
    raw = query.get("wait")
    if not raw:
        return 0.0
    try:
        wait = float(raw[0])
    except ValueError:
        raise ServiceError(f"invalid wait value {raw[0]!r}", status=400) from None
    if wait < 0 or wait != wait:  # negative or NaN
        raise ServiceError(f"invalid wait value {raw[0]!r}", status=400)
    return min(wait, MAX_LONG_POLL_SECONDS)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP routing onto the owning :class:`VerificationService`."""

    # Socket read timeout (socketserver applies it in setup()): a client that
    # claims a Content-Length and then stalls mid-body gets its connection
    # dropped instead of pinning a handler thread forever.
    timeout = 30.0

    # Replace the default per-request stderr logging with structured access
    # logs — silent unless ``configure_logging`` installed a handler.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def log_request(self, code: object = "-", size: object = "-") -> None:
        _log.info(
            "http access",
            **fields(
                method=getattr(self, "command", None),
                path=getattr(self, "path", None),
                status=getattr(code, "value", code),
                client=self.client_address[0] if self.client_address else None,
            ),
        )

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _safe_send(self, status: int, payload: dict, headers: dict | None = None) -> None:
        # A client that disconnects before (or while) the response is written
        # surfaces as BrokenPipeError/ConnectionResetError here; the request
        # is already fully processed, so the only correct reaction is to drop
        # the connection quietly instead of killing the handler thread with a
        # traceback.
        try:
            self._send(status, payload, headers)
        except OSError:
            self.close_connection = True

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            self.close_connection = True

    def _handle(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceError as error:
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
            self._safe_send(error.status, {"error": str(error)}, headers)
        except TimeoutError:
            # The socket timeout fired mid-request (a client stalling inside
            # its declared body): answer 408 if the socket still accepts it
            # and drop the connection so the thread is freed either way.
            self.close_connection = True
            self._safe_send(408, {"error": "timed out reading the request"})
        except Exception as error:  # noqa: BLE001 - a handler bug must not kill the thread
            self._safe_send(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._safe_send(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        if parts == ["metrics"]:
            self._send_text(
                200, self.service.metrics.render(), "text/plain; version=0.0.4"
            )
            return
        query = parse_qs(split.query)

        def handler():
            if parts == ["stats"]:
                return 200, self.service.stats()
            if parts == ["healthz"]:
                return 200, self.service.health()
            if len(parts) == 2 and parts[0] == "jobs":
                return 200, self.service.job_status(parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                wait = parse_wait_seconds(query)
                if wait > 0:
                    self.service.wait_settled(parts[1], wait)
                return 200, self.service.job_result(parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                return 200, self.service.job_trace(parts[1])
            raise ServiceError(f"unknown endpoint {self.path!r}", status=404)

        self._handle(handler)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        def handler():
            parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
            if parts != ["jobs"]:
                raise ServiceError(f"unknown endpoint {self.path!r}", status=404)
            # The Content-Length header is client-controlled: reject garbage
            # and negative values (rfile.read(-1) would block until EOF) as
            # 400, and oversized bodies before reading them.
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                raise ServiceError("invalid Content-Length header", status=400)
            if length < 0:
                raise ServiceError("invalid Content-Length header", status=400)
            if length > _MAX_BODY_BYTES:
                raise ServiceError(
                    f"request body exceeds {_MAX_BODY_BYTES} bytes", status=413
                )
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except ValueError as error:
                raise ServiceError(f"request body is not JSON: {error}", status=400)
            first = payload.get("first")
            second = payload.get("second")
            if not isinstance(first, str) or not isinstance(second, str):
                raise ServiceError(
                    "body must be {'first': <qasm>, 'second': <qasm>}", status=400
                )
            return 202, self.service.submit_qasm(
                first, second, traceparent=self.headers.get("Traceparent")
            )

        self._handle(handler)


class VerificationServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` owning a :class:`VerificationService`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    handy for tests and CI.  :meth:`start_background` serves on a daemon
    thread so in-process users (the example, the test suite) can drive a
    real client against it.  The service knobs (``cache``,
    ``max_finished_jobs``, ``queue_limit``) are forwarded verbatim to
    :class:`VerificationService`.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        configuration: Configuration | None = None,
        *,
        cache: bool = True,
        max_finished_jobs: int = 1024,
        queue_limit: int | None = None,
    ):
        super().__init__((host, port), _ServiceRequestHandler)
        self._serving = threading.Event()
        self.service = VerificationService(
            configuration,
            cache=cache,
            max_finished_jobs=max_finished_jobs,
            queue_limit=queue_limit,
        )

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        super().serve_forever(poll_interval)

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="verification-server", daemon=True
        )
        thread.start()
        self._serving.wait(timeout=5.0)
        return thread

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting new jobs, finish in-flight ones (up to ``timeout``).

        The HTTP listener keeps answering throughout — new submissions get
        503 + ``Retry-After``, status/result/metrics stay live — so clients
        can collect verdicts for work already accepted.
        """
        return self.service.drain(timeout)

    def close(self, drain_timeout: float = 0.0) -> None:
        """Shut down; with ``drain_timeout > 0`` drain gracefully first."""
        if drain_timeout > 0:
            self.service.drain(drain_timeout)
        # shutdown() blocks on an event only serve_forever sets; skip it for
        # a server that was constructed but never served.
        if self._serving.is_set():
            self.shutdown()
        self.server_close()
        self.service.shutdown(wait=False)
