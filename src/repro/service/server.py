"""A stdlib-only HTTP job-queue server for equivalence verification.

``repro-qcec serve --port N`` turns the portfolio manager into a long-running
service: clients POST QASM circuit pairs, the server queues them onto a
worker pool (the same executor machinery ``verify_batch`` uses), and clients
poll for the verdict.  The design follows the frontend/backend split of
modern automata tools (Kofola et al.): the HTTP layer only parses and
routes; every decision — scheduling, caching, early termination — stays in
:class:`~repro.core.manager.EquivalenceCheckingManager`.

Endpoints (all JSON):

* ``POST /jobs``           — body ``{"first": <qasm>, "second": <qasm>}``;
  returns ``202 {"job_id", "fingerprint", "coalesced"}``.  Submissions are
  **deduplicated by fingerprint**: while a job for the same canonical pair
  is queued or running, an identical submission returns the *existing*
  job id (``"coalesced": true``) instead of queueing a second run.
* ``GET /jobs/<id>``        — job status (``queued|running|done|failed``).
* ``GET /jobs/<id>/result`` — the verdict payload (``409`` while pending).
* ``GET /stats``            — job counters, dedup counter, verdict-cache and
  service statistics.
* ``GET /healthz``          — liveness probe with the package version.

:class:`VerificationService` is the transport-free core (job queue, worker
pool, dedup index) and is usable in-process; :class:`VerificationServer`
wraps it in a ``ThreadingHTTPServer`` for the CLI, tests and examples.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import ThreadPoolExecutor

from repro.circuit.qasm import circuit_from_qasm
from repro.core.configuration import Configuration
from repro.core.manager import EquivalenceCheckingManager
from repro.exceptions import ReproError, ServiceError
from repro.service.fingerprint import fingerprints_sound_for, pair_fingerprint

__all__ = ["VerificationJob", "VerificationServer", "VerificationService"]

#: Upper bound on a ``POST /jobs`` body.  Generous for QASM circuit pairs
#: (a 10k-gate circuit exports to well under 1 MB) while keeping a
#: misbehaving client from making a handler thread buffer arbitrary data.
_MAX_BODY_BYTES = 32 * 1024 * 1024


@dataclass
class VerificationJob:
    """One queued verification: identity, lifecycle timestamps, outcome."""

    job_id: str
    fingerprint: str
    name_first: str
    name_second: str
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None

    def status_payload(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "first": self.name_first,
            "second": self.name_second,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class VerificationService:
    """Transport-free job queue: submit, execute on a pool, poll, dedupe.

    One :class:`~repro.core.manager.EquivalenceCheckingManager` (and hence
    one verdict cache) is shared across the worker pool; worker concurrency
    is ``configuration.max_workers``, exactly like ``verify_batch``.  The
    service enables the verdict cache by default — a server that forgets
    repeat traffic between requests would miss the entire point; pass
    ``cache=False`` for a service whose every submission must run fresh
    (e.g. unseeded simulative traffic that should redraw stimuli, or
    latency benchmarking).

    The job table keeps the most recent ``max_finished_jobs`` settled jobs
    for polling; older ones are pruned (their status/result become 404),
    which bounds server memory regardless of uptime.  Queued and running
    jobs are never pruned, and pruning never touches the verdict cache —
    a re-submission of a pruned pair is still a cache hit.
    """

    def __init__(
        self,
        configuration: Configuration | None = None,
        *,
        cache: bool = True,
        max_finished_jobs: int = 1024,
    ):
        configuration = configuration or Configuration()
        if cache and not configuration.cache_enabled:
            configuration = configuration.updated(verdict_cache=True)
        if max_finished_jobs < 1:
            raise ServiceError("max_finished_jobs must be at least 1", status=500)
        self.configuration = configuration
        # Dedup by fingerprint is only sound when the tolerance cannot
        # out-resolve the canonical form (same rule the manager applies to
        # its cache); otherwise every submission gets its own job.
        self._dedup_enabled = fingerprints_sound_for(configuration)
        self.max_finished_jobs = max_finished_jobs
        self.manager = EquivalenceCheckingManager(configuration)
        self._executor = ThreadPoolExecutor(
            max_workers=configuration.max_workers, thread_name_prefix="verify-service"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, VerificationJob] = {}
        self._in_flight: dict[str, str] = {}  # fingerprint -> queued/running job id
        self._finished: deque[str] = deque()  # settled job ids, oldest first
        self._next_id = 0
        self._started_at = time.time()
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.failed = 0

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def submit_qasm(self, first_qasm: str, second_qasm: str) -> dict:
        """Parse and queue a pair given as OpenQASM 2 text.

        Returns the ``POST /jobs`` payload.  A malformed circuit raises
        :class:`ServiceError` with status 400 — submission errors belong to
        the submitter, not to the job queue.
        """
        try:
            first = circuit_from_qasm(first_qasm)
            second = circuit_from_qasm(second_qasm)
        except ReproError as error:
            raise ServiceError(f"invalid circuit payload: {error}", status=400) from error
        return self.submit(first, second)

    def submit(self, first, second) -> dict:
        """Queue one circuit pair; identical in-flight submissions coalesce."""
        fingerprint = pair_fingerprint(first, second, self.configuration)
        with self._lock:
            self.submitted += 1
            existing_id = (
                self._in_flight.get(fingerprint) if self._dedup_enabled else None
            )
            if existing_id is not None:
                self.coalesced += 1
                return {
                    "job_id": existing_id,
                    "fingerprint": fingerprint,
                    "coalesced": True,
                }
            self._next_id += 1
            job = VerificationJob(
                job_id=f"job-{self._next_id:06d}",
                fingerprint=fingerprint,
                name_first=getattr(first, "name", "first"),
                name_second=getattr(second, "name", "second"),
            )
            self._jobs[job.job_id] = job
            if self._dedup_enabled:
                self._in_flight[fingerprint] = job.job_id
        try:
            self._executor.submit(self._execute, job, first, second)
        except RuntimeError as error:
            # The pool is shutting down: un-register the job, or its
            # fingerprint would coalesce later submissions onto a forever-
            # "queued" husk that no worker will ever pick up.
            with self._lock:
                self._jobs.pop(job.job_id, None)
                if self._in_flight.get(job.fingerprint) == job.job_id:
                    del self._in_flight[job.fingerprint]
            raise ServiceError(
                f"service is shutting down: {error}", status=503
            ) from error
        return {"job_id": job.job_id, "fingerprint": fingerprint, "coalesced": False}

    def _execute(self, job: VerificationJob, first, second) -> None:
        job.status = "running"
        job.started_at = time.time()
        try:
            # The submission path already fingerprinted the pair for dedup;
            # hand the digest to the manager so a cache hit does not pay for
            # a second canonicalization pass.
            result = self.manager.run(first, second, fingerprint=job.fingerprint)
            job.result = {
                "first": job.name_first,
                "second": job.name_second,
                **result.to_json(),
            }
            job.status = "done"
        except Exception as error:  # noqa: BLE001 - isolate per-job failures
            job.error = f"{type(error).__name__}: {error}"
            job.status = "failed"
        finally:
            job.finished_at = time.time()
            with self._lock:
                if job.status == "done":
                    self.executed += 1
                else:
                    self.failed += 1
                # Drop the dedup index entry only if it still points at this
                # job: later identical submissions must queue a fresh run once
                # this one has settled (the verdict cache serves them fast).
                if self._in_flight.get(job.fingerprint) == job.job_id:
                    del self._in_flight[job.fingerprint]
                # Retention: keep only the newest settled jobs around for
                # polling so the table cannot grow without bound.
                self._finished.append(job.job_id)
                while len(self._finished) > self.max_finished_jobs:
                    self._jobs.pop(self._finished.popleft(), None)

    def _job(self, job_id: str) -> VerificationJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def job_status(self, job_id: str) -> dict:
        return self._job(job_id).status_payload()

    def job_result(self, job_id: str) -> dict:
        """The verdict payload of a finished job.

        Raises :class:`ServiceError` 409 while the job is still queued or
        running (poll again) and 500 for a failed job.
        """
        job = self._job(job_id)
        if job.status in ("queued", "running"):
            raise ServiceError(
                f"job {job_id!r} is still {job.status}; poll again", status=409
            )
        if job.status == "failed":
            raise ServiceError(f"job {job_id!r} failed: {job.error}", status=500)
        assert job.result is not None
        return job.result

    # ------------------------------------------------------------------
    # reporting and shutdown
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        from repro import __version__

        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            cache = self.manager.verdict_cache
            return {
                "version": __version__,
                "uptime": time.time() - self._started_at,
                "max_workers": self.configuration.max_workers,
                "submitted": self.submitted,
                "executed": self.executed,
                "coalesced": self.coalesced,
                "failed": self.failed,
                "in_flight": len(self._in_flight),
                "jobs": by_status,
                "cache": cache.statistics() if cache is not None else None,
            }

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP routing onto the owning :class:`VerificationService`."""

    # Socket read timeout (socketserver applies it in setup()): a client that
    # claims a Content-Length and then stalls mid-body gets its connection
    # dropped instead of pinning a handler thread forever.
    timeout = 30.0

    # Silence the default per-request stderr logging; a service wrapper that
    # wants access logs can override this attribute on the server class.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceError as error:
            self._send(error.status, {"error": str(error)})
        except TimeoutError:
            # The socket timeout fired mid-request (a client stalling inside
            # its declared body): answer 408 if the socket still accepts it
            # and drop the connection so the thread is freed either way.
            self.close_connection = True
            try:
                self._send(408, {"error": "timed out reading the request"})
            except OSError:
                pass
        except Exception as error:  # noqa: BLE001 - a handler bug must not kill the thread
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._send(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        def handler():
            parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
            if parts == ["stats"]:
                return 200, self.service.stats()
            if parts == ["healthz"]:
                from repro import __version__

                return 200, {"ok": True, "version": __version__}
            if len(parts) == 2 and parts[0] == "jobs":
                return 200, self.service.job_status(parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                return 200, self.service.job_result(parts[1])
            raise ServiceError(f"unknown endpoint {self.path!r}", status=404)

        self._handle(handler)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        def handler():
            parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
            if parts != ["jobs"]:
                raise ServiceError(f"unknown endpoint {self.path!r}", status=404)
            # The Content-Length header is client-controlled: reject garbage
            # and negative values (rfile.read(-1) would block until EOF) as
            # 400, and oversized bodies before reading them.
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                raise ServiceError("invalid Content-Length header", status=400)
            if length < 0:
                raise ServiceError("invalid Content-Length header", status=400)
            if length > _MAX_BODY_BYTES:
                raise ServiceError(
                    f"request body exceeds {_MAX_BODY_BYTES} bytes", status=413
                )
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except ValueError as error:
                raise ServiceError(f"request body is not JSON: {error}", status=400)
            first = payload.get("first")
            second = payload.get("second")
            if not isinstance(first, str) or not isinstance(second, str):
                raise ServiceError(
                    "body must be {'first': <qasm>, 'second': <qasm>}", status=400
                )
            return 202, self.service.submit_qasm(first, second)

        self._handle(handler)


class VerificationServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` owning a :class:`VerificationService`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    handy for tests and CI.  :meth:`start_background` serves on a daemon
    thread so in-process users (the example, the test suite) can drive a
    real client against it.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        configuration: Configuration | None = None,
    ):
        super().__init__((host, port), _ServiceRequestHandler)
        self.service = VerificationService(configuration)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="verification-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.shutdown(wait=False)
