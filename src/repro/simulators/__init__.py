"""Classical simulation backends.

* :class:`Statevector` / :class:`StatevectorSimulator` — dense numpy reference.
* :class:`DDState` / :class:`DDSimulator` — decision-diagram backend.
* :class:`DensityMatrixSimulator` — ensemble density-matrix baseline for
  dynamic circuits.
* :class:`StochasticSimulator` — shot-based trajectory baseline for dynamic
  circuits.
* :func:`circuit_unitary` — dense system-matrix construction (ground truth for
  small circuits).
"""

from repro.simulators.dd_simulator import DDSimulator, DDState
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.statevector import Statevector, StatevectorSimulator, apply_matrix_to_state
from repro.simulators.stochastic import StochasticSimulator
from repro.simulators.unitary import (
    circuit_unitary,
    embed_gate_matrix,
    matrices_equal_up_to_global_phase,
    process_fidelity,
)

__all__ = [
    "DDSimulator",
    "DDState",
    "DensityMatrixSimulator",
    "Statevector",
    "StatevectorSimulator",
    "StochasticSimulator",
    "apply_matrix_to_state",
    "circuit_unitary",
    "embed_gate_matrix",
    "matrices_equal_up_to_global_phase",
    "process_fidelity",
]
