"""Decision-diagram based simulation.

:class:`DDState` mirrors the interface of
:class:`~repro.simulators.statevector.Statevector` (apply instruction, measure
probability, collapse, reset branches, fidelity) but stores the state as a
vector decision diagram.  For the sparse, structured states of the paper's
benchmark algorithms this is exponentially more compact than a dense array,
which is what makes the extraction scheme (Section 5) and the simulative
equivalence check viable for large qubit counts.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.operations import Instruction
from repro.dd.circuits import apply_instruction_to_vector
from repro.dd.nodes import VEdge
from repro.dd.package import DDPackage
from repro.exceptions import SimulationError
from repro.utils.bits import int_to_bitstring

__all__ = ["DDSimulator", "DDState"]


class DDState:
    """A pure state stored as a vector decision diagram."""

    def __init__(self, package: DDPackage, edge: VEdge):
        self._package = package
        self._edge = edge

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int, package: DDPackage | None = None) -> "DDState":
        """Return |0...0> over ``num_qubits`` qubits."""
        package = package or DDPackage(num_qubits)
        return cls(package, package.zero_state())

    @classmethod
    def basis_state(
        cls, num_qubits: int, value: int, package: DDPackage | None = None
    ) -> "DDState":
        """Return the computational basis state |value> (little-endian integer)."""
        package = package or DDPackage(num_qubits)
        return cls(package, package.basis_state(value))

    @classmethod
    def from_bitstring(cls, bitstring: str, package: DDPackage | None = None) -> "DDState":
        """Return the basis state for a most-significant-first bitstring."""
        num_qubits = len(bitstring)
        value = int(bitstring, 2) if bitstring else 0
        return cls.basis_state(num_qubits, value, package)

    # -- basic properties -----------------------------------------------------

    @property
    def package(self) -> DDPackage:
        """The decision-diagram package this state lives in."""
        return self._package

    @property
    def edge(self) -> VEdge:
        """The root edge of the underlying vector DD."""
        return self._edge

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._package.num_qubits

    @property
    def num_nodes(self) -> int:
        """Number of DD nodes of the state (a compactness measure)."""
        return self._package.count_nodes(self._edge)

    def copy(self) -> "DDState":
        """Return a copy sharing the same package (DD edges are immutable)."""
        return DDState(self._package, self._edge)

    # -- evolution --------------------------------------------------------------

    def apply_instruction(self, instruction: Instruction) -> "DDState":
        """Apply a unitary, unconditioned gate instruction."""
        if instruction.is_barrier:
            return self
        if not instruction.is_gate or instruction.condition is not None:
            raise SimulationError(
                f"DDState.apply_instruction only handles unitary gates, got {instruction!r}"
            )
        return DDState(
            self._package, apply_instruction_to_vector(self._package, self._edge, instruction)
        )

    def apply_gate(self, gate, qubits: Sequence[int]) -> "DDState":
        """Apply a library gate to the given qubits."""
        from repro.dd.circuits import gate_to_dd

        gate_dd = gate_to_dd(self._package, gate, list(qubits))
        return DDState(self._package, self._package.multiply_matrix_vector(gate_dd, self._edge))

    # -- measurement -------------------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """Probability of measuring ``qubit`` in state |1>."""
        return self._package.probability_of_one(self._edge, qubit)

    def collapse(self, qubit: int, outcome: int, probability: float | None = None) -> "DDState":
        """Project onto ``qubit == outcome`` and renormalize."""
        return DDState(self._package, self._package.collapse(self._edge, qubit, outcome, probability))

    def reset_qubit_outcomes(self, qubit: int) -> list[tuple[float, "DDState"]]:
        """Decompose a reset of ``qubit`` into its pure branches."""
        return [
            (probability, DDState(self._package, edge))
            for probability, edge in self._package.apply_reset(self._edge, qubit)
        ]

    # -- read-out -----------------------------------------------------------------

    def to_statevector(self) -> np.ndarray:
        """Expand to a dense amplitude array (exponential; small ``n`` only)."""
        return self._package.vector_to_numpy(self._edge)

    def probabilities_dict(self, threshold: float = 1e-12) -> dict[str, float]:
        """Non-negligible basis-state probabilities keyed by bitstring.

        The DD is traversed path-by-path, so the cost is proportional to the
        number of non-zero amplitudes rather than ``2**n``.
        """
        results: dict[str, float] = {}
        num_qubits = self.num_qubits

        def walk(edge: VEdge, level: int, amplitude: complex, path_value: int) -> None:
            if edge.is_zero:
                return
            amplitude = amplitude * edge.weight
            if level < 0:
                probability = abs(amplitude) ** 2
                if probability > threshold:
                    key = int_to_bitstring(path_value, num_qubits)
                    results[key] = results.get(key, 0.0) + probability
                return
            walk(edge.node.edges[0], level - 1, amplitude, path_value)
            walk(edge.node.edges[1], level - 1, amplitude, path_value | (1 << level))

        walk(self._edge, num_qubits - 1, 1.0, 0)
        return results

    def inner_product(self, other: "DDState") -> complex:
        """Return ``<self|other>`` (both states must share the package)."""
        if other._package is not self._package:
            raise SimulationError("states from different DD packages cannot be combined")
        return self._package.inner_product(self._edge, other._edge)

    def fidelity(self, other: "DDState") -> float:
        """Return ``|<self|other>|**2``."""
        return abs(self.inner_product(other)) ** 2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DDState(num_qubits={self.num_qubits}, nodes={self.num_nodes})"


class DDSimulator:
    """Simulate unitary circuits on the decision-diagram backend."""

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: "DDState | int | str | None" = None,
        package: DDPackage | None = None,
    ) -> DDState:
        """Simulate ``circuit`` (ignoring trailing measurements) and return the state."""
        if circuit.is_dynamic:
            raise SimulationError(
                "the DD simulator cannot handle dynamic circuits directly; use "
                "repro.core.extract_distribution or transform the circuit first"
            )
        state = self._initial_state(circuit.num_qubits, initial_state, package)
        for instruction in circuit.remove_final_measurements():
            if instruction.is_barrier or instruction.is_measurement:
                continue
            state = state.apply_instruction(instruction)
        return state

    @staticmethod
    def _initial_state(
        num_qubits: int,
        initial_state: "DDState | int | str | None",
        package: DDPackage | None,
    ) -> DDState:
        if isinstance(initial_state, DDState):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            return initial_state
        if initial_state is None:
            return DDState.zero_state(num_qubits, package)
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} does not match {num_qubits} qubits"
                )
            return DDState.from_bitstring(initial_state, package)
        return DDState.basis_state(num_qubits, int(initial_state), package)
