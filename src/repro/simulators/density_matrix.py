"""Ensemble density-matrix simulation of dynamic circuits.

Section 5 of the paper discusses density-matrix simulators as one possible —
but unsatisfying — way of dealing with non-unitaries: they handle resets,
mid-circuit measurements and classically-controlled operations naturally, but
a single run only yields the state for one particular set of measurement
outcomes.  To obtain the *complete* distribution over classical outcomes, the
simulation has to be split per classical assignment, which is what this
ensemble simulator does: it tracks one (unnormalized) density matrix per
reachable classical-bit assignment.

The memory cost is ``O(4**n)`` per branch, so this backend is only usable for
small qubit counts.  It serves two purposes in this repository:

* ground truth for the extraction scheme (``repro.core.extraction``) in the
  test suite, and
* the "rejected baseline" in the ablation benchmark
  ``benchmarks/bench_ablation_extraction_baselines.py``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GlobalPhaseGate
from repro.exceptions import SimulationError
from repro.simulators.unitary import embed_gate_matrix
from repro.utils.bits import format_bitstring

__all__ = ["DensityMatrixSimulator"]


class DensityMatrixSimulator:
    """Simulate a (possibly dynamic) circuit with an ensemble of density matrices."""

    def __init__(self, max_qubits: int = 12, probability_threshold: float = 1e-12):
        self.max_qubits = max_qubits
        self.probability_threshold = probability_threshold

    def run(
        self, circuit: QuantumCircuit, initial_state: "int | str | None" = None
    ) -> dict[str, float]:
        """Return the distribution over classical-register outcomes.

        The result maps most-significant-first classical bitstrings
        (``c_{m-1} ... c_0``) to probabilities.  Qubits left unmeasured do not
        contribute to the key, exactly as on real hardware.
        """
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_qubits:
            raise SimulationError(
                f"density-matrix simulation of {num_qubits} qubits exceeds the configured "
                f"limit of {self.max_qubits} (memory grows as 4**n)"
            )
        dim = 1 << num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        start_index = self._initial_index(num_qubits, initial_state)
        rho[start_index, start_index] = 1.0

        # classical assignment (tuple of bits, least significant first) -> rho
        branches: dict[tuple[int, ...], np.ndarray] = {
            tuple([0] * circuit.num_clbits): rho
        }

        for instruction in circuit:
            if instruction.is_barrier:
                continue
            if instruction.is_measurement:
                branches = self._apply_measurement(
                    branches, instruction.qubits[0], instruction.clbits[0], num_qubits
                )
            elif instruction.is_reset:
                branches = {
                    key: (
                        self._apply_reset(rho, instruction.qubits[0], num_qubits)
                        if instruction.condition is None
                        or instruction.condition.is_satisfied(key)
                        else rho
                    )
                    for key, rho in branches.items()
                }
            else:
                gate = instruction.operation
                if not isinstance(gate, Gate):
                    raise SimulationError(f"unexpected instruction {instruction!r}")
                branches = self._apply_gate(branches, gate, instruction)
        distribution: dict[str, float] = {}
        for classical_values, rho in branches.items():
            probability = float(np.real(np.trace(rho)))
            if probability <= self.probability_threshold:
                continue
            key = format_bitstring(classical_values)
            distribution[key] = distribution.get(key, 0.0) + probability
        return distribution

    # ------------------------------------------------------------------

    @staticmethod
    def _initial_index(num_qubits: int, initial_state: "int | str | None") -> int:
        if initial_state is None:
            return 0
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} does not match {num_qubits} qubits"
                )
            return int(initial_state, 2) if initial_state else 0
        index = int(initial_state)
        if not 0 <= index < (1 << num_qubits):
            raise SimulationError(f"initial basis state {index} out of range")
        return index

    def _apply_gate(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        gate: Gate,
        instruction,
    ) -> dict[tuple[int, ...], np.ndarray]:
        result: dict[tuple[int, ...], np.ndarray] = {}
        num_qubits = None
        full = None
        for classical_values, rho in branches.items():
            if instruction.condition is not None and not instruction.condition.is_satisfied(
                classical_values
            ):
                result[classical_values] = rho
                continue
            if isinstance(gate, GlobalPhaseGate):
                result[classical_values] = rho
                continue
            if full is None:
                num_qubits = int(round(np.log2(rho.shape[0])))
                full = embed_gate_matrix(gate.matrix, instruction.qubits, num_qubits)
            result[classical_values] = full @ rho @ full.conj().T
        return result

    def _apply_measurement(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        qubit: int,
        clbit: int,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        projector_zero = embed_gate_matrix(
            np.array([[1, 0], [0, 0]], dtype=complex), [qubit], num_qubits
        )
        projector_one = embed_gate_matrix(
            np.array([[0, 0], [0, 1]], dtype=complex), [qubit], num_qubits
        )
        result: dict[tuple[int, ...], np.ndarray] = {}
        for classical_values, rho in branches.items():
            for outcome, projector in ((0, projector_zero), (1, projector_one)):
                projected = projector @ rho @ projector
                probability = float(np.real(np.trace(projected)))
                if probability <= self.probability_threshold:
                    continue
                new_values = list(classical_values)
                new_values[clbit] = outcome
                key = tuple(new_values)
                if key in result:
                    result[key] = result[key] + projected
                else:
                    result[key] = projected
        return result

    @staticmethod
    def _apply_reset(rho: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        projector_zero = embed_gate_matrix(
            np.array([[1, 0], [0, 0]], dtype=complex), [qubit], num_qubits
        )
        lower = embed_gate_matrix(
            np.array([[0, 1], [0, 0]], dtype=complex), [qubit], num_qubits
        )
        # Kraus operators of the reset channel: |0><0| and |0><1|.
        return projector_zero @ rho @ projector_zero + lower @ rho @ lower.conj().T
