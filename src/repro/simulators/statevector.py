"""Dense (numpy) statevector simulation.

This is the reference backend: every other backend (decision diagrams, the
density-matrix ensemble simulator, the stochastic trajectory simulator) is
cross-validated against it in the test suite.  It also serves as the ``t_sim``
baseline of Table 1 (classical simulation of the static circuit).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GlobalPhaseGate
from repro.circuit.operations import Instruction
from repro.exceptions import SimulationError
from repro.utils.bits import int_to_bitstring

__all__ = ["Statevector", "StatevectorSimulator", "apply_matrix_to_state"]


def apply_matrix_to_state(
    state: np.ndarray, matrix: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a ``2**k x 2**k`` matrix to ``targets`` of a ``2**n`` state vector.

    The state index is little-endian (bit ``q`` of the index is qubit ``q``);
    the matrix index interprets ``targets[j]`` as bit ``j`` (the convention of
    :mod:`repro.circuit.gates`).
    """
    k = len(targets)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(
            f"matrix of shape {matrix.shape} does not match {k} target qubit(s)"
        )
    if len(set(targets)) != k:
        raise SimulationError(f"duplicate target qubits: {targets}")
    if any(not 0 <= t < num_qubits for t in targets):
        raise SimulationError(f"target qubits {targets} out of range for {num_qubits} qubits")
    if k == 0:
        return state * matrix[0, 0]

    tensor = state.reshape((2,) * num_qubits)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    # Column axes of the gate tensor are ordered most-significant-first, i.e.
    # they correspond to targets[k-1], ..., targets[0].
    state_axes = [num_qubits - 1 - targets[j] for j in reversed(range(k))]
    col_axes = list(range(k, 2 * k))
    result = np.tensordot(gate_tensor, tensor, axes=(col_axes, state_axes))
    # The first k axes of the result are the row axes (targets[k-1] ... targets[0]);
    # move them back to their original positions.
    destination = [num_qubits - 1 - targets[j] for j in reversed(range(k))]
    result = np.moveaxis(result, list(range(k)), destination)
    return result.reshape(1 << num_qubits)


class Statevector:
    """A pure quantum state over ``num_qubits`` qubits.

    The amplitudes are stored little-endian: amplitude ``data[i]`` belongs to
    the computational basis state whose qubit ``q`` has value ``(i >> q) & 1``.
    """

    def __init__(self, data: np.ndarray | Sequence[complex], num_qubits: int | None = None):
        array = np.asarray(data, dtype=complex).reshape(-1)
        if num_qubits is None:
            num_qubits = int(round(math.log2(array.size)))
        if array.size != (1 << num_qubits):
            raise SimulationError(
                f"state of length {array.size} does not match {num_qubits} qubit(s)"
            )
        self._data = array
        self._num_qubits = num_qubits

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """Return |0...0>."""
        data = np.zeros(1 << num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def basis_state(cls, num_qubits: int, value: int) -> "Statevector":
        """Return the computational basis state |value> (little-endian integer)."""
        if not 0 <= value < (1 << num_qubits):
            raise SimulationError(f"basis state {value} out of range for {num_qubits} qubits")
        data = np.zeros(1 << num_qubits, dtype=complex)
        data[value] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def from_bitstring(cls, bitstring: str) -> "Statevector":
        """Return the basis state for a most-significant-first bitstring."""
        num_qubits = len(bitstring)
        return cls.basis_state(num_qubits, int(bitstring, 2) if bitstring else 0)

    # -- basic properties -----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """The amplitude vector (a copy)."""
        return self._data.copy()

    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self._data.copy(), self._num_qubits)

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self._data))

    def normalize(self) -> "Statevector":
        """Return the normalized state (raises on the zero vector)."""
        norm = self.norm()
        if norm == 0.0:
            raise SimulationError("cannot normalize the zero vector")
        return Statevector(self._data / norm, self._num_qubits)

    # -- evolution -------------------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, targets: Sequence[int]) -> "Statevector":
        """Apply a unitary matrix to the given target qubits."""
        data = apply_matrix_to_state(self._data, matrix, list(targets), self._num_qubits)
        return Statevector(data, self._num_qubits)

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "Statevector":
        """Apply a library gate to the given qubits."""
        if isinstance(gate, GlobalPhaseGate):
            return Statevector(self._data * np.exp(1j * gate.phase), self._num_qubits)
        return self.apply_matrix(gate.matrix, qubits)

    def apply_instruction(self, instruction: Instruction) -> "Statevector":
        """Apply a unitary, unconditioned gate instruction."""
        if instruction.is_barrier:
            return self
        if not instruction.is_gate or instruction.condition is not None:
            raise SimulationError(
                f"Statevector.apply_instruction only handles unitary gates, got {instruction!r}"
            )
        gate = instruction.operation
        assert isinstance(gate, Gate)
        return self.apply_gate(gate, instruction.qubits)

    # -- measurement -----------------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """Probability of measuring ``qubit`` in state |1>."""
        if not 0 <= qubit < self._num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        tensor = np.abs(self._data.reshape((2,) * self._num_qubits)) ** 2
        axis = self._num_qubits - 1 - qubit
        marginal = tensor.sum(axis=tuple(a for a in range(self._num_qubits) if a != axis))
        return float(marginal[1])

    def collapse(self, qubit: int, outcome: int, probability: float | None = None) -> "Statevector":
        """Project onto ``qubit == outcome`` and renormalize.

        ``probability`` may be passed to avoid recomputing it; a zero
        probability raises :class:`SimulationError`.
        """
        if outcome not in (0, 1):
            raise SimulationError(f"measurement outcome must be 0 or 1, got {outcome}")
        if probability is None:
            p1 = self.probability_of_one(qubit)
            probability = p1 if outcome == 1 else 1.0 - p1
        if probability <= 0.0:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto outcome {outcome} with probability 0"
            )
        data = self._data.copy().reshape((2,) * self._num_qubits)
        axis = self._num_qubits - 1 - qubit
        index = [slice(None)] * self._num_qubits
        index[axis] = 1 - outcome
        data[tuple(index)] = 0.0
        data = data.reshape(1 << self._num_qubits) / math.sqrt(probability)
        return Statevector(data, self._num_qubits)

    def reset_qubit_outcomes(self, qubit: int) -> list[tuple[float, "Statevector"]]:
        """Decompose a reset of ``qubit`` into its pure branches.

        Returns up to two ``(probability, post-reset state)`` pairs — one per
        possible pre-reset value of the qubit.  The post-reset states have the
        qubit in |0>; branches with zero probability are omitted.
        """
        p1 = self.probability_of_one(qubit)
        branches: list[tuple[float, Statevector]] = []
        if 1.0 - p1 > 0.0:
            branches.append((1.0 - p1, self.collapse(qubit, 0, 1.0 - p1)))
        if p1 > 0.0:
            collapsed = self.collapse(qubit, 1, p1)
            from repro.circuit.gates import XGate

            branches.append((p1, collapsed.apply_gate(XGate(), [qubit])))
        return branches

    # -- read-out ---------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probabilities of all ``2**n`` computational basis states."""
        return np.abs(self._data) ** 2

    def probabilities_dict(self, threshold: float = 1e-12) -> dict[str, float]:
        """Non-negligible basis-state probabilities keyed by bitstring.

        Bitstrings are most-significant-first (qubit ``n-1`` leftmost).
        """
        probs = self.probabilities()
        result: dict[str, float] = {}
        for index in np.nonzero(probs > threshold)[0]:
            result[int_to_bitstring(int(index), self._num_qubits)] = float(probs[index])
        return result

    def sample_counts(self, shots: int, seed: int | None = None) -> dict[str, int]:
        """Sample measurement outcomes for all qubits."""
        rng = np.random.default_rng(seed)
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: dict[str, int] = {}
        for outcome in outcomes:
            key = int_to_bitstring(int(outcome), self._num_qubits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def inner_product(self, other: "Statevector") -> complex:
        """Return ``<self|other>``."""
        if other.num_qubits != self._num_qubits:
            raise SimulationError("states must have the same number of qubits")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        """Return ``|<self|other>|**2``."""
        return abs(self.inner_product(other)) ** 2

    def equiv(self, other: "Statevector", tolerance: float = 1e-9) -> bool:
        """Whether the two states are equal up to a global phase."""
        return self.fidelity(other) > 1.0 - tolerance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Statevector(num_qubits={self._num_qubits})"


class StatevectorSimulator:
    """Simulate unitary circuits (ignoring a trailing measurement layer).

    Dynamic circuits cannot be simulated deterministically by a pure-state
    simulator — that is exactly the problem Section 5 of the paper addresses.
    Attempting to do so raises :class:`SimulationError`, pointing the user to
    the extraction scheme.
    """

    def run(
        self, circuit: QuantumCircuit, initial_state: "Statevector | int | str | None" = None
    ) -> Statevector:
        """Simulate ``circuit`` and return the final state.

        Trailing read-out measurements are ignored; any other non-unitary
        primitive raises.
        """
        if circuit.is_dynamic:
            raise SimulationError(
                "the statevector simulator cannot handle dynamic circuits; use "
                "repro.core.extract_distribution or transform the circuit first"
            )
        state = self._initial_state(circuit.num_qubits, initial_state)
        for instruction in circuit.remove_final_measurements():
            if instruction.is_barrier or instruction.is_measurement:
                continue
            state = state.apply_instruction(instruction)
        return state

    @staticmethod
    def _initial_state(
        num_qubits: int, initial_state: "Statevector | int | str | None"
    ) -> Statevector:
        if initial_state is None:
            return Statevector.zero_state(num_qubits)
        if isinstance(initial_state, Statevector):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            return initial_state
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} does not match {num_qubits} qubits"
                )
            return Statevector.from_bitstring(initial_state)
        return Statevector.basis_state(num_qubits, int(initial_state))
