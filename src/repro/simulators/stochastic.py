"""Stochastic (trajectory / shot-based) simulation of dynamic circuits.

This is the other baseline Section 5 of the paper argues against: repeatedly
simulating the dynamic circuit while sampling every measurement and reset
outcome.  It handles non-unitaries trivially but needs a *huge* number of
shots before the empirical distribution is statistically meaningful — the
extraction scheme (``repro.core.extraction``) obtains the exact distribution
instead.  The trajectory simulator is kept as a baseline for the ablation
benchmarks and as an additional cross-check in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, XGate
from repro.exceptions import SimulationError
from repro.simulators.statevector import Statevector
from repro.utils.bits import format_bitstring

__all__ = ["StochasticSimulator"]


class StochasticSimulator:
    """Sample classical outcomes of a (possibly dynamic) circuit shot by shot."""

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed)

    def run_single_shot(
        self, circuit: QuantumCircuit, initial_state: "Statevector | int | str | None" = None
    ) -> tuple[str, Statevector]:
        """Run one trajectory; returns (classical bitstring, final state)."""
        state = self._initial_state(circuit.num_qubits, initial_state)
        classical = [0] * circuit.num_clbits
        for instruction in circuit:
            if instruction.is_barrier:
                continue
            if instruction.is_measurement:
                qubit = instruction.qubits[0]
                p_one = state.probability_of_one(qubit)
                outcome = 1 if self._rng.random() < p_one else 0
                probability = p_one if outcome == 1 else 1.0 - p_one
                state = state.collapse(qubit, outcome, probability)
                classical[instruction.clbits[0]] = outcome
                continue
            if instruction.is_reset:
                if instruction.condition is not None and not instruction.condition.is_satisfied(
                    classical
                ):
                    continue
                qubit = instruction.qubits[0]
                p_one = state.probability_of_one(qubit)
                outcome = 1 if self._rng.random() < p_one else 0
                probability = p_one if outcome == 1 else 1.0 - p_one
                state = state.collapse(qubit, outcome, probability)
                if outcome == 1:
                    state = state.apply_gate(XGate(), [qubit])
                continue
            if instruction.condition is not None and not instruction.condition.is_satisfied(
                classical
            ):
                continue
            gate = instruction.operation
            if not isinstance(gate, Gate):
                raise SimulationError(f"unexpected instruction {instruction!r}")
            state = state.apply_gate(gate, instruction.qubits)
        return format_bitstring(classical), state

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: "Statevector | int | str | None" = None,
    ) -> dict[str, int]:
        """Sample ``shots`` trajectories and return outcome counts."""
        if shots < 1:
            raise SimulationError("shots must be positive")
        counts: dict[str, int] = {}
        for _ in range(shots):
            outcome, _ = self.run_single_shot(circuit, initial_state)
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def estimate_distribution(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: "Statevector | int | str | None" = None,
    ) -> dict[str, float]:
        """Empirical outcome distribution from ``shots`` trajectories."""
        counts = self.run(circuit, shots, initial_state)
        return {key: value / shots for key, value in counts.items()}

    @staticmethod
    def _initial_state(
        num_qubits: int, initial_state: "Statevector | int | str | None"
    ) -> Statevector:
        if initial_state is None:
            return Statevector.zero_state(num_qubits)
        if isinstance(initial_state, Statevector):
            return initial_state.copy()
        if isinstance(initial_state, str):
            return Statevector.from_bitstring(initial_state)
        return Statevector.basis_state(num_qubits, int(initial_state))
