"""Construction of the full ``2**n x 2**n`` system matrix of a unitary circuit.

This is the textbook formulation of equivalence checking recalled in
Section 2.3 of the paper: the functionality of a circuit ``G = g_0 ... g_{m-1}``
is ``U = U_{m-1} ... U_0`` and two circuits are equivalent iff their system
matrices agree (possibly up to a global phase).  The dense construction is
exponential in the number of qubits and is used as the ground-truth baseline
for small instances and in the test suite.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GlobalPhaseGate
from repro.exceptions import SimulationError

__all__ = [
    "circuit_unitary",
    "embed_gate_matrix",
    "matrices_equal_up_to_global_phase",
    "process_fidelity",
]


def embed_gate_matrix(
    matrix: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a ``2**k``-dimensional gate matrix into the full ``2**n`` space.

    ``targets[j]`` is interpreted as bit ``j`` of the gate-matrix index,
    matching the convention of :mod:`repro.circuit.gates`.
    """
    k = len(targets)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(
            f"matrix of shape {matrix.shape} does not match {k} target qubit(s)"
        )
    if len(set(targets)) != k:
        raise SimulationError(f"duplicate target qubits: {targets}")
    dim = 1 << num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    non_targets = [q for q in range(num_qubits) if q not in targets]

    for col in range(dim):
        gate_col = 0
        for j, t in enumerate(targets):
            gate_col |= ((col >> t) & 1) << j
        rest = 0
        for j, q in enumerate(non_targets):
            rest |= ((col >> q) & 1) << j
        for gate_row in range(1 << k):
            amplitude = matrix[gate_row, gate_col]
            if amplitude == 0:
                continue
            row = 0
            for j, t in enumerate(targets):
                row |= ((gate_row >> j) & 1) << t
            for j, q in enumerate(non_targets):
                row |= ((rest >> j) & 1) << q
            full[row, col] = amplitude
    return full


def circuit_unitary(
    circuit: QuantumCircuit,
    *,
    interrupt: "Callable[[], bool] | None" = None,
) -> np.ndarray:
    """Return the system matrix of a unitary circuit.

    Trailing read-out measurements are ignored (they do not change the
    functionality being compared); any other non-unitary primitive raises.
    ``interrupt`` is an optional cancellation probe polled between gate
    applications (see :class:`repro.core.checkers.base.Checker`); when it
    fires the build raises ``CheckerInterrupted`` instead of finishing on an
    abandoned thread.
    """
    if circuit.is_dynamic:
        raise SimulationError(
            "cannot build the unitary of a dynamic circuit; apply "
            "repro.core.to_unitary_circuit first"
        )
    num_qubits = circuit.num_qubits
    unitary = np.eye(1 << num_qubits, dtype=complex)
    for instruction in circuit.remove_final_measurements():
        if interrupt is not None and interrupt():
            from repro.core.checkers.base import CheckerInterrupted

            raise CheckerInterrupted
        if instruction.is_barrier or instruction.is_measurement:
            continue
        gate = instruction.operation
        if not isinstance(gate, Gate):
            raise SimulationError(f"unexpected non-gate instruction {instruction!r}")
        if isinstance(gate, GlobalPhaseGate):
            unitary = np.exp(1j * gate.phase) * unitary
            continue
        embedded = embed_gate_matrix(gate.matrix, instruction.qubits, num_qubits)
        unitary = embedded @ unitary
    return unitary


def process_fidelity(unitary_a: np.ndarray, unitary_b: np.ndarray) -> float:
    """Return ``|Tr(A^dagger B)|**2 / d**2`` — 1.0 iff equal up to global phase."""
    if unitary_a.shape != unitary_b.shape:
        raise SimulationError("unitaries must have the same dimension")
    dim = unitary_a.shape[0]
    overlap = np.trace(unitary_a.conj().T @ unitary_b)
    return float(abs(overlap) ** 2 / dim**2)


def matrices_equal_up_to_global_phase(
    unitary_a: np.ndarray, unitary_b: np.ndarray, tolerance: float = 1e-9
) -> bool:
    """Whether two unitaries are equal up to a global phase factor."""
    return process_fidelity(unitary_a, unitary_b) > 1.0 - tolerance
