"""Small shared utilities (bitstring manipulation, timing helpers)."""

from repro.utils.bits import (
    bits_to_int,
    bitstring_to_int,
    format_bitstring,
    int_to_bits,
    int_to_bitstring,
)
from repro.utils.timing import Stopwatch, timed

__all__ = [
    "Stopwatch",
    "bits_to_int",
    "bitstring_to_int",
    "format_bitstring",
    "int_to_bits",
    "int_to_bitstring",
    "timed",
]
