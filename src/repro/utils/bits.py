"""Bit and bitstring helpers.

Conventions
-----------
* Bit index 0 is the *least significant* bit.
* Bitstrings are printed most-significant-first, i.e. ``c_{m-1} ... c_1 c_0``,
  matching the ``0.c2c1c0`` notation used in the paper for phase estimates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "bits_to_int",
    "bitstring_to_int",
    "format_bitstring",
    "int_to_bits",
    "int_to_bitstring",
]


def int_to_bits(value: int, width: int) -> list[int]:
    """Return the ``width`` least-significant bits of ``value``.

    The result is ordered least-significant-first, i.e. ``result[k]`` is bit
    ``k`` of ``value``.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return [(value >> k) & 1 for k in range(width)]


def bits_to_int(bits: Iterable[int]) -> int:
    """Inverse of :func:`int_to_bits`: combine least-significant-first bits.

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    value = 0
    for k, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r} at position {k}")
        value |= bit << k
    return value


def int_to_bitstring(value: int, width: int) -> str:
    """Return ``value`` as a most-significant-first bitstring of length ``width``.

    >>> int_to_bitstring(6, 4)
    '0110'
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return format(value, f"0{width}b") if width else ""


def bitstring_to_int(bitstring: str) -> int:
    """Parse a most-significant-first bitstring.

    >>> bitstring_to_int('0110')
    6
    """
    if bitstring == "":
        return 0
    if any(ch not in "01" for ch in bitstring):
        raise ValueError(f"bitstring must only contain 0/1, got {bitstring!r}")
    return int(bitstring, 2)


def format_bitstring(bits: Sequence[int]) -> str:
    """Format least-significant-first ``bits`` as a most-significant-first string.

    >>> format_bitstring([1, 0, 0])
    '001'
    """
    return "".join(str(b) for b in reversed(list(bits)))
