"""Timing helpers used by the equivalence-checking flow and the benchmarks."""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from typing import Any, TypeVar

__all__ = ["Stopwatch", "timed"]

T = TypeVar("T")


class Stopwatch:
    """Accumulating stopwatch with named laps.

    The equivalence-checking results report separate times for the
    transformation scheme and the actual check (``t_trans`` / ``t_ver`` in the
    paper's Table 1); :class:`Stopwatch` collects those laps.
    """

    def __init__(self) -> None:
        self._laps: dict[str, float] = {}

    @contextmanager
    def lap(self, name: str):
        """Context manager measuring the wall-clock time of a named lap."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._laps[name] = self._laps.get(name, 0.0) + elapsed

    def __getitem__(self, name: str) -> float:
        return self._laps[name]

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the accumulated time of ``name`` or ``default``."""
        return self._laps.get(name, default)

    @property
    def laps(self) -> dict[str, float]:
        """All recorded laps (copy)."""
        return dict(self._laps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v:.6f}s" for k, v in self._laps.items())
        return f"Stopwatch({body})"


def timed(func: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
