"""Tests for the algorithm generators (correctness of the algorithms themselves)."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_fanout,
    ghz_ladder,
    hidden_string_bits,
    iterative_qpe,
    phase_estimate_from_bitstring,
    qft_circuit,
    qft_dynamic,
    qft_static_benchmark,
    qpe_static,
    running_example_lambda,
    teleportation_dynamic,
    teleportation_static,
)
from repro.core import extract_distribution
from repro.exceptions import CircuitError
from repro.simulators import StatevectorSimulator, circuit_unitary
from repro.simulators.statevector import Statevector


class TestBernsteinVazirani:
    @pytest.mark.parametrize("hidden", ["0", "1", "101", "11001", "0000", "1111"])
    def test_static_recovers_hidden_string(self, hidden):
        circuit = bernstein_vazirani_static(hidden)
        result = extract_distribution(circuit)
        assert result.distribution == pytest.approx({hidden: 1.0})

    @pytest.mark.parametrize("hidden", ["0", "1", "101", "11001"])
    def test_dynamic_recovers_hidden_string(self, hidden):
        circuit = bernstein_vazirani_dynamic(hidden)
        result = extract_distribution(circuit)
        assert result.distribution == pytest.approx({hidden: 1.0})

    def test_dynamic_uses_two_qubits(self):
        assert bernstein_vazirani_dynamic("10110").num_qubits == 2

    def test_static_qubit_count(self):
        assert bernstein_vazirani_static("10110").num_qubits == 6

    def test_gate_count_scales_linearly(self):
        small = bernstein_vazirani_static("1" * 5).size
        large = bernstein_vazirani_static("1" * 10).size
        assert large > small

    def test_hidden_string_bits(self):
        assert hidden_string_bits("110") == [0, 1, 1]

    def test_invalid_hidden_string_raises(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_static("12")
        with pytest.raises(CircuitError):
            bernstein_vazirani_static("")


class TestQPE:
    @pytest.mark.parametrize("numerator", [1, 3, 5, 7])
    def test_exact_phase_is_estimated_deterministically(self, numerator):
        """For theta = numerator/8 and 3 bits the estimate is exact."""
        lam = 2.0 * math.pi * numerator / 8
        result = extract_distribution(qpe_static(3, lam))
        expected = format(numerator, "03b")
        assert result.distribution == pytest.approx({expected: 1.0}, abs=1e-9)

    @pytest.mark.parametrize("numerator", [1, 3, 5, 7])
    def test_iterative_qpe_matches_static(self, numerator):
        lam = 2.0 * math.pi * numerator / 8
        static = extract_distribution(qpe_static(3, lam)).distribution
        dynamic = extract_distribution(iterative_qpe(3, lam)).distribution
        assert static == pytest.approx(dynamic, abs=1e-9)

    def test_running_example_most_probable_estimates(self):
        """theta = 3/16 needs 4 bits; with 3 bits |001> and |010> dominate."""
        result = extract_distribution(qpe_static(3, running_example_lambda))
        ordered = sorted(result.distribution, key=result.distribution.get, reverse=True)
        assert set(ordered[:2]) == {"001", "010"}

    def test_four_bit_running_example_is_exact(self):
        result = extract_distribution(qpe_static(4, running_example_lambda))
        assert result.probability("0011") == pytest.approx(1.0, abs=1e-9)

    def test_success_probability_bound(self):
        """QPE succeeds with probability > 4/pi^2 even for inexact phases."""
        lam = 2.0 * math.pi * 0.2371
        result = extract_distribution(qpe_static(4, lam))
        best_two = sorted(result.distribution.values(), reverse=True)[:2]
        assert best_two[0] > 4 / math.pi**2

    def test_phase_estimate_from_bitstring(self):
        assert phase_estimate_from_bitstring("0011") == pytest.approx(3 / 16)
        assert phase_estimate_from_bitstring("") == 0.0

    def test_eigenstate_zero_gives_zero_phase(self):
        result = extract_distribution(qpe_static(3, 1.234, eigenstate_one=False))
        assert result.probability("000") == pytest.approx(1.0)

    def test_iterative_qpe_structure(self):
        circuit = iterative_qpe(4)
        assert circuit.num_qubits == 2
        assert circuit.num_resets == 3
        assert circuit.num_measurements == 4
        assert circuit.num_classically_controlled == 3 + 2 + 1

    def test_invalid_bit_count_raises(self):
        with pytest.raises(CircuitError):
            qpe_static(0)
        with pytest.raises(CircuitError):
            iterative_qpe(0)


class TestQFT:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
    def test_textbook_qft_matches_dft_matrix(self, num_qubits):
        dimension = 1 << num_qubits
        omega = np.exp(2j * math.pi / dimension)
        dft = np.array(
            [[omega ** (row * column) for column in range(dimension)] for row in range(dimension)]
        ) / math.sqrt(dimension)
        assert np.allclose(circuit_unitary(qft_circuit(num_qubits)), dft, atol=1e-10)

    def test_inverse_qft(self):
        forward = circuit_unitary(qft_circuit(3))
        backward = circuit_unitary(qft_circuit(3, inverse=True))
        assert np.allclose(forward @ backward, np.eye(8), atol=1e-10)

    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    def test_benchmark_circuit_is_qft_with_bit_reversed_input(self, num_qubits):
        """The semiclassically-ordered benchmark equals DFT composed with bit reversal."""
        dimension = 1 << num_qubits
        omega = np.exp(2j * math.pi / dimension)
        dft = np.array(
            [[omega ** (row * column) for column in range(dimension)] for row in range(dimension)]
        ) / math.sqrt(dimension)

        def bit_reverse(value: int) -> int:
            return int(format(value, f"0{num_qubits}b")[::-1], 2)

        permutation = np.zeros((dimension, dimension))
        for index in range(dimension):
            permutation[bit_reverse(index), index] = 1.0
        benchmark = circuit_unitary(qft_static_benchmark(num_qubits).remove_final_measurements())
        assert np.allclose(benchmark, dft @ permutation, atol=1e-10)

    def test_benchmark_on_zero_state_is_uniform(self):
        result = extract_distribution(qft_static_benchmark(3))
        assert all(value == pytest.approx(1 / 8) for value in result.distribution.values())
        assert len(result.distribution) == 8

    def test_dynamic_qft_uses_one_qubit(self):
        circuit = qft_dynamic(5)
        assert circuit.num_qubits == 1
        assert circuit.num_resets == 4

    def test_invalid_size_raises(self):
        with pytest.raises(CircuitError):
            qft_circuit(0)


class TestTeleportation:
    @pytest.mark.parametrize("theta,phi", [(0.7, 0.3), (1.9, -1.1), (math.pi / 2, 0.0)])
    def test_dynamic_teleportation_moves_the_state(self, theta, phi):
        """After teleportation Bob's qubit must hold ry(theta);rz(phi)|0> regardless
        of the measurement outcomes."""
        from repro.simulators.stochastic import StochasticSimulator

        expected = Statevector.zero_state(1)
        from repro.circuit.gates import RYGate, RZGate

        expected = expected.apply_gate(RYGate(theta), [0]).apply_gate(RZGate(phi), [0])

        simulator = StochasticSimulator(seed=17)
        for _ in range(6):
            _, final_state = simulator.run_single_shot(teleportation_dynamic(theta, phi))
            # Trace out qubits 0 and 1 by checking the conditional state of qubit 2.
            data = final_state.data.reshape(2, 2, 2)  # indices: q2, q1, q0
            # The post-measurement state is a product state; find the non-zero block.
            collapsed = None
            for q1 in range(2):
                for q0 in range(2):
                    block = data[:, q1, q0]
                    if np.linalg.norm(block) > 1e-9:
                        collapsed = block / np.linalg.norm(block)
            assert collapsed is not None
            fidelity = abs(np.vdot(expected.data, collapsed)) ** 2
            assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_static_and_dynamic_distributions_match(self):
        dynamic = extract_distribution(teleportation_dynamic()).distribution
        static = extract_distribution(teleportation_static()).distribution
        assert dynamic == pytest.approx(static)

    def test_measurement_outcomes_are_uniform(self):
        distribution = extract_distribution(teleportation_dynamic()).distribution
        assert all(value == pytest.approx(0.25) for value in distribution.values())


class TestGHZ:
    def test_ladder_and_fanout_prepare_same_state(self):
        ladder = StatevectorSimulator().run(ghz_ladder(4))
        fanout = StatevectorSimulator().run(ghz_fanout(4))
        assert ladder.fidelity(fanout) == pytest.approx(1.0)

    def test_ghz_state_amplitudes(self):
        state = StatevectorSimulator().run(ghz_ladder(3))
        assert state.probabilities_dict() == pytest.approx({"000": 0.5, "111": 0.5})

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            ghz_ladder(1)
