"""Tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.circuit import (
    ClassicalRegister,
    QuantumCircuit,
    QuantumRegister,
)
from repro.exceptions import CircuitError
from repro.simulators.unitary import circuit_unitary


def bell_pair() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestConstruction:
    def test_integer_constructor(self):
        circuit = QuantumCircuit(3, 2)
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 2

    def test_register_constructor(self):
        qreg = QuantumRegister(2, "a")
        creg = ClassicalRegister(1, "m")
        circuit = QuantumCircuit(qreg, creg)
        assert circuit.qregs == [qreg]
        assert circuit.cregs == [creg]

    def test_mixed_registers(self):
        circuit = QuantumCircuit(QuantumRegister(1, "a"), QuantumRegister(2, "b"))
        assert circuit.num_qubits == 3

    def test_three_integers_raise(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1, 2, 3)

    def test_duplicate_register_names_raise(self):
        circuit = QuantumCircuit(QuantumRegister(1, "q"))
        with pytest.raises(CircuitError):
            circuit.add_register(QuantumRegister(2, "q"))

    def test_qubit_object_resolution(self):
        qreg = QuantumRegister(2, "q")
        circuit = QuantumCircuit(qreg)
        circuit.h(qreg[1])
        assert circuit.data[0].qubits == (1,)

    def test_out_of_range_qubit_raises(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(CircuitError):
            circuit.h(3)

    def test_foreign_qubit_raises(self):
        circuit = QuantumCircuit(1)
        other = QuantumRegister(1, "other")
        with pytest.raises(CircuitError):
            circuit.h(other[0])


class TestGateMethods:
    def test_all_single_qubit_methods(self):
        circuit = QuantumCircuit(1)
        circuit.i(0)
        circuit.x(0)
        circuit.y(0)
        circuit.z(0)
        circuit.h(0)
        circuit.s(0)
        circuit.sdg(0)
        circuit.t(0)
        circuit.tdg(0)
        circuit.sx(0)
        circuit.sxdg(0)
        circuit.rx(0.1, 0)
        circuit.ry(0.2, 0)
        circuit.rz(0.3, 0)
        circuit.p(0.4, 0)
        circuit.u(0.1, 0.2, 0.3, 0)
        circuit.u2(0.1, 0.2, 0)
        assert circuit.size == 17

    def test_all_multi_qubit_methods(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cy(0, 1)
        circuit.cz(0, 1)
        circuit.ch(0, 1)
        circuit.cp(0.1, 0, 1)
        circuit.crx(0.2, 0, 1)
        circuit.cry(0.3, 0, 1)
        circuit.crz(0.4, 0, 1)
        circuit.cu(0.1, 0.2, 0.3, 0, 1)
        circuit.swap(0, 1)
        circuit.iswap(2, 3)
        circuit.ccx(0, 1, 2)
        circuit.ccz(0, 1, 2)
        circuit.cswap(0, 1, 2)
        circuit.mcx([0, 1, 2], 3)
        circuit.mcp(0.5, [0, 1], 2)
        assert circuit.size == 16

    def test_count_ops(self):
        circuit = bell_pair()
        counts = circuit.count_ops()
        assert counts["h"] == 1
        assert counts["cx"] == 1

    def test_global_phase(self):
        circuit = QuantumCircuit(1)
        circuit.global_phase(0.5)
        assert np.allclose(circuit_unitary(circuit), np.exp(0.5j) * np.eye(2))


class TestDynamicClassification:
    def test_static_circuit_with_final_measurements(self):
        circuit = bell_pair()
        circuit.measure_all()
        assert not circuit.is_dynamic
        assert circuit.contains_non_unitaries

    def test_reset_makes_dynamic(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        assert circuit.is_dynamic

    def test_mid_circuit_measurement_makes_dynamic(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.h(0)
        assert circuit.is_dynamic

    def test_classical_condition_makes_dynamic(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        assert circuit.is_dynamic
        assert circuit.num_classically_controlled == 1

    def test_counts(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.measure(0, 1)
        assert circuit.num_measurements == 2
        assert circuit.num_resets == 1

    def test_condition_on_register(self):
        creg = ClassicalRegister(2, "c")
        circuit = QuantumCircuit(QuantumRegister(1, "q"), creg)
        circuit.x(0, condition=(creg, 2))
        condition = circuit.data[0].condition
        assert condition.clbits == (0, 1)
        assert condition.value == 2


class TestStructuralQueries:
    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        assert circuit.depth() == 1

    def test_depth_sequential_gates(self):
        circuit = bell_pair()
        assert circuit.depth() == 2

    def test_depth_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        assert circuit.depth() == 1

    def test_size_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        assert circuit.size == 1

    def test_depth_accounts_for_conditions(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        assert circuit.depth() == 2

    def test_used_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.h(1)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == {1, 3}

    def test_measure_all_requires_enough_clbits(self):
        circuit = QuantumCircuit(3, 1)
        with pytest.raises(CircuitError):
            circuit.measure_all()

    def test_summary_and_repr(self):
        circuit = bell_pair()
        assert "2 qubits" in circuit.summary()
        assert "QuantumCircuit" in repr(circuit)


class TestTransformations:
    def test_copy_is_independent(self):
        circuit = bell_pair()
        clone = circuit.copy()
        clone.x(0)
        assert circuit.size == 2
        assert clone.size == 3

    def test_copy_empty_keeps_registers(self):
        circuit = bell_pair()
        empty = circuit.copy_empty()
        assert empty.num_qubits == 2
        assert empty.size == 0

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(1)
        circuit.s(0)
        circuit.t(0)
        inverse = circuit.inverse()
        names = [inst.operation.name for inst in inverse]
        assert names == ["tdg", "sdg"]

    def test_inverse_of_dynamic_circuit_raises(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_inverse_composed_gives_identity(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.crx(0.7, 0, 1)
        circuit.swap(0, 1)
        combined = circuit.compose(circuit.inverse())
        assert np.allclose(circuit_unitary(combined), np.eye(4), atol=1e-12)

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(1)
        inner.x(0)
        outer = QuantumCircuit(3)
        combined = outer.compose(inner, qubits=[2])
        assert combined.data[0].qubits == (2,)

    def test_compose_maps_conditions(self):
        inner = QuantumCircuit(1, 1)
        inner.x(0, condition=(0, 1))
        outer = QuantumCircuit(2, 2)
        combined = outer.compose(inner, qubits=[1], clbits=[1])
        assert combined.data[0].condition.clbits == (1,)

    def test_compose_size_mismatch_raises(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubits=[0])

    def test_remove_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        cleaned = circuit.remove_barriers()
        assert cleaned.size == 1
        assert all(not inst.is_barrier for inst in cleaned)

    def test_remove_final_measurements(self):
        circuit = bell_pair()
        circuit.measure_all()
        stripped = circuit.remove_final_measurements()
        assert stripped.num_measurements == 0
        assert stripped.size == 2

    def test_remove_final_measurements_keeps_mid_circuit(self):
        circuit = QuantumCircuit(1, 2)
        circuit.measure(0, 0)
        circuit.h(0)
        circuit.measure(0, 1)
        stripped = circuit.remove_final_measurements()
        assert stripped.num_measurements == 1

    def test_gate_instructions_rejects_dynamic(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.h(0)
        with pytest.raises(CircuitError):
            list(circuit.gate_instructions())


class TestDrawer:
    def test_draw_contains_wires_and_gates(self):
        circuit = bell_pair()
        circuit.measure(0, 0)
        drawing = circuit.draw()
        assert "q0:" in drawing
        assert "c0:" in drawing
        assert "h" in drawing
        assert "M" in drawing

    def test_draw_dynamic_circuit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.x(0, condition=(0, 1))
        drawing = circuit.draw()
        assert "?" in drawing  # condition marker
        assert "0" in drawing  # reset marker
