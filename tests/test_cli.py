"""Tests for the command-line interface."""

import json

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    iterative_qpe,
    qpe_static,
)
from repro.cli import build_parser, main


@pytest.fixture()
def qasm_files(tmp_path):
    """Write a static/dynamic BV pair and a QPE pair to QASM files."""
    paths = {}
    circuits = {
        "bv_static": bernstein_vazirani_static("101"),
        "bv_dynamic": bernstein_vazirani_dynamic("101"),
        "bv_wrong": bernstein_vazirani_dynamic("111"),
        "qpe_static": qpe_static(3),
        "iqpe": iterative_qpe(3),
    }
    for name, circuit in circuits.items():
        path = tmp_path / f"{name}.qasm"
        path.write_text(circuit.to_qasm(), encoding="utf-8")
        paths[name] = str(path)
    return paths


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify", "a.qasm", "b.qasm"])
        assert args.method == "alternating"
        assert args.strategy == "proportional"
        assert args.backend == "dd"

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "a", "b", "--method", "magic"])

    def test_method_choices_come_from_checker_registry(self):
        args = build_parser().parse_args(
            ["verify", "a.qasm", "b.qasm", "--method", "distribution"]
        )
        assert args.method == "distribution"


class TestVerifyCommand:
    def test_equivalent_pair_returns_zero(self, qasm_files, capsys):
        code = main(["verify", qasm_files["bv_static"], qasm_files["bv_dynamic"]])
        assert code == 0
        assert "equivalent" in capsys.readouterr().out

    def test_non_equivalent_pair_returns_one(self, qasm_files, capsys):
        code = main(["verify", qasm_files["bv_static"], qasm_files["bv_wrong"]])
        assert code == 1
        assert "not_equivalent" in capsys.readouterr().out

    def test_json_output(self, qasm_files, capsys):
        code = main(["verify", qasm_files["qpe_static"], qasm_files["iqpe"], "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["equivalent"] is True
        assert payload["strategy"] == "proportional"

    def test_method_distribution_runs_scheme_two(self, qasm_files, capsys):
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_dynamic"],
                "--method",
                "distribution",
            ]
        )
        assert code == 0
        assert "probably_equivalent" in capsys.readouterr().out

    def test_strategy_and_backend_options(self, qasm_files):
        assert (
            main(
                [
                    "verify",
                    qasm_files["qpe_static"],
                    qasm_files["iqpe"],
                    "--strategy",
                    "one_to_one",
                    "--backend",
                    "dense",
                ]
            )
            == 0
        )

    def test_missing_file_returns_two(self, tmp_path, capsys):
        code = main(["verify", str(tmp_path / "missing.qasm"), str(tmp_path / "missing2.qasm")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestPortfolioAndBatch:
    def test_verify_portfolio_flag(self, qasm_files, capsys):
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_dynamic"],
                "--portfolio",
                "simulation,alternating",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "decided_by=alternating" in output

    def test_verify_portfolio_falsifier_short_circuits(self, qasm_files, capsys):
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_wrong"],
                "--portfolio",
                "simulation,alternating",
                "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["decided_by"] == "simulation"
        assert payload["attempts"][1]["status"] == "skipped"

    def test_verify_timeout_without_portfolio_uses_manager(self, qasm_files, capsys):
        code = main(
            ["verify", qasm_files["bv_static"], qasm_files["bv_dynamic"], "--timeout", "30"]
        )
        assert code == 0
        assert "schedule=alternating" in capsys.readouterr().out

    def test_verify_json_emits_schedule_and_timings(self, qasm_files, capsys):
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_dynamic"],
                "--portfolio",
                "simulation,alternating",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "static"
        assert payload["schedule"] == ["simulation", "alternating"]
        completed = [a for a in payload["attempts"] if a["status"] == "completed"]
        assert completed and all(a["time"] > 0.0 for a in completed)

    def test_verify_explicit_method_respected_under_scheduler(self, qasm_files, capsys):
        # Regression: --method construction --scheduler adaptive used to
        # silently run the default simulation,alternating lineup instead.
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_dynamic"],
                "--method",
                "construction",
                "--scheduler",
                "adaptive",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schedule"] == ["construction"]
        assert payload["decided_by"] == "construction"

    def test_verify_adaptive_scheduler_runs_portfolio(self, qasm_files, capsys):
        code = main(
            [
                "verify",
                qasm_files["bv_static"],
                qasm_files["bv_dynamic"],
                "--scheduler",
                "adaptive",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "adaptive"
        assert set(payload["schedule"]) == {"simulation", "alternating"}
        assert payload["equivalent"] is True

    def test_invalid_portfolio_checker_errors(self, qasm_files, capsys):
        code = main(
            ["verify", qasm_files["bv_static"], qasm_files["bv_dynamic"], "--portfolio", "magic"]
        )
        assert code == 2
        assert "unknown portfolio checker" in capsys.readouterr().err

    def test_batch_manifest(self, qasm_files, tmp_path, capsys):
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            f"# demo pairs\n{qasm_files['bv_static']} {qasm_files['bv_dynamic']}\n"
            f"{qasm_files['bv_static']} {qasm_files['bv_wrong']}\n",
            encoding="utf-8",
        )
        code = main(["batch", str(manifest), "--json"])
        assert code == 1  # one pair is not equivalent
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_pairs"] == 2
        assert payload["num_equivalent"] == 1
        assert [entry["index"] for entry in payload["entries"]] == [0, 1]
        # Regression: batch --json used to drop all checker-level detail.
        for entry in payload["entries"]:
            assert entry["decided_by"] is not None
            assert entry["schedule"] == ["simulation", "alternating"]
            assert entry["scheduler"] == "static"
            statuses = {a["method"]: a["status"] for a in entry["checkers"]}
            assert statuses[entry["decided_by"]] == "completed"
            decided = next(
                a for a in entry["checkers"] if a["method"] == entry["decided_by"]
            )
            assert decided["time"] > 0.0

    def test_batch_isolates_missing_files(self, qasm_files, tmp_path, capsys):
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            f"{qasm_files['bv_static']} {qasm_files['bv_dynamic']}\n"
            f"{qasm_files['bv_static']} {tmp_path / 'missing.qasm'}\n",
            encoding="utf-8",
        )
        code = main(["batch", str(manifest), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_failed"] == 1
        assert payload["entries"][0]["equivalent"] is True
        assert "missing" in payload["entries"][1]["second"]

    def test_batch_with_no_verdict_returns_two(self, qasm_files, tmp_path, capsys):
        # Regression: a batch where *no* pair could be checked used to return
        # 1 ("not equivalent") instead of 2 ("could not check").
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            f"{qasm_files['bv_static']} {tmp_path / 'missing.qasm'}\n"
            f"{tmp_path / 'also_missing.qasm'} {qasm_files['bv_dynamic']}\n",
            encoding="utf-8",
        )
        code = main(["batch", str(manifest)])
        assert code == 2
        assert "no pair produced a verdict" in capsys.readouterr().err

    def test_batch_undecidable_pair_returns_two(self, qasm_files, tmp_path, capsys):
        # A qubit-count mismatch makes every checker error out: undecided.
        two_qubits = tmp_path / "two.qasm"
        two_qubits.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\nh q[0];\n',
            encoding="utf-8",
        )
        three_qubits = tmp_path / "three.qasm"
        three_qubits.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\nh q[0];\n',
            encoding="utf-8",
        )
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(f"{two_qubits} {three_qubits}\n", encoding="utf-8")
        code = main(["batch", str(manifest), "--json"])
        assert code == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["num_failed"] == 1
        assert "no pair produced a verdict" in captured.err

    def test_batch_process_executor(self, qasm_files, tmp_path, capsys):
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            f"{qasm_files['bv_static']} {qasm_files['bv_dynamic']}\n"
            f"{qasm_files['bv_static']} {qasm_files['bv_wrong']}\n",
            encoding="utf-8",
        )
        code = main(
            [
                "batch",
                str(manifest),
                "--executor",
                "process",
                "--chunk-size",
                "2",
                "--max-workers",
                "2",
                "--gate-cache-size",
                "64",
                "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "process"
        assert payload["num_pairs"] == 2
        assert payload["num_equivalent"] == 1
        assert payload["entries"][0]["equivalent"] is True
        assert payload["entries"][1]["equivalent"] is False

    def test_empty_manifests_error(self, tmp_path, capsys):
        empty_json = tmp_path / "empty.json"
        empty_json.write_text("[]", encoding="utf-8")
        assert main(["batch", str(empty_json)]) == 2
        empty_text = tmp_path / "empty.txt"
        empty_text.write_text("# nothing\n", encoding="utf-8")
        assert main(["batch", str(empty_text)]) == 2
        assert "names no circuit pairs" in capsys.readouterr().err


class TestBehaviourAndExtract:
    def test_verify_behaviour(self, qasm_files, capsys):
        code = main(["verify-behaviour", qasm_files["bv_static"], qasm_files["bv_dynamic"]])
        assert code == 0
        assert "probably_equivalent" in capsys.readouterr().out

    def test_verify_behaviour_json(self, qasm_files, capsys):
        main(["verify-behaviour", qasm_files["qpe_static"], qasm_files["iqpe"], "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_variation_distance"] < 1e-9

    def test_extract(self, qasm_files, capsys):
        code = main(["extract", qasm_files["bv_dynamic"]])
        assert code == 0
        assert "|101>" in capsys.readouterr().out

    def test_extract_json(self, qasm_files, capsys):
        main(["extract", qasm_files["iqpe"], "--backend", "dd", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert abs(sum(payload["distribution"].values()) - 1.0) < 1e-9

    def test_extract_without_classical_bits_reports_error(self, tmp_path, capsys):
        from repro.circuit import QuantumCircuit

        path = tmp_path / "no_meas.qasm"
        circuit = QuantumCircuit(1)
        circuit.h(0)
        path.write_text(circuit.to_qasm(), encoding="utf-8")
        assert main(["extract", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_show(self, qasm_files, capsys):
        assert main(["show", qasm_files["iqpe"]]) == 0
        output = capsys.readouterr().out
        assert "qubits" in output
        assert "q0:" in output
