"""Tests for the compilation substrate and the 'verify compilation' use case."""

import numpy as np
import pytest

from repro.algorithms import qft_circuit, qpe_static, running_example_lambda
from repro.circuit import QuantumCircuit
from repro.circuit.random_circuits import random_static_circuit
from repro.compilation import (
    CouplingMap,
    cancel_inverse_pairs,
    compile_circuit,
    decompose_to_cx_and_single_qubit,
    ibmq_london,
    linear_coupling,
    merge_rotations,
    optimize_circuit,
    pad_circuit,
    remove_identities,
    rewrite_single_qubit_to_u,
    ring_coupling,
    route_circuit,
    zyz_decomposition,
)
from repro.core import check_equivalence
from repro.exceptions import CompilationError
from repro.simulators.unitary import circuit_unitary, matrices_equal_up_to_global_phase


def assert_equivalent(first: QuantumCircuit, second: QuantumCircuit) -> None:
    assert matrices_equal_up_to_global_phase(
        circuit_unitary(first.remove_final_measurements()),
        circuit_unitary(second.remove_final_measurements()),
    )


class TestCouplingMap:
    def test_london_topology(self):
        device = ibmq_london()
        assert device.num_qubits == 5
        assert device.are_adjacent(1, 3)
        assert not device.are_adjacent(0, 4)
        assert device.distance(0, 4) == 3
        assert device.shortest_path(0, 4) == [0, 1, 3, 4]

    def test_linear_and_ring(self):
        assert linear_coupling(4).distance(0, 3) == 3
        assert ring_coupling(4).distance(0, 3) == 1

    def test_connectivity_check(self):
        disconnected = CouplingMap(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()
        with pytest.raises(CompilationError):
            disconnected.distance(0, 3)

    def test_invalid_edges_raise(self):
        with pytest.raises(CompilationError):
            CouplingMap(2, [(0, 5)])
        with pytest.raises(CompilationError):
            CouplingMap(2, [(1, 1)])

    def test_neighbors(self):
        assert ibmq_london().neighbors(1) == {0, 2, 3}


class TestZYZ:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_unitary_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        matrix = np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))[0]
        alpha, theta, phi, lam = zyz_decomposition(matrix)
        from repro.circuit.gates import RYGate, RZGate

        reconstructed = (
            np.exp(1j * alpha)
            * RZGate(phi).matrix
            @ RYGate(theta).matrix
            @ RZGate(lam).matrix
        )
        assert np.allclose(reconstructed, matrix, atol=1e-9)

    def test_diagonal_matrix(self):
        from repro.circuit.gates import SGate

        alpha, theta, phi, lam = zyz_decomposition(SGate().matrix)
        assert theta == pytest.approx(0.0)

    def test_antidiagonal_matrix(self):
        from repro.circuit.gates import XGate

        alpha, theta, phi, lam = zyz_decomposition(XGate().matrix)
        assert theta == pytest.approx(np.pi)

    def test_bad_shape_raises(self):
        with pytest.raises(CompilationError):
            zyz_decomposition(np.eye(4))


class TestDecomposition:
    def test_all_standard_multi_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cp(0.7, 0, 1)
        circuit.crx(1.1, 1, 2)
        circuit.cry(-0.4, 0, 2)
        circuit.crz(2.2, 2, 0)
        circuit.ch(0, 1)
        circuit.cy(0, 1)
        circuit.cu(0.3, 0.4, 0.5, 1, 2)
        circuit.swap(0, 2)
        circuit.iswap(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.ccz(1, 2, 0)
        circuit.cswap(2, 0, 1)
        decomposed = decompose_to_cx_and_single_qubit(circuit)
        assert_equivalent(circuit, decomposed)
        for instruction in decomposed:
            gate = instruction.operation
            assert gate.num_qubits <= 2
            if gate.num_qubits == 2:
                assert gate.name == "cx"

    def test_negative_control_decomposition(self):
        circuit = QuantumCircuit(2)
        from repro.circuit.gates import CPhaseGate

        circuit.append(CPhaseGate(0.9, ctrl_state=0), [0, 1])
        decomposed = decompose_to_cx_and_single_qubit(circuit)
        assert_equivalent(circuit, decomposed)

    def test_conditions_are_propagated(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        # A conditioned SWAP is decomposed into conditioned CNOTs.
        circuit.swap(0, 1)
        decomposed = decompose_to_cx_and_single_qubit(circuit)
        assert decomposed.count_ops()["cx"] == 3

    def test_single_qubit_rewrite_to_u(self):
        circuit = random_static_circuit(2, 4, seed=3)
        rewritten = rewrite_single_qubit_to_u(circuit)
        assert_equivalent(circuit, rewritten)
        single_qubit_names = {
            inst.operation.name
            for inst in rewritten
            if inst.operation.num_qubits == 1 and inst.is_gate
        }
        assert single_qubit_names <= {"u", "gphase"}

    def test_unsupported_gate_raises(self):
        circuit = QuantumCircuit(4)
        circuit.mcx([0, 1, 2], 3)
        with pytest.raises(CompilationError):
            decompose_to_cx_and_single_qubit(circuit)


class TestOptimization:
    def test_cancel_inverse_pairs(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.t(1)
        optimized = cancel_inverse_pairs(circuit)
        assert optimized.size == 1
        assert optimized.data[0].operation.name == "t"

    def test_cancellation_respects_intervening_gates(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        circuit.h(0)
        assert cancel_inverse_pairs(circuit).size == 3

    def test_cancellation_across_disjoint_wires(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        circuit.h(0)
        assert cancel_inverse_pairs(circuit).size == 1

    def test_merge_rotations(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(0.4, 0)
        merged = merge_rotations(circuit)
        assert merged.size == 1
        assert merged.data[0].operation.params[0] == pytest.approx(0.7)

    def test_merge_to_zero_then_removed(self):
        circuit = QuantumCircuit(1)
        circuit.p(0.5, 0)
        circuit.p(-0.5, 0)
        optimized = optimize_circuit(circuit)
        assert optimized.size == 0

    def test_remove_identities(self):
        circuit = QuantumCircuit(1)
        circuit.i(0)
        circuit.rx(0.0, 0)
        circuit.x(0)
        assert remove_identities(circuit).size == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_optimization_preserves_functionality(self, seed):
        circuit = random_static_circuit(3, 6, seed=seed)
        padded = circuit.copy()
        padded.h(0)
        padded.h(0)
        padded.rz(0.2, 1)
        padded.rz(-0.2, 1)
        optimized = optimize_circuit(padded)
        assert optimized.size <= padded.size
        assert check_equivalence(circuit, optimized).equivalent

    def test_broken_optimization_is_caught(self):
        circuit = random_static_circuit(3, 5, seed=11)
        broken = circuit.copy()
        broken.s(2)  # a stray gate, as an "optimizer bug"
        assert not check_equivalence(circuit, optimize_circuit(broken)).equivalent


class TestRouting:
    def test_all_two_qubit_gates_respect_coupling(self):
        circuit = qft_circuit(4, include_swaps=False)
        decomposed = decompose_to_cx_and_single_qubit(circuit)
        result = route_circuit(decomposed, linear_coupling(4))
        for instruction in result.circuit:
            if instruction.operation.num_qubits == 2 and instruction.is_gate:
                assert linear_coupling(4).are_adjacent(*instruction.qubits)

    def test_layout_is_restored(self):
        circuit = decompose_to_cx_and_single_qubit(qft_circuit(4, include_swaps=False))
        result = route_circuit(circuit, linear_coupling(4))
        assert result.final_layout[: circuit.num_qubits] == result.initial_layout

    def test_routed_circuit_is_equivalent(self):
        circuit = decompose_to_cx_and_single_qubit(qft_circuit(3, include_swaps=False))
        result = route_circuit(circuit, linear_coupling(3))
        assert_equivalent(circuit, result.circuit)

    def test_too_many_logical_qubits_raises(self):
        with pytest.raises(CompilationError):
            route_circuit(QuantumCircuit(6), ibmq_london())

    def test_three_qubit_gate_raises(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(CompilationError):
            route_circuit(circuit, linear_coupling(3))

    def test_disconnected_coupling_raises(self):
        with pytest.raises(CompilationError):
            route_circuit(QuantumCircuit(2), CouplingMap(4, [(0, 1), (2, 3)]))

    def test_custom_initial_layout(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = route_circuit(circuit, ibmq_london(), initial_layout=[0, 2])
        assert result.num_swaps >= 1

    def test_pad_circuit(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        padded = pad_circuit(circuit, 5)
        assert padded.num_qubits == 5
        with pytest.raises(CompilationError):
            pad_circuit(padded, 2)


class TestFullCompilationFlow:
    """The Fig. 1 scenario: QPE compiled to IBMQ London, then verified."""

    def test_compiled_qpe_is_equivalent(self):
        original = qpe_static(3, running_example_lambda)
        result = compile_circuit(original, ibmq_london())
        assert result.stats["compiled_cx"] > 0
        verification = check_equivalence(result.padded_original, result.circuit)
        assert verification.equivalent

    def test_compiled_circuit_uses_only_native_gates(self):
        result = compile_circuit(qpe_static(3), ibmq_london())
        for instruction in result.circuit:
            if instruction.is_gate:
                assert instruction.operation.name in {"u", "cx", "gphase"}

    def test_compilation_without_coupling_map(self):
        original = qft_circuit(3)
        result = compile_circuit(original)
        assert result.coupling_map is None
        assert check_equivalence(original, result.circuit).equivalent

    def test_miscompilation_is_detected(self):
        original = qpe_static(3, running_example_lambda)
        result = compile_circuit(original, ibmq_london())
        broken = result.circuit.remove_final_measurements()
        broken.x(1)
        assert not check_equivalence(
            result.padded_original.remove_final_measurements(), broken
        ).equivalent

    def test_random_circuits_survive_compilation(self):
        for seed in range(3):
            original = random_static_circuit(4, 4, seed=seed)
            result = compile_circuit(original, ibmq_london())
            assert check_equivalence(result.padded_original, result.circuit).equivalent
