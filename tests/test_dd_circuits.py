"""Tests for the circuit <-> decision-diagram bridge (gate construction)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import (
    CCXGate,
    CHGate,
    CPhaseGate,
    CSwapGate,
    CXGate,
    GlobalPhaseGate,
    HGate,
    MCPhaseGate,
    MCXGate,
    RXGate,
    SwapGate,
    UGate,
    XGate,
    iSwapGate,
)
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.dd.circuits import (
    apply_instruction_to_vector,
    circuit_to_unitary_dd,
    gate_to_dd,
    instruction_to_dd,
)
from repro.dd.package import DDPackage
from repro.exceptions import DDError
from repro.simulators.unitary import circuit_unitary, embed_gate_matrix

GATE_CASES = [
    (HGate(), (1,)),
    (XGate(), (0,)),
    (RXGate(0.3), (2,)),
    (UGate(0.2, 0.4, 0.6), (1,)),
    (CXGate(), (0, 2)),
    (CXGate(), (2, 0)),
    (CXGate(ctrl_state=0), (1, 2)),
    (CHGate(), (2, 1)),
    (CPhaseGate(0.7), (0, 1)),
    (CCXGate(), (0, 1, 2)),
    (CCXGate(), (2, 0, 1)),
    (CCXGate(ctrl_state=1), (0, 1, 2)),
    (MCXGate(2), (1, 2, 0)),
    (MCPhaseGate(0.4, 2), (0, 2, 1)),
    (SwapGate(), (0, 2)),
    (iSwapGate(), (1, 2)),
    (CSwapGate(), (2, 1, 0)),
]


class TestGateToDD:
    @pytest.mark.parametrize("gate,qubits", GATE_CASES, ids=lambda value: str(value))
    def test_matches_dense_embedding(self, gate, qubits):
        package = DDPackage(3)
        dd_matrix = package.matrix_to_numpy(gate_to_dd(package, gate, qubits))
        dense = embed_gate_matrix(gate.matrix, qubits, 3)
        assert np.allclose(dd_matrix, dense, atol=1e-9)

    def test_global_phase_gate(self):
        package = DDPackage(2)
        dd_matrix = package.matrix_to_numpy(gate_to_dd(package, GlobalPhaseGate(0.5), ()))
        assert np.allclose(dd_matrix, np.exp(0.5j) * np.eye(4))

    def test_wrong_qubit_count_raises(self):
        package = DDPackage(2)
        with pytest.raises(DDError):
            gate_to_dd(package, CXGate(), (0,))

    def test_instruction_to_dd_rejects_conditions(self):
        package = DDPackage(1)
        instruction = Instruction(XGate(), (0,), condition=ClassicalCondition((0,), 1))
        with pytest.raises(DDError):
            instruction_to_dd(package, instruction)

    def test_controlled_gate_node_count_stays_small(self):
        package = DDPackage(40)
        edge = gate_to_dd(package, CXGate(), (0, 39))
        assert package.count_nodes(edge) <= 3 * 40


class TestCircuitToDD:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_unitary(self, seed):
        from repro.circuit.random_circuits import random_static_circuit

        circuit = random_static_circuit(4, 4, seed=seed)
        package = DDPackage(4)
        dd_matrix = package.matrix_to_numpy(circuit_to_unitary_dd(package, circuit))
        assert np.allclose(dd_matrix, circuit_unitary(circuit), atol=1e-8)

    def test_final_measurements_ignored(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        package = DDPackage(2)
        dd_matrix = package.matrix_to_numpy(circuit_to_unitary_dd(package, circuit))
        assert np.allclose(dd_matrix, circuit_unitary(circuit), atol=1e-10)

    def test_qubit_count_mismatch_raises(self):
        package = DDPackage(3)
        with pytest.raises(DDError):
            circuit_to_unitary_dd(package, QuantumCircuit(2))

    def test_apply_instruction_to_vector(self):
        package = DDPackage(2)
        state = package.zero_state()
        state = apply_instruction_to_vector(package, state, Instruction(HGate(), (0,)))
        state = apply_instruction_to_vector(package, state, Instruction(CXGate(), (0, 1)))
        amplitudes = package.vector_to_numpy(state)
        assert np.allclose(np.abs(amplitudes) ** 2, [0.5, 0, 0, 0.5])

    def test_identity_circuit_gives_identity_dd(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        composed = circuit.compose(circuit.inverse())
        package = DDPackage(3)
        edge = circuit_to_unitary_dd(package, composed)
        assert package.is_identity(edge, up_to_global_phase=False)
