"""Tests for the decision-diagram DOT export and summaries."""

import numpy as np

from repro.dd import DDPackage, edge_to_dot, summarize_edge
from repro.dd.circuits import circuit_to_unitary_dd
from repro.algorithms import ghz_ladder


class TestDotExport:
    def test_zero_state_export(self):
        package = DDPackage(2)
        dot = edge_to_dot(package.zero_state(), name="zero")
        assert dot.startswith("digraph zero {")
        assert dot.rstrip().endswith("}")
        assert "q1" in dot and "q0" in dot
        assert "terminal" in dot

    def test_zero_edge_export(self):
        package = DDPackage(1)
        dot = edge_to_dot(package.zero_vector_edge())
        assert "zero" in dot

    def test_matrix_export_contains_four_way_labels(self):
        package = DDPackage(2)
        dot = edge_to_dot(package.identity())
        assert '"00' in dot
        assert '"11' in dot
        # Identity has no off-diagonal edges.
        assert '"01' not in dot
        assert '"10' not in dot

    def test_ghz_state_export(self):
        package = DDPackage(3)
        from repro.dd.circuits import apply_instruction_to_vector

        state = package.zero_state()
        for instruction in ghz_ladder(3).gate_instructions():
            state = apply_instruction_to_vector(package, state, instruction)
        dot = edge_to_dot(state)
        # Each node appears exactly once even though sub-diagrams are shared.
        assert dot.count("shape=circle") == package.count_nodes(state)

    def test_complex_weight_formatting(self):
        package = DDPackage(1)
        scaled = package.scale_vector(package.basis_state(1), 0.5j)
        dot = edge_to_dot(scaled)
        assert "i" in dot


class TestSummaries:
    def test_summary_of_basis_state(self):
        package = DDPackage(4)
        summary = summarize_edge(package.basis_state(0))
        assert summary["nodes"] == 4
        assert summary["edges"] == 4
        assert summary["depth"] == 4

    def test_summary_of_identity(self):
        package = DDPackage(3)
        summary = summarize_edge(package.identity())
        assert summary["nodes"] == 3
        assert summary["edges"] == 2 * 3

    def test_summary_of_zero_edge(self):
        package = DDPackage(3)
        summary = summarize_edge(package.zero_vector_edge())
        assert summary == {"nodes": 0, "edges": 0, "depth": 0}

    def test_summary_of_circuit_unitary(self):
        package = DDPackage(3)
        edge = circuit_to_unitary_dd(package, ghz_ladder(3))
        summary = summarize_edge(edge)
        assert summary["nodes"] == package.count_nodes(edge)
        assert summary["edges"] >= summary["nodes"]
        expected = package.matrix_to_numpy(edge)
        assert np.allclose(expected @ expected.conj().T, np.eye(8), atol=1e-9)
