"""Tests for the per-package gate-DD memoization layer."""

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    qft_dynamic,
    qft_static_benchmark,
    teleportation_dynamic,
    teleportation_static,
)
from repro.circuit import QuantumCircuit
from repro.core import check_equivalence
from repro.dd.circuits import circuit_to_unitary_dd, instruction_to_dd
from repro.dd.package import DDPackage


def _repeated_gate_circuit(repetitions: int = 8) -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="repeated")
    for _ in range(repetitions):
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(2)
    return circuit


class TestGateCacheStatistics:
    def test_hits_on_repeated_gate_circuits(self):
        package = DDPackage(3)
        circuit_to_unitary_dd(package, _repeated_gate_circuit(8))
        statistics = package.statistics()
        # 24 gate applications but only 3 distinct (gate, qubits) keys.
        assert statistics["gate_cache_misses"] == 3
        assert statistics["gate_cache_hits"] == 21
        assert statistics["gate_cache_size"] == 3
        assert statistics["gate_cache_hit_ratio"] == pytest.approx(21 / 24)

    def test_no_counting_when_disabled(self):
        package = DDPackage(3, gate_cache=False)
        circuit_to_unitary_dd(package, _repeated_gate_circuit(8))
        statistics = package.statistics()
        assert statistics["gate_cache_hits"] == 0
        assert statistics["gate_cache_misses"] == 0
        assert statistics["gate_cache_size"] == 0

    def test_statistics_surface_through_equivalence_check(self):
        result = check_equivalence(
            bernstein_vazirani_static("1011"), bernstein_vazirani_dynamic("1011")
        )
        statistics = result.details["dd_statistics"]
        assert "gate_cache_hits" in statistics
        assert "gate_cache_misses" in statistics
        assert statistics["gate_cache_misses"] > 0

    def test_clear_caches_drops_gate_cache(self):
        package = DDPackage(3)
        circuit_to_unitary_dd(package, _repeated_gate_circuit(4))
        assert package.statistics()["gate_cache_size"] > 0
        package.clear_caches()
        assert package.statistics()["gate_cache_size"] == 0


class TestGateCacheEviction:
    def test_bounded_cache_evicts_least_recently_used(self):
        package = DDPackage(3, gate_cache_size=2)
        circuit_to_unitary_dd(package, _repeated_gate_circuit(1))  # h, cx, t
        statistics = package.statistics()
        assert statistics["gate_cache_limit"] == 2
        assert statistics["gate_cache_size"] <= 2
        assert statistics["gate_cache_evictions"] >= 1

    def test_lru_order_hit_refreshes_entry(self):
        package = DDPackage(2, gate_cache_size=2)
        circuit_a = QuantumCircuit(2)
        circuit_a.h(0)
        circuit_b = QuantumCircuit(2)
        circuit_b.x(1)
        a = next(iter(circuit_a.gate_instructions()))
        b = next(iter(circuit_b.gate_instructions()))
        instruction_to_dd(package, a)  # miss: cache = [a]
        instruction_to_dd(package, b)  # miss: cache = [a, b]
        instruction_to_dd(package, a)  # hit: refreshes a -> cache = [b, a]
        circuit_c = QuantumCircuit(2)
        circuit_c.t(0)
        c = next(iter(circuit_c.gate_instructions()))
        instruction_to_dd(package, c)  # evicts b, the least recently used
        statistics = package.statistics()
        assert statistics["gate_cache_evictions"] == 1
        hits_before = statistics["gate_cache_hits"]
        instruction_to_dd(package, a)  # still cached
        assert package.statistics()["gate_cache_hits"] == hits_before + 1
        instruction_to_dd(package, b)  # evicted, so a fresh miss
        assert package.statistics()["gate_cache_misses"] == statistics["gate_cache_misses"] + 1

    def test_chain_cache_bounded_too(self):
        package = DDPackage(4, gate_cache_size=1)
        circuit = QuantumCircuit(4)
        for qubit in range(4):
            circuit.h(qubit)
        circuit_to_unitary_dd(package, circuit)
        statistics = package.statistics()
        assert statistics["chain_cache_size"] <= 1
        assert statistics["chain_cache_evictions"] >= 1

    def test_invalid_bound_rejected(self):
        from repro.exceptions import DDError

        with pytest.raises(DDError):
            DDPackage(2, gate_cache_size=0)

    def test_verdicts_unchanged_under_tight_bound(self):
        static = qft_static_benchmark(4)
        dynamic = qft_dynamic(4)
        unbounded = check_equivalence(static, dynamic, seed=1)
        bounded = check_equivalence(static, dynamic, seed=1, gate_cache_size=2)
        assert bounded.criterion is unbounded.criterion
        stats = bounded.details["dd_statistics"]
        assert stats["gate_cache_size"] <= 2
        assert stats["gate_cache_limit"] == 2


class TestGateCacheSemantics:
    def test_repeated_instruction_reuses_the_same_edge(self):
        package = DDPackage(2)
        circuit = QuantumCircuit(2)
        first = circuit.cx(0, 1)
        second = circuit.cx(0, 1)
        edge_one = instruction_to_dd(package, first)
        edge_two = instruction_to_dd(package, second)
        assert edge_one is edge_two

    def test_distinct_qubits_do_not_collide(self):
        package = DDPackage(3)
        circuit = QuantumCircuit(3)
        a = circuit.cx(0, 1)
        b = circuit.cx(1, 2)
        edge_a = instruction_to_dd(package, a)
        edge_b = instruction_to_dd(package, b)
        assert package.statistics()["gate_cache_misses"] == 2
        assert edge_a is not edge_b

    def test_distinct_parameters_do_not_collide(self):
        package = DDPackage(1)
        circuit = QuantumCircuit(1)
        a = circuit.rz(0.25, 0)
        b = circuit.rz(0.50, 0)
        instruction_to_dd(package, a)
        instruction_to_dd(package, b)
        assert package.statistics()["gate_cache_misses"] == 2
        assert package.statistics()["gate_cache_hits"] == 0

    def test_identity_chain_is_memoized(self):
        package = DDPackage(4)
        assert package.identity() is package.identity()
        assert package.statistics()["chain_cache_size"] >= 1


class TestCachedVsUncachedVerdicts:
    PAIRS = [
        ("bv", lambda: (bernstein_vazirani_static("1011"), bernstein_vazirani_dynamic("1011"))),
        ("teleport", lambda: (teleportation_static(), teleportation_dynamic())),
        ("qft", lambda: (qft_static_benchmark(4), qft_dynamic(4))),
        ("bv-broken", lambda: (bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111"))),
    ]

    @pytest.mark.parametrize("label,make", PAIRS, ids=[p[0] for p in PAIRS])
    @pytest.mark.parametrize("method", ["alternating", "construction"])
    def test_identical_criteria_with_and_without_cache(self, label, make, method):
        first, second = make()
        cached = check_equivalence(first, second, method=method, gate_cache=True)
        uncached = check_equivalence(first, second, method=method, gate_cache=False)
        assert cached.criterion is uncached.criterion

    @pytest.mark.parametrize("strategy", ["naive", "one_to_one", "proportional", "lookahead"])
    def test_identical_criteria_across_strategies(self, strategy):
        first, second = qft_static_benchmark(4), qft_dynamic(4)
        cached = check_equivalence(first, second, strategy=strategy, gate_cache=True)
        uncached = check_equivalence(first, second, strategy=strategy, gate_cache=False)
        assert cached.criterion is uncached.criterion
        assert cached.criterion.value == "equivalent"

    def test_cached_run_reports_hits_on_repetitive_pair(self):
        # The lookahead strategy re-evaluates discarded candidates, so even
        # a pair without repeated gates produces cache hits.
        first, second = qft_static_benchmark(4), qft_dynamic(4)
        result = check_equivalence(first, second, strategy="lookahead", gate_cache=True)
        assert result.details["dd_statistics"]["gate_cache_hits"] > 0
